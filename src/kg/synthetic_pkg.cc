#include "kg/synthetic_pkg.h"

#include <algorithm>
#include <unordered_set>

#include "kg/etl.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace pkgm::kg {

bool SyntheticPkg::ItemShouldHaveRelation(uint32_t item_index,
                                          RelationId r) const {
  PKGM_CHECK_LT(item_index, items.size());
  for (const auto& [rel, value] : items[item_index].attributes) {
    if (rel == r) return true;
  }
  return false;
}

EntityId SyntheticPkg::GroundTruthTail(uint32_t item_index,
                                       RelationId r) const {
  PKGM_CHECK_LT(item_index, items.size());
  for (const auto& [rel, value] : items[item_index].attributes) {
    if (rel == r) return value;
  }
  return kInvalidId;
}

SyntheticPkg SyntheticPkgGenerator::Generate() const {
  const SyntheticPkgOptions& opt = options_;
  PKGM_CHECK_GE(opt.properties_per_category, opt.identity_properties);
  PKGM_CHECK_GT(opt.num_categories, 0u);

  Rng rng(opt.seed);
  SyntheticPkg pkg;
  pkg.num_categories = opt.num_categories;
  pkg.category_names.reserve(opt.num_categories);
  for (uint32_t c = 0; c < opt.num_categories; ++c) {
    pkg.category_names.push_back(StrFormat("category_%u", c));
  }

  // --- Property pool -------------------------------------------------------
  // Shared properties (brand, color, ...) reused across categories plus
  // category-specific ones. Relation ids come from the relation vocab.
  std::vector<RelationId> shared_props;
  for (uint32_t p = 0; p < opt.shared_property_pool; ++p) {
    shared_props.push_back(pkg.relations.GetOrAdd(StrFormat("prop_shared_%u", p)));
  }
  pkg.property_relations = shared_props;

  // --- Per-category schemas ------------------------------------------------
  pkg.category_schema.resize(opt.num_categories);
  for (uint32_t c = 0; c < opt.num_categories; ++c) {
    auto& schema = pkg.category_schema[c];
    // Roughly half the schema from the shared pool, the rest specific.
    uint32_t num_shared = std::min<uint32_t>(
        opt.properties_per_category / 2,
        static_cast<uint32_t>(shared_props.size()));
    std::vector<uint64_t> picks =
        rng.SampleWithoutReplacement(shared_props.size(), num_shared);
    for (uint64_t p : picks) schema.push_back(shared_props[p]);
    for (uint32_t j = num_shared; j < opt.properties_per_category; ++j) {
      RelationId r =
          pkg.relations.GetOrAdd(StrFormat("cat%u_prop_%u", c, j));
      schema.push_back(r);
      pkg.property_relations.push_back(r);
    }
    rng.Shuffle(&schema);
  }

  // --- Value universes per property ---------------------------------------
  // Values are shared across all categories that use the property, like
  // brand names reused across a marketplace.
  std::unordered_set<RelationId> all_props(pkg.property_relations.begin(),
                                           pkg.property_relations.end());
  for (RelationId r : all_props) {
    auto& values = pkg.property_values[r];
    values.reserve(opt.values_per_property);
    for (uint32_t v = 0; v < opt.values_per_property; ++v) {
      values.push_back(pkg.entities.GetOrAdd(
          StrFormat("%s_v%u", pkg.relations.Name(r).c_str(), v)));
    }
  }
  ZipfSampler value_sampler(opt.values_per_property, opt.value_zipf_exponent);

  // --- Products -------------------------------------------------------------
  // A product is a distinct assignment over the category's identity
  // properties. Items of the same product share those values.
  struct Product {
    uint32_t category;
    std::vector<std::pair<RelationId, EntityId>> identity;
    /// Canonical values for the non-identity schema properties (same
    /// physical product => same specs), index-aligned with
    /// schema[identity_properties..]. kInvalidId marks a property that
    /// does not apply to this product.
    std::vector<EntityId> canonical_values;
  };
  std::vector<Product> products;
  for (uint32_t c = 0; c < opt.num_categories; ++c) {
    const auto& schema = pkg.category_schema[c];
    std::unordered_set<uint64_t> seen_signatures;
    for (uint32_t p = 0; p < opt.products_per_category; ++p) {
      Product prod;
      prod.category = c;
      // A few attempts to avoid identical-looking distinct products, which
      // would inject label noise into the alignment task.
      for (int attempt = 0; attempt < 8; ++attempt) {
        prod.identity.clear();
        uint64_t sig = 1469598103934665603ULL;
        for (uint32_t j = 0; j < opt.identity_properties; ++j) {
          RelationId r = schema[j];
          EntityId v = pkg.property_values[r][value_sampler.Sample(&rng)];
          prod.identity.emplace_back(r, v);
          sig = (sig ^ v) * 1099511628211ULL;
          sig = (sig ^ r) * 1099511628211ULL;
        }
        if (seen_signatures.insert(sig).second) break;
      }
      for (uint32_t j = opt.identity_properties; j < schema.size(); ++j) {
        if (rng.Bernoulli(opt.property_applicability)) {
          prod.canonical_values.push_back(
              pkg.property_values[schema[j]][value_sampler.Sample(&rng)]);
        } else {
          prod.canonical_values.push_back(kInvalidId);  // not applicable
        }
      }
      products.push_back(std::move(prod));
    }
  }
  pkg.num_products = static_cast<uint32_t>(products.size());

  // --- Items ----------------------------------------------------------------
  // Zipf-skewed item counts across categories (head categories are larger).
  ZipfSampler category_sampler(opt.num_categories, 0.8);
  const uint64_t total_items =
      static_cast<uint64_t>(opt.num_categories) * opt.items_per_category;
  std::vector<uint32_t> items_in_category(opt.num_categories, 0);
  for (uint64_t i = 0; i < total_items; ++i) {
    ++items_in_category[category_sampler.Sample(&rng)];
  }
  // Guarantee every category has a handful of items so every downstream
  // dataset has coverage.
  for (auto& n : items_in_category) n = std::max<uint32_t>(n, 4);

  TripleStore observed_raw;
  for (uint32_t c = 0; c < opt.num_categories; ++c) {
    const auto& schema = pkg.category_schema[c];
    for (uint32_t k = 0; k < items_in_category[c]; ++k) {
      ItemInfo item;
      item.category = c;
      item.entity = pkg.entities.GetOrAdd(
          StrFormat("item_c%u_%u", c, k));
      // Pick the item's product uniformly within the category.
      uint32_t local = static_cast<uint32_t>(
          rng.Uniform(opt.products_per_category));
      item.product = c * opt.products_per_category + local;
      const Product& prod = products[item.product];

      // Identity attributes come from the product; the rest are sampled
      // per item.
      for (const auto& [r, v] : prod.identity) {
        item.attributes.emplace_back(r, v);
      }
      for (uint32_t j = opt.identity_properties; j < schema.size(); ++j) {
        RelationId r = schema[j];
        const EntityId canonical =
            prod.canonical_values[j - opt.identity_properties];
        if (canonical == kInvalidId) continue;  // property does not apply
        EntityId v = rng.Bernoulli(opt.shared_attribute_prob)
                         ? canonical
                         : pkg.property_values[r][value_sampler.Sample(&rng)];
        item.attributes.emplace_back(r, v);
      }

      // Seller fill: observed vs held-out (the completion targets).
      for (const auto& [r, v] : item.attributes) {
        Triple t{item.entity, r, v};
        if (rng.Bernoulli(opt.observed_fill_rate)) {
          observed_raw.Add(t);
        } else {
          pkg.held_out.push_back(t);
        }
      }
      pkg.items.push_back(std::move(item));
    }
  }

  // --- Item-item relations (the paper's R' subset) ---------------------------
  if (opt.add_item_item_relations && pkg.items.size() >= 2) {
    RelationId similar = pkg.relations.GetOrAdd("similarTo");
    pkg.item_relations.push_back(similar);
    // Sparse within-category similarity edges: ~1 per 2 items.
    // Group item indexes by category once.
    std::vector<std::vector<uint32_t>> by_category(opt.num_categories);
    for (uint32_t i = 0; i < pkg.items.size(); ++i) {
      by_category[pkg.items[i].category].push_back(i);
    }
    for (uint32_t c = 0; c < opt.num_categories; ++c) {
      const auto& members = by_category[c];
      if (members.size() < 2) continue;
      uint64_t num_edges = members.size() / 2;
      for (uint64_t e = 0; e < num_edges; ++e) {
        uint32_t a = members[rng.Uniform(members.size())];
        uint32_t b = members[rng.Uniform(members.size())];
        if (a == b) continue;
        observed_raw.Add(pkg.items[a].entity, similar, pkg.items[b].entity);
      }
    }
  }

  // --- Rare noisy attributes (to exercise the ETL frequency filter) ----------
  for (uint32_t p = 0; p < opt.noise_properties; ++p) {
    RelationId r = pkg.relations.GetOrAdd(StrFormat("noise_prop_%u", p));
    for (uint32_t o = 0; o < opt.noise_property_occurrences; ++o) {
      const ItemInfo& item = pkg.items[rng.Uniform(pkg.items.size())];
      EntityId v = pkg.entities.GetOrAdd(StrFormat("noise_val_%u_%u", p, o));
      observed_raw.Add(item.entity, r, v);
    }
  }

  // --- ETL: drop attributes with occurrences below the threshold -------------
  // (paper §III-A1: attributes with < 5000 occurrences are removed).
  EtlStats stats;
  pkg.observed = FilterByRelationFrequency(observed_raw, pkg.relations.size(),
                                           opt.etl_min_occurrence, &stats);
  pkg.etl_dropped_triples = stats.dropped_triples;
  pkg.etl_dropped_relations = stats.dropped_relations;

  return pkg;
}

}  // namespace pkgm::kg
