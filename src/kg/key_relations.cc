#include "kg/key_relations.h"

#include <algorithm>
#include <unordered_map>

namespace pkgm::kg {

std::vector<std::vector<RelationId>> KeyRelationSelector::SelectPerCategory(
    const SyntheticPkg& pkg) const {
  // freq[c][r] = number of items in category c observed with relation r.
  std::vector<std::unordered_map<RelationId, uint64_t>> freq(
      pkg.num_categories);
  for (const ItemInfo& item : pkg.items) {
    for (RelationId r : pkg.observed.RelationsOf(item.entity)) {
      if (!allowed_.empty() && allowed_.count(r) == 0) continue;
      ++freq[item.category][r];
    }
  }

  std::vector<std::vector<RelationId>> out(pkg.num_categories);
  for (uint32_t c = 0; c < pkg.num_categories; ++c) {
    std::vector<std::pair<RelationId, uint64_t>> counts(freq[c].begin(),
                                                        freq[c].end());
    std::sort(counts.begin(), counts.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    const size_t keep = std::min<size_t>(k_, counts.size());
    out[c].reserve(keep);
    for (size_t i = 0; i < keep; ++i) out[c].push_back(counts[i].first);
  }
  return out;
}

std::vector<std::vector<RelationId>> KeyRelationSelector::SelectPerItem(
    const SyntheticPkg& pkg) const {
  std::vector<std::vector<RelationId>> per_category = SelectPerCategory(pkg);
  std::vector<std::vector<RelationId>> out;
  out.reserve(pkg.items.size());
  for (const ItemInfo& item : pkg.items) {
    out.push_back(per_category[item.category]);
  }
  return out;
}

}  // namespace pkgm::kg
