#ifndef PKGM_KG_QUERY_ENGINE_H_
#define PKGM_KG_QUERY_ENGINE_H_

#include <cstdint>
#include <string>

#include "kg/triple_source.h"
#include "util/histogram.h"

namespace pkgm::kg {

/// Symbolic query engine over a TripleSource: answers exactly the two query
/// shapes PKGM's vector services replace (§II):
///
///   SELECT ?t WHERE { h r ?t }    -> TripleQuery(h, r)
///   SELECT ?r WHERE { h ?r ?t }   -> RelationQuery(h)
///
/// This is the baseline "knowledge service via triple data" the paper's
/// deployment used previously; the bench_service_latency harness compares it
/// against vector-space serving. Instrumented with query counters and a
/// latency histogram; every query is recorded, including ones with an empty
/// result — the empty answers are exactly the KG-incompleteness cases PKGM
/// exists to fix, so they are also counted separately.
class QueryEngine {
 public:
  /// Does not take ownership; `source` must outlive the engine. Works over
  /// the in-memory TripleStore and the mmap-backed MmapTripleIndex alike.
  explicit QueryEngine(const TripleSource* source) : source_(source) {}

  /// Tail entities for (h, r, ?t). Empty when the KG has no matching triple
  /// — the symbolic engine has no completion capability, which is the
  /// incompleteness disadvantage PKGM addresses.
  IdSpan TripleQuery(EntityId h, RelationId r);

  /// Distinct relations of h for (h, ?r).
  IdSpan RelationQuery(EntityId h);

  uint64_t num_triple_queries() const { return num_triple_queries_; }
  uint64_t num_relation_queries() const { return num_relation_queries_; }
  uint64_t num_empty_triple_results() const {
    return num_empty_triple_results_;
  }
  uint64_t num_empty_relation_results() const {
    return num_empty_relation_results_;
  }
  const Histogram& latency_micros() const { return latency_micros_; }

  /// Machine-readable snapshot of the counters and latency percentiles —
  /// one JSON object, same conventions as serve::ServerStats::StatsJson().
  std::string StatsJson() const;

 private:
  const TripleSource* source_;
  uint64_t num_triple_queries_ = 0;
  uint64_t num_relation_queries_ = 0;
  uint64_t num_empty_triple_results_ = 0;
  uint64_t num_empty_relation_results_ = 0;
  Histogram latency_micros_;
};

}  // namespace pkgm::kg

#endif  // PKGM_KG_QUERY_ENGINE_H_
