#ifndef PKGM_KG_QUERY_ENGINE_H_
#define PKGM_KG_QUERY_ENGINE_H_

#include <cstdint>
#include <vector>

#include "kg/triple_store.h"
#include "util/histogram.h"

namespace pkgm::kg {

/// Symbolic query engine over a TripleStore: answers exactly the two query
/// shapes PKGM's vector services replace (§II):
///
///   SELECT ?t WHERE { h r ?t }    -> TripleQuery(h, r)
///   SELECT ?r WHERE { h ?r ?t }   -> RelationQuery(h)
///
/// This is the baseline "knowledge service via triple data" the paper's
/// deployment used previously; the bench_service_latency harness compares it
/// against vector-space serving. Instrumented with query counters and a
/// latency histogram.
class QueryEngine {
 public:
  /// Does not take ownership; `store` must outlive the engine.
  explicit QueryEngine(const TripleStore* store) : store_(store) {}

  /// Tail entities for (h, r, ?t). Empty when the KG has no matching triple
  /// — the symbolic engine has no completion capability, which is the
  /// incompleteness disadvantage PKGM addresses.
  const std::vector<EntityId>& TripleQuery(EntityId h, RelationId r);

  /// Distinct relations of h for (h, ?r).
  const std::vector<RelationId>& RelationQuery(EntityId h);

  uint64_t num_triple_queries() const { return num_triple_queries_; }
  uint64_t num_relation_queries() const { return num_relation_queries_; }
  const Histogram& latency_micros() const { return latency_micros_; }

 private:
  const TripleStore* store_;
  uint64_t num_triple_queries_ = 0;
  uint64_t num_relation_queries_ = 0;
  Histogram latency_micros_;
};

}  // namespace pkgm::kg

#endif  // PKGM_KG_QUERY_ENGINE_H_
