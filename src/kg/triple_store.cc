#include "kg/triple_store.h"

#include <algorithm>

namespace pkgm::kg {

namespace {
IdSpan SpanOf(const std::vector<uint32_t>& v) { return {v.data(), v.size()}; }
}  // namespace

bool TripleStore::Add(const Triple& t) {
  if (!set_.insert(t).second) return false;
  triples_.push_back(t);

  auto& tails = hr_to_tails_[PairKey(t.head, t.relation)];
  if (tails.empty()) {
    // First triple with this (h, r): record the relation for h.
    head_relations_[t.head].push_back(t.relation);
  }
  tails.push_back(t.tail);
  rt_to_heads_[PairKey(t.relation, t.tail)].push_back(t.head);

  if (t.relation >= relation_counts_.size()) {
    relation_counts_.resize(t.relation + 1, 0);
  }
  ++relation_counts_[t.relation];

  max_entity_id_ = std::max(max_entity_id_, std::max(t.head, t.tail) + 1);
  max_relation_id_ = std::max(max_relation_id_, t.relation + 1);
  return true;
}

bool TripleStore::HasRelation(EntityId h, RelationId r) const {
  return hr_to_tails_.count(PairKey(h, r)) > 0;
}

IdSpan TripleStore::Tails(EntityId h, RelationId r) const {
  auto it = hr_to_tails_.find(PairKey(h, r));
  return it == hr_to_tails_.end() ? IdSpan{} : SpanOf(it->second);
}

IdSpan TripleStore::Heads(RelationId r, EntityId t) const {
  auto it = rt_to_heads_.find(PairKey(r, t));
  return it == rt_to_heads_.end() ? IdSpan{} : SpanOf(it->second);
}

IdSpan TripleStore::RelationsOf(EntityId h) const {
  auto it = head_relations_.find(h);
  return it == head_relations_.end() ? IdSpan{} : SpanOf(it->second);
}

std::vector<uint64_t> TripleStore::RelationFrequencies(
    uint32_t num_relations) const {
  // Grown, never truncated: ids at or above the caller's count keep their
  // tally instead of being silently dropped (the caller can detect the
  // mismatch from the result size).
  std::vector<uint64_t> freq(
      std::max<size_t>(num_relations, relation_counts_.size()), 0);
  std::copy(relation_counts_.begin(), relation_counts_.end(), freq.begin());
  return freq;
}

}  // namespace pkgm::kg
