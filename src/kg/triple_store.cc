#include "kg/triple_store.h"

#include <algorithm>

namespace pkgm::kg {

namespace {
const std::vector<EntityId>& EmptyEntityList() {
  static const std::vector<EntityId>* empty = new std::vector<EntityId>();
  return *empty;
}
const std::vector<RelationId>& EmptyRelationList() {
  static const std::vector<RelationId>* empty = new std::vector<RelationId>();
  return *empty;
}
}  // namespace

bool TripleStore::Add(const Triple& t) {
  if (!set_.insert(t).second) return false;
  triples_.push_back(t);

  auto& tails = hr_to_tails_[PairKey(t.head, t.relation)];
  if (tails.empty()) {
    // First triple with this (h, r): record the relation for h.
    head_relations_[t.head].push_back(t.relation);
  }
  tails.push_back(t.tail);
  rt_to_heads_[PairKey(t.relation, t.tail)].push_back(t.head);

  max_entity_id_ = std::max(max_entity_id_, std::max(t.head, t.tail) + 1);
  max_relation_id_ = std::max(max_relation_id_, t.relation + 1);
  return true;
}

bool TripleStore::HasRelation(EntityId h, RelationId r) const {
  return hr_to_tails_.count(PairKey(h, r)) > 0;
}

const std::vector<EntityId>& TripleStore::Tails(EntityId h, RelationId r) const {
  auto it = hr_to_tails_.find(PairKey(h, r));
  return it == hr_to_tails_.end() ? EmptyEntityList() : it->second;
}

const std::vector<EntityId>& TripleStore::Heads(RelationId r, EntityId t) const {
  auto it = rt_to_heads_.find(PairKey(r, t));
  return it == rt_to_heads_.end() ? EmptyEntityList() : it->second;
}

const std::vector<RelationId>& TripleStore::RelationsOf(EntityId h) const {
  auto it = head_relations_.find(h);
  return it == head_relations_.end() ? EmptyRelationList() : it->second;
}

std::vector<uint64_t> TripleStore::RelationFrequencies(
    uint32_t num_relations) const {
  std::vector<uint64_t> freq(num_relations, 0);
  for (const Triple& t : triples_) {
    if (t.relation < num_relations) ++freq[t.relation];
  }
  return freq;
}

}  // namespace pkgm::kg
