#include "kg/triple_index_writer.h"

#include <algorithm>
#include <cstdio>

#include "kg/pkgt_format.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace pkgm::kg {
namespace {

using store::AlignUpToSection;
using store::Fnv1a64;
using store::kStoreSectionAlignment;

/// Buffered writer that feeds the payload checksum as bytes stream out —
/// same discipline as the `.pkgs` embedding-store writer.
class ChecksummedFile {
 public:
  explicit ChecksummedFile(std::FILE* f) : f_(f) {}

  Status Write(const void* data, size_t bytes) {
    if (std::fwrite(data, 1, bytes, f_) != bytes) {
      return Status::IoError("short write to triple index");
    }
    checksum_ = Fnv1a64(data, bytes, checksum_);
    written_ += bytes;
    return Status::Ok();
  }

  /// Zero-pads up to `offset` (absolute file position past the header).
  Status PadTo(uint64_t offset) {
    static constexpr char kZeros[kStoreSectionAlignment] = {};
    while (written_ + sizeof(PkgtHeader) < offset) {
      const size_t n = static_cast<size_t>(
          std::min<uint64_t>(sizeof(kZeros),
                             offset - sizeof(PkgtHeader) - written_));
      PKGM_RETURN_IF_ERROR(Write(kZeros, n));
    }
    return Status::Ok();
  }

  uint64_t checksum() const { return checksum_; }

 private:
  std::FILE* f_;
  uint64_t checksum_ = 0xcbf29ce484222325ull;
  uint64_t written_ = 0;  // payload bytes (header excluded)
};

/// Component order of one permutation: (first, second) is the run key,
/// third is the stored value.
struct PermSpec {
  uint32_t (*first)(const Triple&);
  uint32_t (*second)(const Triple&);
  uint32_t (*third)(const Triple&);
};

constexpr PermSpec kSpo = {[](const Triple& t) { return t.head; },
                           [](const Triple& t) { return t.relation; },
                           [](const Triple& t) { return t.tail; }};
constexpr PermSpec kPos = {[](const Triple& t) { return t.relation; },
                           [](const Triple& t) { return t.tail; },
                           [](const Triple& t) { return t.head; }};
constexpr PermSpec kOsp = {[](const Triple& t) { return t.tail; },
                           [](const Triple& t) { return t.head; },
                           [](const Triple& t) { return t.relation; }};

void SortPermutation(const PermSpec& p, std::vector<Triple>* triples) {
  std::sort(triples->begin(), triples->end(),
            [&p](const Triple& a, const Triple& b) {
              if (p.first(a) != p.first(b)) return p.first(a) < p.first(b);
              if (p.second(a) != p.second(b)) return p.second(a) < p.second(b);
              return p.third(a) < p.third(b);
            });
}

uint64_t CountRuns(const PermSpec& p, const std::vector<Triple>& triples) {
  uint64_t runs = 0;
  uint64_t prev = 0;
  bool have_prev = false;
  for (const Triple& t : triples) {
    const uint64_t key = PkgtRunKey(p.first(t), p.second(t));
    if (!have_prev || key != prev) {
      ++runs;
      prev = key;
      have_prev = true;
    }
  }
  return runs;
}

/// Streams one sorted permutation out as its keys / offsets / values
/// sections. `triples` must already be in this permutation's order.
/// `on_run(run_index, key)` fires once per run in order, letting the caller
/// derive the SPO run-relation array and the POS per-predicate table
/// without a second scan.
template <typename RunFn>
Status WritePermutation(ChecksummedFile* out, const PermSpec& p,
                        const std::vector<Triple>& triples,
                        const PkgtPermutation& section, RunFn on_run) {
  std::vector<uint64_t> keys;
  std::vector<uint64_t> offsets;
  keys.reserve(section.num_runs);
  offsets.reserve(section.num_runs + 1);
  for (size_t i = 0; i < triples.size(); ++i) {
    const uint64_t key = PkgtRunKey(p.first(triples[i]), p.second(triples[i]));
    if (keys.empty() || key != keys.back()) {
      on_run(keys.size(), key);
      keys.push_back(key);
      offsets.push_back(i);
    }
  }
  offsets.push_back(triples.size());

  PKGM_RETURN_IF_ERROR(out->PadTo(section.keys_offset));
  PKGM_RETURN_IF_ERROR(out->Write(keys.data(), keys.size() * sizeof(uint64_t)));
  PKGM_RETURN_IF_ERROR(out->PadTo(section.offsets_offset));
  PKGM_RETURN_IF_ERROR(
      out->Write(offsets.data(), offsets.size() * sizeof(uint64_t)));
  PKGM_RETURN_IF_ERROR(out->PadTo(section.values_offset));
  // Values stream straight out of the sorted triple vector in chunks.
  std::vector<uint32_t> chunk;
  chunk.reserve(4096);
  for (const Triple& t : triples) {
    chunk.push_back(p.third(t));
    if (chunk.size() == chunk.capacity()) {
      PKGM_RETURN_IF_ERROR(
          out->Write(chunk.data(), chunk.size() * sizeof(uint32_t)));
      chunk.clear();
    }
  }
  if (!chunk.empty()) {
    PKGM_RETURN_IF_ERROR(
        out->Write(chunk.data(), chunk.size() * sizeof(uint32_t)));
  }
  return Status::Ok();
}

/// Lays one permutation's three sections out at `*offset` (advanced past
/// them) for `num_runs` runs over `num_triples` values.
PkgtPermutation LayoutPermutation(uint64_t num_runs, uint64_t num_triples,
                                  uint64_t* offset) {
  PkgtPermutation p;
  p.num_runs = num_runs;
  p.keys_offset = *offset;
  *offset = AlignUpToSection(p.keys_offset + num_runs * sizeof(uint64_t));
  p.offsets_offset = *offset;
  *offset =
      AlignUpToSection(p.offsets_offset + (num_runs + 1) * sizeof(uint64_t));
  p.values_offset = *offset;
  *offset = AlignUpToSection(p.values_offset + num_triples * sizeof(uint32_t));
  return p;
}

}  // namespace

StatusOr<TripleIndexBuildStats> TripleIndexWriter::Write(
    const TripleSource& source, const std::string& path) const {
  std::vector<Triple> triples;
  triples.reserve(source.NumTriples());
  source.AppendTriples(&triples);
  return WriteTriples(std::move(triples), path);
}

StatusOr<TripleIndexBuildStats> TripleIndexWriter::WriteTriples(
    std::vector<Triple> triples, const std::string& path) const {
  if (triples.empty()) {
    return Status::InvalidArgument("refusing to index an empty triple set");
  }
  Stopwatch sw;

  // Canonicalize: SPO order, duplicates collapsed. Later sorts permute the
  // same deduped set.
  SortPermutation(kSpo, &triples);
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
  const uint64_t n = triples.size();

  PkgtHeader header;
  header.num_triples = n;
  for (const Triple& t : triples) {
    header.num_entities =
        std::max(header.num_entities, std::max(t.head, t.tail) + 1);
    header.num_relations = std::max(header.num_relations, t.relation + 1);
  }

  // Run counts drive the section layout, so each permutation is sorted
  // twice: once to count, once (below) to stream its sections out.
  const uint64_t spo_runs = CountRuns(kSpo, triples);
  SortPermutation(kPos, &triples);
  const uint64_t pos_runs = CountRuns(kPos, triples);
  SortPermutation(kOsp, &triples);
  const uint64_t osp_runs = CountRuns(kOsp, triples);

  uint64_t offset = AlignUpToSection(sizeof(PkgtHeader));
  header.spo = LayoutPermutation(spo_runs, n, &offset);
  header.pos = LayoutPermutation(pos_runs, n, &offset);
  header.osp = LayoutPermutation(osp_runs, n, &offset);
  header.spo_run_relations_offset = offset;
  offset = AlignUpToSection(offset + spo_runs * sizeof(uint32_t));
  header.pred_runs_offset = offset;
  offset = AlignUpToSection(offset +
                            (header.num_relations + 1) * sizeof(uint64_t));
  header.file_size = offset;

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(
        StrFormat("cannot open %s for writing", path.c_str()));
  }
  // Placeholder header first; rewritten with the final checksum below.
  Status s = Status::Ok();
  if (std::fwrite(&header, 1, sizeof(header), f) != sizeof(header)) {
    s = Status::IoError("short write to triple index");
  }

  ChecksummedFile out(f);
  std::vector<uint32_t> spo_run_relations;
  spo_run_relations.reserve(spo_runs);
  std::vector<uint64_t> pred_runs(header.num_relations + 1, pos_runs);

  if (s.ok()) {
    SortPermutation(kSpo, &triples);
    s = WritePermutation(&out, kSpo, triples, header.spo,
                         [&](size_t, uint64_t key) {
                           spo_run_relations.push_back(PkgtKeySecond(key));
                         });
  }
  if (s.ok()) {
    SortPermutation(kPos, &triples);
    uint32_t next_rel = 0;
    s = WritePermutation(&out, kPos, triples, header.pos,
                         [&](size_t run, uint64_t key) {
                           // First run of each predicate closes every
                           // predicate before it (empty ones included).
                           while (next_rel <= PkgtKeyFirst(key)) {
                             pred_runs[next_rel++] = run;
                           }
                         });
  }
  if (s.ok()) {
    SortPermutation(kOsp, &triples);
    s = WritePermutation(&out, kOsp, triples, header.osp,
                         [](size_t, uint64_t) {});
  }
  if (s.ok()) s = out.PadTo(header.spo_run_relations_offset);
  if (s.ok()) {
    s = out.Write(spo_run_relations.data(),
                  spo_run_relations.size() * sizeof(uint32_t));
  }
  if (s.ok()) s = out.PadTo(header.pred_runs_offset);
  if (s.ok()) {
    s = out.Write(pred_runs.data(), pred_runs.size() * sizeof(uint64_t));
  }
  if (s.ok()) s = out.PadTo(header.file_size);

  if (s.ok()) {
    header.payload_checksum = out.checksum();
    if (std::fseek(f, 0, SEEK_SET) != 0 ||
        std::fwrite(&header, 1, sizeof(header), f) != sizeof(header)) {
      s = Status::IoError("cannot finalize triple index header");
    }
  }
  if (std::fclose(f) != 0 && s.ok()) {
    s = Status::IoError(StrFormat("close failed for %s", path.c_str()));
  }
  if (!s.ok()) return s;

  TripleIndexBuildStats stats;
  stats.num_triples = n;
  stats.spo_runs = spo_runs;
  stats.pos_runs = pos_runs;
  stats.osp_runs = osp_runs;
  stats.file_bytes = header.file_size;
  stats.seconds = sw.ElapsedSeconds();
  return stats;
}

}  // namespace pkgm::kg
