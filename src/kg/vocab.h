#ifndef PKGM_KG_VOCAB_H_
#define PKGM_KG_VOCAB_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace pkgm::kg {

/// Dense integer id types used throughout the KG layer.
using EntityId = uint32_t;
using RelationId = uint32_t;

inline constexpr uint32_t kInvalidId = 0xffffffffu;

/// Bidirectional string <-> dense-id interning table. Ids are assigned
/// contiguously from 0 in insertion order, so they can directly index
/// embedding tables.
class Vocab {
 public:
  Vocab() = default;

  /// Returns the id for `name`, interning it if new.
  uint32_t GetOrAdd(std::string_view name);

  /// Returns the id for `name` or kInvalidId if absent.
  uint32_t Find(std::string_view name) const;

  /// True if `name` has been interned.
  bool Contains(std::string_view name) const {
    return Find(name) != kInvalidId;
  }

  /// Name for an id; id must be < size().
  const std::string& Name(uint32_t id) const;

  uint32_t size() const { return static_cast<uint32_t>(names_.size()); }

 private:
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<std::string> names_;
};

}  // namespace pkgm::kg

#endif  // PKGM_KG_VOCAB_H_
