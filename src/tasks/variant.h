#ifndef PKGM_TASKS_VARIANT_H_
#define PKGM_TASKS_VARIANT_H_

#include <string>

#include "core/service.h"

namespace pkgm::tasks {

/// The four model variants evaluated on every downstream task
/// (paper §III): the base model alone, and the base model augmented with
/// service vectors from the triple query module, the relation query module,
/// or both.
enum class PkgmVariant { kBase, kPkgmT, kPkgmR, kPkgmAll };

/// Display name matching the paper's tables ("BERT", "BERT_PKGM-T", ...).
inline std::string VariantName(PkgmVariant v, const std::string& base) {
  switch (v) {
    case PkgmVariant::kBase:
      return base;
    case PkgmVariant::kPkgmT:
      return base + "_PKGM-T";
    case PkgmVariant::kPkgmR:
      return base + "_PKGM-R";
    case PkgmVariant::kPkgmAll:
      return base + "_PKGM-all";
  }
  return base;
}

/// Service mode for a non-base variant. Must not be called with kBase.
inline core::ServiceMode VariantServiceMode(PkgmVariant v) {
  switch (v) {
    case PkgmVariant::kPkgmT:
      return core::ServiceMode::kTripleOnly;
    case PkgmVariant::kPkgmR:
      return core::ServiceMode::kRelationOnly;
    default:
      return core::ServiceMode::kAll;
  }
}

}  // namespace pkgm::tasks

#endif  // PKGM_TASKS_VARIANT_H_
