#ifndef PKGM_TASKS_ITEM_ALIGNMENT_H_
#define PKGM_TASKS_ITEM_ALIGNMENT_H_

#include <cstdint>
#include <map>
#include <memory>

#include "core/service.h"
#include "data/alignment_dataset.h"
#include "nn/linear.h"
#include "tasks/variant.h"
#include "text/tiny_bert.h"
#include "text/tokenizer.h"

namespace pkgm::tasks {

/// Builds the pair input. Base: [CLS] a [SEP] b [SEP] with segments 0/1.
/// PKGM variants additionally inject each side's service vectors right
/// after that side's [SEP] (Fig. 5), shrinking the title budget so the
/// whole input still fits max_len. Shared by offline evaluation and online
/// serving, so the two paths construct bit-identical encoder inputs.
text::EncodedInput EncodeAlignmentPair(
    const data::AlignmentPair& pair, const text::Tokenizer& tok,
    const core::ServiceVectorProvider* services, PkgmVariant variant,
    size_t max_len);

/// A trained pair scorer ready for serving: tokenizer + pair encoder +
/// 1-logit head (score > 0 means "same product"). TinyBert caches
/// per-sequence activations, so concurrent callers must serialize on it.
struct TrainedAligner {
  text::TinyBertConfig config;
  text::Tokenizer tokenizer;
  std::unique_ptr<text::TinyBert> bert;
  std::unique_ptr<nn::Linear> head;
  double train_loss = 0.0;
};

/// Metrics for Tables VI (Hit@k over 100 candidates) and VII (accuracy).
struct AlignmentMetrics {
  std::map<int, double> hits;  ///< Hit@1/3/10 on the ranking test split
  double accuracy = 0.0;       ///< binary accuracy on the classification split
  double train_loss = 0.0;
};

/// Item alignment / same-product identification (paper §III-C): a BERT
/// pair-encoder classifies whether two titles describe the same product.
/// PKGM variants append each item's service vectors after its title's [SEP]
/// (Fig. 5), 4k injected vectors total for PKGM-all.
struct ItemAlignmentOptions {
  uint32_t max_len = 48;
  uint32_t bert_layers = 2;
  uint32_t bert_heads = 4;
  uint32_t bert_ff = 128;
  uint32_t epochs = 2;
  uint32_t batch_size = 16;
  float learning_rate = 1e-3f;
  uint32_t mlm_pretrain_epochs = 0;
  uint64_t seed = 419;
};

class ItemAlignmentTask {
 public:
  /// `dataset` is one category's dataset; pointers must outlive the task.
  ItemAlignmentTask(const data::AlignmentDataset* dataset,
                    const core::ServiceVectorProvider* services,
                    const ItemAlignmentOptions& options);

  /// Trains a fresh pair model for the variant and evaluates it.
  AlignmentMetrics Run(PkgmVariant variant) const;

  /// Trains the same pair model Run() would (identical seeds and
  /// arithmetic) and returns it for serving instead of evaluating.
  TrainedAligner Train(PkgmVariant variant) const;

 private:
  const data::AlignmentDataset* dataset_;
  const core::ServiceVectorProvider* services_;
  ItemAlignmentOptions options_;
};

}  // namespace pkgm::tasks

#endif  // PKGM_TASKS_ITEM_ALIGNMENT_H_
