#ifndef PKGM_TASKS_ITEM_ALIGNMENT_H_
#define PKGM_TASKS_ITEM_ALIGNMENT_H_

#include <cstdint>
#include <map>

#include "core/service.h"
#include "data/alignment_dataset.h"
#include "tasks/variant.h"

namespace pkgm::tasks {

/// Metrics for Tables VI (Hit@k over 100 candidates) and VII (accuracy).
struct AlignmentMetrics {
  std::map<int, double> hits;  ///< Hit@1/3/10 on the ranking test split
  double accuracy = 0.0;       ///< binary accuracy on the classification split
  double train_loss = 0.0;
};

/// Item alignment / same-product identification (paper §III-C): a BERT
/// pair-encoder classifies whether two titles describe the same product.
/// PKGM variants append each item's service vectors after its title's [SEP]
/// (Fig. 5), 4k injected vectors total for PKGM-all.
struct ItemAlignmentOptions {
  uint32_t max_len = 48;
  uint32_t bert_layers = 2;
  uint32_t bert_heads = 4;
  uint32_t bert_ff = 128;
  uint32_t epochs = 2;
  uint32_t batch_size = 16;
  float learning_rate = 1e-3f;
  uint32_t mlm_pretrain_epochs = 0;
  uint64_t seed = 419;
};

class ItemAlignmentTask {
 public:
  /// `dataset` is one category's dataset; pointers must outlive the task.
  ItemAlignmentTask(const data::AlignmentDataset* dataset,
                    const core::ServiceVectorProvider* services,
                    const ItemAlignmentOptions& options);

  /// Trains a fresh pair model for the variant and evaluates it.
  AlignmentMetrics Run(PkgmVariant variant) const;

 private:
  const data::AlignmentDataset* dataset_;
  const core::ServiceVectorProvider* services_;
  ItemAlignmentOptions options_;
};

}  // namespace pkgm::tasks

#endif  // PKGM_TASKS_ITEM_ALIGNMENT_H_
