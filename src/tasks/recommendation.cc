#include "tasks/recommendation.h"

#include <unordered_set>

#include "nn/optimizer.h"
#include "rec/ranking_metrics.h"
#include "util/logging.h"

namespace pkgm::tasks {

namespace {

/// Per-user full interaction sets (train + valid + test) so negative
/// sampling never draws an observed item.
std::vector<std::unordered_set<uint32_t>> BuildObserved(
    const data::InteractionDataset& dataset) {
  std::vector<std::unordered_set<uint32_t>> observed(dataset.num_users);
  for (uint32_t u = 0; u < dataset.num_users; ++u) {
    for (uint32_t i : dataset.train[u]) observed[u].insert(i);
    observed[u].insert(dataset.valid[u]);
    observed[u].insert(dataset.test[u]);
  }
  return observed;
}

}  // namespace

RecommendationTask::RecommendationTask(
    const data::InteractionDataset* dataset,
    const core::ServiceVectorProvider* services,
    const RecommendationOptions& options)
    : dataset_(dataset), services_(services), options_(options) {
  PKGM_CHECK(dataset != nullptr);
}

TrainedRecommender RecommendationTask::Train(PkgmVariant variant) const {
  PKGM_CHECK(variant == PkgmVariant::kBase || services_ != nullptr);
  Rng rng(options_.seed);

  const uint32_t num_users = dataset_->num_users;
  const uint32_t num_items = dataset_->num_items;

  TrainedRecommender trained;

  // Precompute per-item condensed PKGM features (Eq. 20) — fixed inputs.
  uint32_t pkgm_dim = 0;
  if (variant != PkgmVariant::kBase) {
    const core::ServiceMode mode = VariantServiceMode(variant);
    pkgm_dim = services_->CondensedDim(mode);
    trained.item_features = Mat(num_items, pkgm_dim);
    for (uint32_t i = 0; i < num_items; ++i) {
      Vec s = services_->Condensed(i, mode);
      float* dst = trained.item_features.Row(i);
      for (uint32_t j = 0; j < pkgm_dim; ++j) dst[j] = s[j];
    }
  }
  trained.pkgm_dim = pkgm_dim;
  const Mat& item_features = trained.item_features;

  rec::NcfConfig cfg;
  cfg.num_users = num_users;
  cfg.num_items = num_items;
  cfg.gmf_dim = options_.gmf_dim;
  cfg.mlp_dim = options_.mlp_dim;
  cfg.mlp_hidden = options_.mlp_hidden;
  cfg.pkgm_dim = pkgm_dim;
  cfg.embedding_l2 = options_.embedding_l2;
  cfg.seed = options_.seed + 1;
  trained.config = cfg;
  trained.model = std::make_unique<rec::NcfModel>(cfg);
  rec::NcfModel& model = *trained.model;

  nn::AdamOptimizer::Options adam;
  adam.lr = options_.learning_rate;
  nn::AdamOptimizer optimizer(model.Params(), adam);

  std::vector<std::unordered_set<uint32_t>> observed = BuildObserved(*dataset_);
  std::vector<std::pair<uint32_t, uint32_t>> positives;
  for (uint32_t u = 0; u < num_users; ++u) {
    for (uint32_t i : dataset_->train[u]) positives.emplace_back(u, i);
  }

  auto sample_negative = [&](uint32_t user) {
    for (;;) {
      const uint32_t cand = static_cast<uint32_t>(rng.Uniform(num_items));
      if (!observed[user].count(cand)) return cand;
    }
  };

  std::vector<uint32_t> batch_users, batch_items;
  std::vector<float> batch_labels;

  for (uint32_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&positives);
    double loss_sum = 0.0;
    uint64_t batches = 0;
    size_t idx = 0;
    while (idx < positives.size()) {
      batch_users.clear();
      batch_items.clear();
      batch_labels.clear();
      // Each positive contributes itself + negative_ratio negatives
      // (paper §III-D2 sampling strategy).
      while (idx < positives.size() &&
             batch_users.size() + options_.negative_ratio + 1 <=
                 options_.batch_size) {
        const auto [u, i] = positives[idx++];
        batch_users.push_back(u);
        batch_items.push_back(i);
        batch_labels.push_back(1.0f);
        for (uint32_t n = 0; n < options_.negative_ratio; ++n) {
          batch_users.push_back(u);
          batch_items.push_back(sample_negative(u));
          batch_labels.push_back(0.0f);
        }
      }
      if (batch_users.empty()) break;

      Mat pkgm;
      const Mat* pkgm_ptr = nullptr;
      if (pkgm_dim > 0) {
        pkgm = Mat(batch_users.size(), pkgm_dim);
        for (size_t b = 0; b < batch_items.size(); ++b) {
          const float* src = item_features.Row(batch_items[b]);
          float* dst = pkgm.Row(b);
          for (uint32_t j = 0; j < pkgm_dim; ++j) dst[j] = src[j];
        }
        pkgm_ptr = &pkgm;
      }
      loss_sum +=
          model.ForwardBackward(batch_users, batch_items, pkgm_ptr, batch_labels);
      optimizer.Step();
      ++batches;
    }
    trained.train_loss =
        batches > 0 ? loss_sum / static_cast<double>(batches) : 0.0;
  }
  return trained;
}

RecommendationMetrics RecommendationTask::Run(PkgmVariant variant) const {
  TrainedRecommender trained = Train(variant);
  rec::NcfModel& model = *trained.model;
  const Mat& item_features = trained.item_features;
  const uint32_t pkgm_dim = trained.pkgm_dim;
  const uint32_t num_users = dataset_->num_users;
  const uint32_t num_items = dataset_->num_items;
  const std::vector<std::unordered_set<uint32_t>> observed =
      BuildObserved(*dataset_);

  RecommendationMetrics metrics;
  metrics.train_loss = trained.train_loss;

  // Leave-one-out evaluation (paper §III-D4): the held-out item is ranked
  // against eval_negatives unobserved items.
  rec::RankingMetricsAccumulator acc(options_.ks);
  std::vector<uint32_t> cand_users, cand_items;
  Rng eval_rng(options_.seed + 7);
  for (uint32_t u = 0; u < num_users; ++u) {
    cand_users.assign(options_.eval_negatives + 1, u);
    cand_items.clear();
    cand_items.push_back(dataset_->test[u]);
    while (cand_items.size() < options_.eval_negatives + 1) {
      const uint32_t cand = static_cast<uint32_t>(eval_rng.Uniform(num_items));
      if (!observed[u].count(cand)) cand_items.push_back(cand);
    }
    Mat pkgm;
    const Mat* pkgm_ptr = nullptr;
    if (pkgm_dim > 0) {
      pkgm = Mat(cand_items.size(), pkgm_dim);
      for (size_t b = 0; b < cand_items.size(); ++b) {
        const float* src = item_features.Row(cand_items[b]);
        float* dst = pkgm.Row(b);
        for (uint32_t j = 0; j < pkgm_dim; ++j) dst[j] = src[j];
      }
      pkgm_ptr = &pkgm;
    }
    Mat logits;
    model.Forward(cand_users, cand_items, pkgm_ptr, &logits);
    const float pos = logits(0, 0);
    std::vector<float> negs;
    negs.reserve(options_.eval_negatives);
    for (size_t b = 1; b < cand_items.size(); ++b) negs.push_back(logits(b, 0));
    acc.AddScores(pos, negs);
  }
  for (int k : options_.ks) {
    metrics.hr[k] = acc.HitRatio(k);
    metrics.ndcg[k] = acc.Ndcg(k);
  }
  return metrics;
}

}  // namespace pkgm::tasks
