#ifndef PKGM_TASKS_PIPELINE_H_
#define PKGM_TASKS_PIPELINE_H_

#include <memory>

#include "core/pkgm_model.h"
#include "core/service.h"
#include "core/sharded_trainer.h"
#include "core/trainer.h"
#include "kg/synthetic_pkg.h"

namespace pkgm::tasks {

/// End-to-end pre-training pipeline shared by the examples, tests and
/// benches: generate the synthetic PKG, pre-train PKGM on its observed
/// triples, select per-item key relations, and stand up the service-vector
/// provider.
struct PipelineOptions {
  kg::SyntheticPkgOptions pkg;
  /// Embedding dimension of PKGM (and hence of all service vectors).
  uint32_t dim = 32;
  /// Triple query module scoring family (TransE per the paper by default).
  core::TripleScorerKind scorer = core::TripleScorerKind::kTransE;
  /// TransE-only ablation switch.
  bool use_relation_module = true;
  core::TrainerOptions trainer;
  uint32_t pretrain_epochs = 8;
  /// Key relations per category (paper: 10).
  uint32_t service_k = 10;
  /// Train with the parameter-server simulation instead of the
  /// single-threaded trainer.
  bool use_sharded_trainer = false;
  core::ShardedTrainerOptions sharded;
  uint64_t seed = 53;
};

/// Everything downstream tasks need, with stable ownership: the provider
/// holds a pointer into `model`, which lives on the heap.
struct PretrainedPkgm {
  kg::SyntheticPkg pkg;
  std::unique_ptr<core::PkgmModel> model;
  std::unique_ptr<core::ServiceVectorProvider> services;
  core::EpochStats last_epoch;
};

/// Runs the full pipeline. Deterministic given the seeds in `options`.
PretrainedPkgm BuildAndPretrain(const PipelineOptions& options);

}  // namespace pkgm::tasks

#endif  // PKGM_TASKS_PIPELINE_H_
