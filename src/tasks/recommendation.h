#ifndef PKGM_TASKS_RECOMMENDATION_H_
#define PKGM_TASKS_RECOMMENDATION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/service.h"
#include "data/interaction_dataset.h"
#include "rec/ncf.h"
#include "tasks/variant.h"

namespace pkgm::tasks {

/// A trained NCF ready for serving. The model's Forward caches per-batch
/// activations, so concurrent callers must serialize on it. `item_features`
/// (row = item index) holds the condensed PKGM vectors the model was
/// trained against; empty when pkgm_dim == 0 (kBase variant).
struct TrainedRecommender {
  rec::NcfConfig config;
  std::unique_ptr<rec::NcfModel> model;
  Mat item_features;
  uint32_t pkgm_dim = 0;
  double train_loss = 0.0;
};

/// Metrics for Table VIII: HR@k and NDCG@k, k in {1, 3, 5, 10, 30}.
struct RecommendationMetrics {
  std::map<int, double> hr;
  std::map<int, double> ndcg;
  double train_loss = 0.0;
};

/// Item recommendation (paper §III-D): NCF on implicit feedback, with the
/// PKGM variants concatenating the condensed service vector into the MLP
/// tower (Eq. 20-21). Leave-one-out evaluation against sampled negatives.
struct RecommendationOptions {
  uint32_t epochs = 15;       // paper: 100; synthetic data converges earlier
  uint32_t batch_size = 256;  // paper: 256
  float learning_rate = 1e-3f;
  uint32_t negative_ratio = 4;    // paper: 4
  uint32_t eval_negatives = 100;  // paper: 100
  std::vector<int> ks = {1, 3, 5, 10, 30};
  uint32_t gmf_dim = 8;
  uint32_t mlp_dim = 32;
  std::vector<uint32_t> mlp_hidden = {32, 16, 8};
  float embedding_l2 = 0.001f;
  uint64_t seed = 431;
};

class RecommendationTask {
 public:
  /// Pointers must outlive the task; `services` is item-index aligned with
  /// the dataset's item indexes.
  RecommendationTask(const data::InteractionDataset* dataset,
                     const core::ServiceVectorProvider* services,
                     const RecommendationOptions& options);

  /// Trains a fresh NCF for the variant and evaluates leave-one-out.
  RecommendationMetrics Run(PkgmVariant variant) const;

  /// Trains the same NCF Run() would (identical seeds and arithmetic) and
  /// returns it for serving instead of evaluating.
  TrainedRecommender Train(PkgmVariant variant) const;

 private:
  const data::InteractionDataset* dataset_;
  const core::ServiceVectorProvider* services_;
  RecommendationOptions options_;
};

}  // namespace pkgm::tasks

#endif  // PKGM_TASKS_RECOMMENDATION_H_
