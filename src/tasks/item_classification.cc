#include "tasks/item_classification.h"

#include <algorithm>
#include <vector>

#include "nn/linear.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "text/mlm.h"
#include "util/logging.h"

namespace pkgm::tasks {

text::EncodedInput EncodeClassificationSample(
    const data::ClassificationSample& sample, const text::Tokenizer& tok,
    const core::ServiceVectorProvider* services, PkgmVariant variant,
    size_t max_len) {
  std::vector<uint32_t> tokens = tok.Encode(sample.title);
  text::EncodedInput input;

  if (variant == PkgmVariant::kBase) {
    input.token_ids = text::BuildSingleInput(tokens, max_len, &input.valid_len);
    return input;
  }

  PKGM_CHECK(services != nullptr);
  std::vector<Vec> vecs =
      services->Sequence(sample.item_index, VariantServiceMode(variant));
  const size_t n_vec = std::min(vecs.size(), max_len - 3);
  const size_t title_budget = max_len - 2 - n_vec;
  if (tokens.size() > title_budget) tokens.resize(title_budget);

  input.token_ids = text::BuildSingleInput(tokens, max_len, &input.valid_len);
  for (size_t v = 0; v < n_vec; ++v) {
    const size_t pos = input.valid_len + v;
    input.token_ids[pos] = text::kPadId;  // placeholder; embedding replaced
    input.injected.emplace_back(pos, std::move(vecs[v]));
  }
  input.valid_len += n_vec;
  return input;
}

namespace {

/// 1-based rank of `label` in `logits` (higher logit = better), mean of
/// optimistic/pessimistic over ties.
double RankOfLabel(const float* logits, size_t n, uint32_t label) {
  const float target = logits[label];
  uint64_t higher = 0, ties = 0;
  for (size_t j = 0; j < n; ++j) {
    if (j == label) continue;
    if (logits[j] > target) {
      ++higher;
    } else if (logits[j] == target) {
      ++ties;
    }
  }
  return 1.0 + static_cast<double>(higher) + static_cast<double>(ties) / 2.0;
}

}  // namespace

ItemClassificationTask::ItemClassificationTask(
    const data::ClassificationDataset* dataset,
    const core::ServiceVectorProvider* services,
    const ItemClassificationOptions& options)
    : dataset_(dataset), services_(services), options_(options) {
  PKGM_CHECK(dataset != nullptr);
}

TrainedClassifier ItemClassificationTask::Train(PkgmVariant variant) const {
  PKGM_CHECK(variant == PkgmVariant::kBase || services_ != nullptr);
  Rng rng(options_.seed);

  TrainedClassifier trained;
  trained.num_classes = dataset_->num_classes;

  // Tokenizer vocabulary from the training titles.
  text::Tokenizer& tok = trained.tokenizer;
  for (const auto& s : dataset_->train) tok.CountCorpusLine(s.title);
  tok.BuildVocab(1);

  const uint32_t dim = services_ != nullptr ? services_->dim() : 64;
  text::TinyBertConfig cfg;
  cfg.vocab_size = tok.vocab_size();
  cfg.dim = dim;
  cfg.layers = options_.bert_layers;
  cfg.heads = options_.bert_heads;
  cfg.ff_dim = options_.bert_ff;
  cfg.max_len = options_.max_len;
  cfg.seed = options_.seed + 1;
  trained.config = cfg;
  trained.bert = std::make_unique<text::TinyBert>(cfg);
  text::TinyBert& bert = *trained.bert;

  // "Pre-trained language model": MLM on the training titles.
  if (options_.mlm_pretrain_epochs > 0) {
    std::vector<text::EncodedInput> corpus;
    corpus.reserve(dataset_->train.size());
    for (const auto& s : dataset_->train) {
      text::EncodedInput in;
      in.token_ids =
          text::BuildSingleInput(tok.Encode(s.title), cfg.max_len, &in.valid_len);
      corpus.push_back(std::move(in));
    }
    text::MlmOptions mlm_opt;
    mlm_opt.epochs = options_.mlm_pretrain_epochs;
    mlm_opt.seed = options_.seed + 2;
    text::MlmPretrainer(&bert, mlm_opt).Pretrain(corpus);
  }

  // Classifier head over [CLS] (Eq. 10).
  Rng head_rng(options_.seed + 3);
  trained.head = std::make_unique<nn::Linear>(dim, dataset_->num_classes,
                                              &head_rng, "cls.head");
  nn::Linear& head = *trained.head;
  std::vector<nn::Parameter*> params = bert.Params();
  head.Params(&params);
  nn::AdamOptimizer::Options adam;
  adam.lr = options_.learning_rate;
  nn::AdamOptimizer optimizer(params, adam);

  // Fine-tune.
  std::vector<size_t> order(dataset_->train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (uint32_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    double loss_sum = 0.0;
    uint32_t since_step = 0;
    for (size_t idx : order) {
      const auto& sample = dataset_->train[idx];
      text::EncodedInput input = EncodeClassificationSample(
          sample, tok, services_, variant, cfg.max_len);

      Vec cls;
      bert.EncodeCls(input, &cls);
      Mat cls_mat(1, dim);
      for (uint32_t j = 0; j < dim; ++j) cls_mat(0, j) = cls[j];

      Mat logits;
      head.Forward(cls_mat, &logits);
      Mat dlogits;
      loss_sum += nn::SoftmaxCrossEntropy(logits, {sample.label}, &dlogits);

      Mat dcls_mat;
      head.Backward(cls_mat, dlogits, &dcls_mat);
      Vec dcls(dim);
      for (uint32_t j = 0; j < dim; ++j) dcls[j] = dcls_mat(0, j);
      bert.BackwardFromCls(input, dcls);

      if (++since_step >= options_.batch_size) {
        optimizer.Step();
        since_step = 0;
      }
    }
    if (since_step > 0) optimizer.Step();
    trained.train_loss = order.empty() ? 0.0 : loss_sum / order.size();
  }
  return trained;
}

ClassificationMetrics ItemClassificationTask::Run(PkgmVariant variant) const {
  TrainedClassifier trained = Train(variant);
  text::TinyBert& bert = *trained.bert;
  nn::Linear& head = *trained.head;
  const text::Tokenizer& tok = trained.tokenizer;
  const uint32_t dim = trained.config.dim;

  ClassificationMetrics metrics;
  metrics.train_loss = trained.train_loss;

  // Evaluation helper: class logits for one sample.
  auto predict = [&](const data::ClassificationSample& sample) {
    text::EncodedInput input = EncodeClassificationSample(
        sample, tok, services_, variant, trained.config.max_len);
    Vec cls;
    bert.EncodeCls(input, &cls);
    Mat cls_mat(1, dim);
    for (uint32_t j = 0; j < dim; ++j) cls_mat(0, j) = cls[j];
    Mat logits;
    head.Forward(cls_mat, &logits);
    return logits;
  };

  // Hit@k on test (rank of the correct label among all classes, §III-B4).
  const std::vector<int> ks = {1, 3, 10};
  for (int k : ks) metrics.hits[k] = 0.0;
  for (const auto& sample : dataset_->test) {
    Mat logits = predict(sample);
    const double rank =
        RankOfLabel(logits.Row(0), dataset_->num_classes, sample.label);
    for (int k : ks) {
      if (rank <= k) metrics.hits[k] += 1.0;
    }
  }
  if (!dataset_->test.empty()) {
    for (int k : ks) metrics.hits[k] /= static_cast<double>(dataset_->test.size());
  }

  // Accuracy on dev (the paper's AC column).
  uint64_t correct = 0;
  for (const auto& sample : dataset_->dev) {
    Mat logits = predict(sample);
    const float* row = logits.Row(0);
    uint32_t best = 0;
    for (uint32_t j = 1; j < dataset_->num_classes; ++j) {
      if (row[j] > row[best]) best = j;
    }
    if (best == sample.label) ++correct;
  }
  metrics.accuracy = dataset_->dev.empty()
                         ? 0.0
                         : static_cast<double>(correct) /
                               static_cast<double>(dataset_->dev.size());
  return metrics;
}

}  // namespace pkgm::tasks
