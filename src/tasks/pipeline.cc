#include "tasks/pipeline.h"

#include <unordered_set>

#include "kg/key_relations.h"
#include "util/logging.h"

namespace pkgm::tasks {

PretrainedPkgm BuildAndPretrain(const PipelineOptions& options) {
  PretrainedPkgm out;

  // 1. Synthetic product KG (ETL-filtered observed triples + ground truth).
  out.pkg = kg::SyntheticPkgGenerator(options.pkg).Generate();

  // 2. Pre-train PKGM on the observed KG.
  core::PkgmModelOptions model_opt;
  model_opt.num_entities = out.pkg.entities.size();
  model_opt.num_relations = out.pkg.relations.size();
  model_opt.dim = options.dim;
  model_opt.scorer = options.scorer;
  model_opt.use_relation_module = options.use_relation_module;
  model_opt.seed = options.seed;
  out.model = std::make_unique<core::PkgmModel>(model_opt);

  if (options.use_sharded_trainer) {
    core::ShardedTrainer trainer(out.model.get(), &out.pkg.observed,
                                 options.sharded);
    out.last_epoch = trainer.Train(options.pretrain_epochs);
  } else {
    core::Trainer trainer(out.model.get(), &out.pkg.observed, options.trainer);
    out.last_epoch = trainer.Train(options.pretrain_epochs);
  }

  // 3. Key relations: top-k most frequent properties per category
  // (§III-A1), restricted to attribute relations.
  std::unordered_set<kg::RelationId> properties(
      out.pkg.property_relations.begin(), out.pkg.property_relations.end());
  kg::KeyRelationSelector selector(options.service_k, std::move(properties));
  std::vector<std::vector<kg::RelationId>> key_relations =
      selector.SelectPerItem(out.pkg);

  // 4. Service-vector provider over the pre-trained model.
  std::vector<kg::EntityId> item_entities;
  item_entities.reserve(out.pkg.items.size());
  for (const auto& item : out.pkg.items) item_entities.push_back(item.entity);
  out.services = std::make_unique<core::ServiceVectorProvider>(
      out.model.get(), std::move(item_entities), std::move(key_relations));
  return out;
}

}  // namespace pkgm::tasks
