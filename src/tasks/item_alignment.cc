#include "tasks/item_alignment.h"

#include <algorithm>
#include <vector>

#include "nn/linear.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "text/mlm.h"
#include "text/tiny_bert.h"
#include "text/tokenizer.h"
#include "util/logging.h"

namespace pkgm::tasks {

text::EncodedInput EncodeAlignmentPair(
    const data::AlignmentPair& pair, const text::Tokenizer& tok,
    const core::ServiceVectorProvider* services, PkgmVariant variant,
    size_t max_len) {
  std::vector<uint32_t> ta = tok.Encode(pair.title_a);
  std::vector<uint32_t> tb = tok.Encode(pair.title_b);
  text::EncodedInput input;

  if (variant == PkgmVariant::kBase) {
    input.token_ids = text::BuildPairInput(ta, tb, max_len, &input.valid_len,
                                           &input.segment_ids);
    return input;
  }

  PKGM_CHECK(services != nullptr);
  const core::ServiceMode mode = VariantServiceMode(variant);
  std::vector<Vec> va = services->Sequence(pair.item_a, mode);
  std::vector<Vec> vb = services->Sequence(pair.item_b, mode);

  const size_t per_side = (max_len - 3) / 2;
  auto fit = [&](std::vector<uint32_t>* tokens, std::vector<Vec>* vecs) {
    const size_t n_vec = std::min(vecs->size(), per_side - 1);
    vecs->resize(n_vec);
    const size_t budget = per_side - n_vec;
    if (tokens->size() > budget) tokens->resize(budget);
  };
  fit(&ta, &va);
  fit(&tb, &vb);

  input.token_ids.reserve(max_len);
  input.segment_ids.reserve(max_len);
  auto push = [&](uint32_t id, uint32_t seg) {
    input.token_ids.push_back(id);
    input.segment_ids.push_back(seg);
  };
  auto inject = [&](std::vector<Vec>* vecs, uint32_t seg) {
    for (Vec& v : *vecs) {
      input.injected.emplace_back(input.token_ids.size(), std::move(v));
      push(text::kPadId, seg);
    }
  };

  push(text::kClsId, 0);
  for (uint32_t id : ta) push(id, 0);
  push(text::kSepId, 0);
  inject(&va, 0);
  for (uint32_t id : tb) push(id, 1);
  push(text::kSepId, 1);
  inject(&vb, 1);

  input.valid_len = input.token_ids.size();
  PKGM_CHECK_LE(input.valid_len, max_len);
  return input;
}

ItemAlignmentTask::ItemAlignmentTask(const data::AlignmentDataset* dataset,
                                     const core::ServiceVectorProvider* services,
                                     const ItemAlignmentOptions& options)
    : dataset_(dataset), services_(services), options_(options) {
  PKGM_CHECK(dataset != nullptr);
}

TrainedAligner ItemAlignmentTask::Train(PkgmVariant variant) const {
  PKGM_CHECK(variant == PkgmVariant::kBase || services_ != nullptr);
  Rng rng(options_.seed);

  TrainedAligner trained;
  text::Tokenizer& tok = trained.tokenizer;
  for (const auto& p : dataset_->train) {
    tok.CountCorpusLine(p.title_a);
    tok.CountCorpusLine(p.title_b);
  }
  tok.BuildVocab(1);

  const uint32_t dim = services_ != nullptr ? services_->dim() : 64;
  text::TinyBertConfig cfg;
  cfg.vocab_size = tok.vocab_size();
  cfg.dim = dim;
  cfg.layers = options_.bert_layers;
  cfg.heads = options_.bert_heads;
  cfg.ff_dim = options_.bert_ff;
  cfg.max_len = options_.max_len;
  cfg.seed = options_.seed + 1;
  trained.config = cfg;
  trained.bert = std::make_unique<text::TinyBert>(cfg);
  text::TinyBert& bert = *trained.bert;

  if (options_.mlm_pretrain_epochs > 0) {
    std::vector<text::EncodedInput> corpus;
    for (const auto& p : dataset_->train) {
      text::EncodedInput in;
      in.token_ids = text::BuildPairInput(tok.Encode(p.title_a),
                                          tok.Encode(p.title_b), cfg.max_len,
                                          &in.valid_len, &in.segment_ids);
      corpus.push_back(std::move(in));
    }
    text::MlmOptions mlm_opt;
    mlm_opt.epochs = options_.mlm_pretrain_epochs;
    mlm_opt.seed = options_.seed + 2;
    text::MlmPretrainer(&bert, mlm_opt).Pretrain(corpus);
  }

  Rng head_rng(options_.seed + 3);
  trained.head = std::make_unique<nn::Linear>(dim, 1, &head_rng, "align.head");
  nn::Linear& head = *trained.head;
  std::vector<nn::Parameter*> params = bert.Params();
  head.Params(&params);
  nn::AdamOptimizer::Options adam;
  adam.lr = options_.learning_rate;
  nn::AdamOptimizer optimizer(params, adam);

  std::vector<size_t> order(dataset_->train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (uint32_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    double loss_sum = 0.0;
    uint32_t since_step = 0;
    for (size_t idx : order) {
      const auto& pair = dataset_->train[idx];
      text::EncodedInput input =
          EncodeAlignmentPair(pair, tok, services_, variant, cfg.max_len);

      Vec cls;
      bert.EncodeCls(input, &cls);
      Mat cls_mat(1, dim);
      for (uint32_t j = 0; j < dim; ++j) cls_mat(0, j) = cls[j];

      Mat logits;
      head.Forward(cls_mat, &logits);
      Mat dlogits;
      loss_sum +=
          nn::BinaryCrossEntropyWithLogits(logits, {pair.label}, &dlogits);

      Mat dcls_mat;
      head.Backward(cls_mat, dlogits, &dcls_mat);
      Vec dcls(dim);
      for (uint32_t j = 0; j < dim; ++j) dcls[j] = dcls_mat(0, j);
      bert.BackwardFromCls(input, dcls);

      if (++since_step >= options_.batch_size) {
        optimizer.Step();
        since_step = 0;
      }
    }
    if (since_step > 0) optimizer.Step();
    trained.train_loss = order.empty() ? 0.0 : loss_sum / order.size();
  }
  return trained;
}

AlignmentMetrics ItemAlignmentTask::Run(PkgmVariant variant) const {
  TrainedAligner trained = Train(variant);
  text::TinyBert& bert = *trained.bert;
  nn::Linear& head = *trained.head;
  const text::Tokenizer& tok = trained.tokenizer;
  const uint32_t dim = trained.config.dim;

  AlignmentMetrics metrics;
  metrics.train_loss = trained.train_loss;

  auto score = [&](const data::AlignmentPair& pair) {
    text::EncodedInput input = EncodeAlignmentPair(
        pair, tok, services_, variant, trained.config.max_len);
    Vec cls;
    bert.EncodeCls(input, &cls);
    Mat cls_mat(1, dim);
    for (uint32_t j = 0; j < dim; ++j) cls_mat(0, j) = cls[j];
    Mat logits;
    head.Forward(cls_mat, &logits);
    return logits(0, 0);  // monotone in probability
  };

  // Accuracy on the classification test split (Table VII).
  uint64_t correct = 0;
  for (const auto& pair : dataset_->test_c) {
    const bool predicted = score(pair) > 0.0f;  // sigmoid(0) == 0.5
    if (predicted == (pair.label > 0.5f)) ++correct;
  }
  metrics.accuracy = dataset_->test_c.empty()
                         ? 0.0
                         : static_cast<double>(correct) /
                               static_cast<double>(dataset_->test_c.size());

  // Hit@k on the ranking split (Table VI): rank the aligned pair among
  // 1 + negatives candidates.
  const std::vector<int> ks = {1, 3, 10};
  for (int k : ks) metrics.hits[k] = 0.0;
  for (const auto& rc : dataset_->test_r) {
    const float pos = score(rc.positive);
    uint64_t higher = 0, ties = 0;
    for (const auto& neg : rc.negatives) {
      const float s = score(neg);
      if (s > pos) {
        ++higher;
      } else if (s == pos) {
        ++ties;
      }
    }
    const double rank = 1.0 + static_cast<double>(higher) +
                        static_cast<double>(ties) / 2.0;
    for (int k : ks) {
      if (rank <= k) metrics.hits[k] += 1.0;
    }
  }
  if (!dataset_->test_r.empty()) {
    for (int k : ks) {
      metrics.hits[k] /= static_cast<double>(dataset_->test_r.size());
    }
  }
  return metrics;
}

}  // namespace pkgm::tasks
