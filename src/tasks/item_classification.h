#ifndef PKGM_TASKS_ITEM_CLASSIFICATION_H_
#define PKGM_TASKS_ITEM_CLASSIFICATION_H_

#include <cstdint>
#include <map>
#include <memory>

#include "core/service.h"
#include "data/classification_dataset.h"
#include "nn/linear.h"
#include "tasks/variant.h"
#include "text/tiny_bert.h"
#include "text/tokenizer.h"

namespace pkgm::tasks {

/// Builds the encoder input for one sample. Base: [CLS] title [SEP].
/// PKGM variants: the title is truncated so that the k (or 2k) service
/// vectors fit inside max_len, then the vectors are injected after [SEP] —
/// the paper's "replace the last k title embeddings with service vectors"
/// (Fig. 4). Shared by offline evaluation and online serving, so the two
/// paths construct bit-identical encoder inputs.
text::EncodedInput EncodeClassificationSample(
    const data::ClassificationSample& sample, const text::Tokenizer& tok,
    const core::ServiceVectorProvider* services, PkgmVariant variant,
    size_t max_len);

/// A trained title classifier ready for serving: tokenizer + encoder +
/// [CLS] head. TinyBert caches per-sequence activations, so concurrent
/// callers must serialize on it.
struct TrainedClassifier {
  text::TinyBertConfig config;
  text::Tokenizer tokenizer;
  std::unique_ptr<text::TinyBert> bert;
  std::unique_ptr<nn::Linear> head;
  uint32_t num_classes = 0;
  double train_loss = 0.0;
};

/// Metrics reported in Table IV: Hit@k over the class ranking plus
/// prediction accuracy (AC, computed on the dev split as in the paper).
struct ClassificationMetrics {
  std::map<int, double> hits;  ///< Hit@1/3/10 on the test split
  double accuracy = 0.0;       ///< argmax accuracy on the dev split
  double train_loss = 0.0;     ///< final-epoch mean cross-entropy
};

/// Item classification (paper §III-B): classify an item's title into its
/// category with a BERT-style encoder; PKGM variants replace the trailing
/// title tokens with service vectors (Fig. 4).
struct ItemClassificationOptions {
  uint32_t max_len = 32;
  uint32_t bert_layers = 2;
  uint32_t bert_heads = 4;
  uint32_t bert_ff = 128;
  uint32_t epochs = 3;      // paper: 3 fine-tuning epochs
  uint32_t batch_size = 16;
  float learning_rate = 1e-3f;
  /// If > 0, MLM-pretrain the encoder on the training titles for this many
  /// epochs before fine-tuning ("pre-trained language model" substitution).
  uint32_t mlm_pretrain_epochs = 1;
  uint64_t seed = 401;
};

/// Runs one full train + evaluate cycle for a variant. The encoder
/// dimension is taken from `services->dim()` (service vectors are injected
/// as token embeddings, so the dims must match); `services` may be null for
/// kBase only if no PKGM variant will run — pass it always in practice.
class ItemClassificationTask {
 public:
  /// All pointers must outlive the task. `services` must be item-index
  /// aligned with `dataset`'s item indexes.
  ItemClassificationTask(const data::ClassificationDataset* dataset,
                         const core::ServiceVectorProvider* services,
                         const ItemClassificationOptions& options);

  /// Trains a fresh TinyBert + classifier for the variant and returns its
  /// metrics. Deterministic given options.seed.
  ClassificationMetrics Run(PkgmVariant variant) const;

  /// Trains the same classifier Run() would (identical seeds and
  /// arithmetic) and returns it for serving instead of evaluating.
  TrainedClassifier Train(PkgmVariant variant) const;

 private:
  const data::ClassificationDataset* dataset_;
  const core::ServiceVectorProvider* services_;
  ItemClassificationOptions options_;
};

}  // namespace pkgm::tasks

#endif  // PKGM_TASKS_ITEM_CLASSIFICATION_H_
