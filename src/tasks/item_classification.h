#ifndef PKGM_TASKS_ITEM_CLASSIFICATION_H_
#define PKGM_TASKS_ITEM_CLASSIFICATION_H_

#include <cstdint>
#include <map>

#include "core/service.h"
#include "data/classification_dataset.h"
#include "tasks/variant.h"
#include "text/tiny_bert.h"
#include "text/tokenizer.h"

namespace pkgm::tasks {

/// Metrics reported in Table IV: Hit@k over the class ranking plus
/// prediction accuracy (AC, computed on the dev split as in the paper).
struct ClassificationMetrics {
  std::map<int, double> hits;  ///< Hit@1/3/10 on the test split
  double accuracy = 0.0;       ///< argmax accuracy on the dev split
  double train_loss = 0.0;     ///< final-epoch mean cross-entropy
};

/// Item classification (paper §III-B): classify an item's title into its
/// category with a BERT-style encoder; PKGM variants replace the trailing
/// title tokens with service vectors (Fig. 4).
struct ItemClassificationOptions {
  uint32_t max_len = 32;
  uint32_t bert_layers = 2;
  uint32_t bert_heads = 4;
  uint32_t bert_ff = 128;
  uint32_t epochs = 3;      // paper: 3 fine-tuning epochs
  uint32_t batch_size = 16;
  float learning_rate = 1e-3f;
  /// If > 0, MLM-pretrain the encoder on the training titles for this many
  /// epochs before fine-tuning ("pre-trained language model" substitution).
  uint32_t mlm_pretrain_epochs = 1;
  uint64_t seed = 401;
};

/// Runs one full train + evaluate cycle for a variant. The encoder
/// dimension is taken from `services->dim()` (service vectors are injected
/// as token embeddings, so the dims must match); `services` may be null for
/// kBase only if no PKGM variant will run — pass it always in practice.
class ItemClassificationTask {
 public:
  /// All pointers must outlive the task. `services` must be item-index
  /// aligned with `dataset`'s item indexes.
  ItemClassificationTask(const data::ClassificationDataset* dataset,
                         const core::ServiceVectorProvider* services,
                         const ItemClassificationOptions& options);

  /// Trains a fresh TinyBert + classifier for the variant and returns its
  /// metrics. Deterministic given options.seed.
  ClassificationMetrics Run(PkgmVariant variant) const;

 private:
  const data::ClassificationDataset* dataset_;
  const core::ServiceVectorProvider* services_;
  ItemClassificationOptions options_;
};

}  // namespace pkgm::tasks

#endif  // PKGM_TASKS_ITEM_CLASSIFICATION_H_
