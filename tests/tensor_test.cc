#include <gtest/gtest.h>

#include <cmath>

#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/vec.h"
#include "util/rng.h"

namespace pkgm {
namespace {

TEST(VecTest, ConstructionAndIndexing) {
  Vec v(4, 2.5f);
  EXPECT_EQ(v.size(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(v[i], 2.5f);
  v[2] = -1.0f;
  EXPECT_FLOAT_EQ(v[2], -1.0f);
}

TEST(VecTest, FillZeroResize) {
  Vec v(3);
  v.Fill(7.0f);
  EXPECT_FLOAT_EQ(v[0], 7.0f);
  v.Zero();
  EXPECT_FLOAT_EQ(v[1], 0.0f);
  v.Resize(5);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_FLOAT_EQ(v[4], 0.0f);
}

TEST(MatTest, RowMajorLayout) {
  Mat m(2, 3);
  m(0, 0) = 1;
  m(0, 2) = 2;
  m(1, 0) = 3;
  EXPECT_FLOAT_EQ(m.data()[0], 1);
  EXPECT_FLOAT_EQ(m.data()[2], 2);
  EXPECT_FLOAT_EQ(m.data()[3], 3);
  EXPECT_EQ(m.Row(1), m.data() + 3);
}

TEST(OpsTest, AxpyScaleSubAdd) {
  float x[3] = {1, 2, 3};
  float y[3] = {10, 20, 30};
  Axpy(3, 2.0f, x, y);
  EXPECT_FLOAT_EQ(y[0], 12);
  EXPECT_FLOAT_EQ(y[2], 36);

  Scale(3, 0.5f, y);
  EXPECT_FLOAT_EQ(y[0], 6);

  float out[3];
  Sub(3, y, x, out);
  EXPECT_FLOAT_EQ(out[0], 5);
  Add(3, x, x, out);
  EXPECT_FLOAT_EQ(out[2], 6);
}

TEST(OpsTest, DotAndNorms) {
  float x[4] = {1, -2, 3, -4};
  float y[4] = {1, 1, 1, 1};
  EXPECT_FLOAT_EQ(Dot(4, x, y), -2.0f);
  EXPECT_FLOAT_EQ(L1Norm(4, x), 10.0f);
  EXPECT_FLOAT_EQ(SquaredL2Norm(4, x), 30.0f);
  EXPECT_NEAR(L2Norm(4, x), std::sqrt(30.0f), 1e-5);
}

TEST(OpsTest, SignOf) {
  float x[3] = {-2.0f, 0.0f, 5.0f};
  float s[3];
  SignOf(3, x, s);
  EXPECT_FLOAT_EQ(s[0], -1.0f);
  EXPECT_FLOAT_EQ(s[1], 0.0f);
  EXPECT_FLOAT_EQ(s[2], 1.0f);
}

TEST(OpsTest, ProjectToUnitBallShrinksOnlyWhenOutside) {
  float inside[2] = {0.3f, 0.4f};  // norm 0.5
  ProjectToUnitBall(2, inside);
  EXPECT_FLOAT_EQ(inside[0], 0.3f);

  float outside[2] = {3.0f, 4.0f};  // norm 5
  float prev = ProjectToUnitBall(2, outside);
  EXPECT_FLOAT_EQ(prev, 5.0f);
  EXPECT_NEAR(L2Norm(2, outside), 1.0f, 1e-5);
  EXPECT_NEAR(outside[0] / outside[1], 0.75f, 1e-5);
}

TEST(OpsTest, GemvMatchesManual) {
  Mat a(2, 3);
  float vals[] = {1, 2, 3, 4, 5, 6};
  std::copy(vals, vals + 6, a.data());
  float x[3] = {1, 0, -1};
  float y[2];
  Gemv(a, x, y);
  EXPECT_FLOAT_EQ(y[0], -2);  // 1 - 3
  EXPECT_FLOAT_EQ(y[1], -2);  // 4 - 6
}

TEST(OpsTest, GemvTransposedMatchesManual) {
  Mat a(2, 3);
  float vals[] = {1, 2, 3, 4, 5, 6};
  std::copy(vals, vals + 6, a.data());
  float x[2] = {1, 2};
  float y[3];
  GemvTransposed(a, x, y);
  EXPECT_FLOAT_EQ(y[0], 9);
  EXPECT_FLOAT_EQ(y[1], 12);
  EXPECT_FLOAT_EQ(y[2], 15);
}

TEST(OpsTest, RawGemvAgreesWithMatGemv) {
  Rng rng(3);
  Mat a(5, 7);
  UniformInit(a.size(), -1, 1, &rng, a.data());
  std::vector<float> x(7), y1(5), y2(5);
  UniformInit(7, -1, 1, &rng, x.data());
  Gemv(a, x.data(), y1.data());
  GemvRaw(5, 7, a.data(), x.data(), y2.data());
  for (int i = 0; i < 5; ++i) EXPECT_FLOAT_EQ(y1[i], y2[i]);

  std::vector<float> xt(5), z1(7), z2(7);
  UniformInit(5, -1, 1, &rng, xt.data());
  GemvTransposed(a, xt.data(), z1.data());
  GemvTransposedRaw(5, 7, a.data(), xt.data(), z2.data());
  for (int i = 0; i < 7; ++i) EXPECT_FLOAT_EQ(z1[i], z2[i]);
}

TEST(OpsTest, GemmIdentity) {
  Mat a(3, 3), id(3, 3), c(3, 3);
  Rng rng(5);
  UniformInit(a.size(), -1, 1, &rng, a.data());
  for (int i = 0; i < 3; ++i) id(i, i) = 1.0f;
  Gemm(a, id, &c);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(c.data()[i], a.data()[i]);
  }
}

TEST(OpsTest, GemmMatchesManual) {
  Mat a(2, 2), b(2, 2), c(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  Gemm(a, b, &c);
  EXPECT_FLOAT_EQ(c(0, 0), 19);
  EXPECT_FLOAT_EQ(c(0, 1), 22);
  EXPECT_FLOAT_EQ(c(1, 0), 43);
  EXPECT_FLOAT_EQ(c(1, 1), 50);
}

TEST(OpsTest, GemmAbtEqualsGemmWithExplicitTranspose) {
  Rng rng(7);
  Mat a(3, 4), b(5, 4);
  UniformInit(a.size(), -1, 1, &rng, a.data());
  UniformInit(b.size(), -1, 1, &rng, b.data());
  // bt = transpose(b)
  Mat bt(4, 5);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 4; ++j) bt(j, i) = b(i, j);
  }
  Mat c1(3, 5), c2(3, 5);
  GemmAbt(a, b, &c1);
  Gemm(a, bt, &c2);
  for (size_t i = 0; i < c1.size(); ++i) {
    EXPECT_NEAR(c1.data()[i], c2.data()[i], 1e-5);
  }
}

TEST(OpsTest, GemmAtbAccumAccumulates) {
  Rng rng(9);
  Mat a(4, 3), b(4, 5);
  UniformInit(a.size(), -1, 1, &rng, a.data());
  UniformInit(b.size(), -1, 1, &rng, b.data());
  // at = transpose(a)
  Mat at(3, 4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 3; ++j) at(j, i) = a(i, j);
  }
  Mat expected(3, 5);
  Gemm(at, b, &expected);

  Mat c(3, 5, 1.0f);  // pre-filled: accumulation on top of ones
  GemmAtbAccum(a, b, &c);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], expected.data()[i] + 1.0f, 1e-5);
  }
}

TEST(OpsTest, GerRankOneUpdate) {
  Mat a(2, 3);
  float x[2] = {1, 2};
  float y[3] = {3, 4, 5};
  Ger(&a, 2.0f, x, y);
  EXPECT_FLOAT_EQ(a(0, 0), 6);
  EXPECT_FLOAT_EQ(a(1, 2), 20);
}

TEST(OpsTest, SoftmaxSumsToOneAndOrders) {
  float x[4] = {1.0f, 2.0f, 3.0f, 0.0f};
  SoftmaxInplace(4, x);
  float sum = x[0] + x[1] + x[2] + x[3];
  EXPECT_NEAR(sum, 1.0f, 1e-5);
  EXPECT_GT(x[2], x[1]);
  EXPECT_GT(x[1], x[0]);
  EXPECT_GT(x[0], x[3]);
}

TEST(OpsTest, SoftmaxStableForLargeInputs) {
  float x[2] = {1000.0f, 1000.0f};
  SoftmaxInplace(2, x);
  EXPECT_NEAR(x[0], 0.5f, 1e-5);
  EXPECT_FALSE(std::isnan(x[0]));
}

TEST(OpsTest, LogSumExpMatchesNaiveForSmallInputs) {
  float x[3] = {0.1f, 0.5f, -0.2f};
  float naive =
      std::log(std::exp(0.1f) + std::exp(0.5f) + std::exp(-0.2f));
  EXPECT_NEAR(LogSumExp(3, x), naive, 1e-5);
}

TEST(OpsTest, HadamardElementwise) {
  float x[3] = {1, 2, 3};
  float y[3] = {4, 5, 6};
  float out[3];
  Hadamard(3, x, y, out);
  EXPECT_FLOAT_EQ(out[0], 4);
  EXPECT_FLOAT_EQ(out[1], 10);
  EXPECT_FLOAT_EQ(out[2], 18);
}

TEST(InitTest, UniformWithinBounds) {
  Rng rng(11);
  std::vector<float> v(1000);
  UniformInit(v.size(), -0.5f, 0.5f, &rng, v.data());
  for (float x : v) {
    EXPECT_GE(x, -0.5f);
    EXPECT_LT(x, 0.5f);
  }
}

TEST(InitTest, XavierBoundScalesWithFans) {
  Rng rng(13);
  Mat small(4, 4), big(400, 400);
  XavierInit(&small, &rng);
  XavierInit(&big, &rng);
  float max_small = 0, max_big = 0;
  for (size_t i = 0; i < small.size(); ++i) {
    max_small = std::max(max_small, std::fabs(small.data()[i]));
  }
  for (size_t i = 0; i < big.size(); ++i) {
    max_big = std::max(max_big, std::fabs(big.data()[i]));
  }
  EXPECT_GT(max_small, max_big);  // larger fan => tighter bound
}

TEST(InitTest, TransEInitIsUnitNorm) {
  Rng rng(17);
  std::vector<float> v(64);
  TransEInit(64, &rng, v.data());
  EXPECT_NEAR(L2Norm(64, v.data()), 1.0f, 1e-5);
}

}  // namespace
}  // namespace pkgm
