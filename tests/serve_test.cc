#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/embedding_source.h"
#include "core/pkgm_model.h"
#include "core/service.h"
#include "serve/bounded_queue.h"
#include "serve/knowledge_server.h"
#include "serve/request.h"
#include "serve/vector_cache.h"
#include "store/model_registry.h"
#include "tensor/simd/kernel_dispatch.h"
#include "util/rng.h"

namespace pkgm::serve {
namespace {

// A small provider over a deterministic model: items 0..9 map to entities
// 0..9; item 7 has an empty key-relation list (the provider explicitly
// allows that), the others have 1..4 relations.
struct Fixture {
  Fixture() {
    core::PkgmModelOptions mopt;
    mopt.num_entities = 20;
    mopt.num_relations = 5;
    mopt.dim = 8;
    mopt.seed = 17;
    model = std::make_unique<core::PkgmModel>(mopt);

    std::vector<kg::EntityId> entities;
    std::vector<std::vector<kg::RelationId>> rels;
    for (uint32_t i = 0; i < 10; ++i) {
      entities.push_back(i);
      std::vector<kg::RelationId> r;
      if (i != 7) {
        for (uint32_t j = 0; j <= i % 4; ++j) r.push_back((i + j) % 5);
      }
      rels.push_back(std::move(r));
    }
    provider = std::make_unique<core::ServiceVectorProvider>(
        model.get(), std::move(entities), std::move(rels));
  }

  std::unique_ptr<core::PkgmModel> model;
  std::unique_ptr<core::ServiceVectorProvider> provider;
};

// ---------------------------------------------------------- BoundedQueue --

TEST(BoundedQueueTest, RejectsWhenFullAndDrainsAfterClose) {
  BoundedQueue<int> q(2);
  int x = 1;
  EXPECT_TRUE(q.TryPush(std::move(x)));
  x = 2;
  EXPECT_TRUE(q.TryPush(std::move(x)));
  x = 3;
  EXPECT_FALSE(q.TryPush(std::move(x)));  // full
  EXPECT_EQ(q.size(), 2u);

  q.Close();
  x = 4;
  EXPECT_FALSE(q.TryPush(std::move(x)));  // closed
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));  // graceful drain after Close
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.Pop(&out));  // closed and drained
}

TEST(BoundedQueueTest, PopBlocksUntilPush) {
  BoundedQueue<int> q(1);
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    int out = 0;
    ASSERT_TRUE(q.Pop(&out));
    EXPECT_EQ(out, 42);
    got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(got.load());
  int x = 42;
  EXPECT_TRUE(q.TryPush(std::move(x)));
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(BoundedQueueTest, CloseWakesEveryBlockedConsumer) {
  // Consumers parked in Pop on an empty queue must ALL wake when Close()
  // runs — a missed notify_all here deadlocks server shutdown.
  BoundedQueue<int> q(4);
  constexpr int kConsumers = 8;
  std::atomic<int> woke{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < kConsumers; ++i) {
    consumers.emplace_back([&] {
      int out = 0;
      while (q.Pop(&out)) {
      }
      ++woke;  // Pop returned false: closed and drained
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(woke.load(), 0);  // all parked

  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(woke.load(), kConsumers);
}

TEST(BoundedQueueTest, CloseWhileFullStillDrainsThenWakes) {
  // Close() with a full queue: queued elements are still handed out
  // (graceful drain), then blocked consumers see closed-and-empty.
  BoundedQueue<int> q(2);
  int x = 1;
  ASSERT_TRUE(q.TryPush(std::move(x)));
  x = 2;
  ASSERT_TRUE(q.TryPush(std::move(x)));

  std::atomic<int> popped{0}, finished{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 4; ++i) {
    consumers.emplace_back([&] {
      int out = 0;
      while (q.Pop(&out)) ++popped;
      ++finished;
    });
  }
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(popped.load(), 2);
  EXPECT_EQ(finished.load(), 4);
  EXPECT_EQ(q.size(), 0u);
}

// ------------------------------------------------------ ShardedVectorCache --

TEST(ShardedVectorCacheTest, LruEvictionAndCounters) {
  ShardedVectorCache cache(/*capacity=*/2, /*num_shards=*/1);
  Vec out;
  EXPECT_FALSE(cache.Lookup(0, core::ServiceMode::kAll, &out));
  cache.Insert(0, core::ServiceMode::kAll, Vec({1.0f}), cache.generation());
  cache.Insert(1, core::ServiceMode::kAll, Vec({2.0f}), cache.generation());
  // Touch 0 so 1 becomes the LRU victim.
  EXPECT_TRUE(cache.Lookup(0, core::ServiceMode::kAll, &out));
  cache.Insert(2, core::ServiceMode::kAll, Vec({3.0f}), cache.generation());

  EXPECT_TRUE(cache.Lookup(0, core::ServiceMode::kAll, &out));
  EXPECT_EQ(out, Vec({1.0f}));
  EXPECT_FALSE(cache.Lookup(1, core::ServiceMode::kAll, &out));  // evicted
  EXPECT_TRUE(cache.Lookup(2, core::ServiceMode::kAll, &out));

  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 2u);  // initial lookup of 0 + post-eviction lookup of 1
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ShardedVectorCacheTest, ModeIsPartOfTheKey) {
  ShardedVectorCache cache(8, 2);
  cache.Insert(3, core::ServiceMode::kTripleOnly, Vec({1.0f}), cache.generation());
  Vec out;
  EXPECT_FALSE(cache.Lookup(3, core::ServiceMode::kRelationOnly, &out));
  EXPECT_FALSE(cache.Lookup(3, core::ServiceMode::kAll, &out));
  EXPECT_TRUE(cache.Lookup(3, core::ServiceMode::kTripleOnly, &out));
}

TEST(ShardedVectorCacheTest, InvalidateDropsEntriesKeepsCounters) {
  ShardedVectorCache cache(16, 4);
  Vec out;
  cache.Insert(1, core::ServiceMode::kAll, Vec({1.0f}), cache.generation());
  EXPECT_TRUE(cache.Lookup(1, core::ServiceMode::kAll, &out));
  cache.Invalidate();
  EXPECT_FALSE(cache.Lookup(1, core::ServiceMode::kAll, &out));
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);  // the post-Invalidate lookup
}

// Regression for the stale-repopulation race: a value computed against the
// old model must not land in the cache after an Invalidate() — the insert
// carries the generation it was computed under and is dropped.
TEST(ShardedVectorCacheTest, InvalidateDuringInsertDropsStaleValue) {
  ShardedVectorCache cache(16, 2);
  // The caller snapshots the generation before reading the model...
  const uint64_t gen = cache.generation();
  // ...the model is swapped and the cache invalidated mid-computation...
  cache.Invalidate();
  // ...and the stale insert must be rejected.
  cache.Insert(5, core::ServiceMode::kAll, Vec({9.0f}), gen);
  Vec out;
  EXPECT_FALSE(cache.Lookup(5, core::ServiceMode::kAll, &out));
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.stale_inserts, 1u);

  // A fresh-generation insert goes through.
  cache.Insert(5, core::ServiceMode::kAll, Vec({3.0f}), cache.generation());
  EXPECT_TRUE(cache.Lookup(5, core::ServiceMode::kAll, &out));
  EXPECT_EQ(out, Vec({3.0f}));
}

// Concurrent hammering: one thread invalidates while others insert with
// generations snapshotted before their (simulated) computation. After the
// final invalidate+settle, no entry may hold a value tagged before the
// last invalidation — i.e. every surviving entry was inserted with the
// current generation.
TEST(ShardedVectorCacheTest, InvalidateDuringConcurrentInsertsNeverGoesStale) {
  ShardedVectorCache cache(64, 4);
  std::atomic<bool> stop{false};
  std::thread invalidator([&] {
    for (int i = 0; i < 200; ++i) cache.Invalidate();
    stop = true;
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&, w] {
      uint32_t item = 0;
      while (!stop.load()) {
        const uint64_t gen = cache.generation();
        // The "computation" the generation snapshot protects.
        Vec value({static_cast<float>(w)});
        cache.Insert(item++ % 32, core::ServiceMode::kAll, value, gen);
      }
    });
  }
  invalidator.join();
  for (auto& t : writers) t.join();

  // One final invalidate: everything inserted before it must be gone and
  // nothing tagged with an older generation may ever reappear.
  cache.Invalidate();
  Vec out;
  for (uint32_t item = 0; item < 32; ++item) {
    EXPECT_FALSE(cache.Lookup(item, core::ServiceMode::kAll, &out));
  }
  EXPECT_EQ(cache.Stats().entries, 0u);
}

// -------------------------------------------------------- KnowledgeServer --

TEST(KnowledgeServerTest, QueueFullRejection) {
  Fixture fx;
  KnowledgeServerOptions opt;
  opt.num_workers = 1;
  opt.queue_capacity = 2;  // batches
  KnowledgeServer server(fx.provider.get(), opt);
  // Not started: submissions park in the queue, so capacity is exercised
  // deterministically.
  auto f1 = server.SubmitBatch({ServiceRequest{}, ServiceRequest{}});
  auto f2 = server.Submit(ServiceRequest{});
  auto f3 = server.Submit(ServiceRequest{});  // queue full → rejected

  ServiceResponse rejected = f3.get();
  EXPECT_EQ(rejected.code, ResponseCode::kRejected);
  EXPECT_TRUE(rejected.vectors.empty());
  EXPECT_EQ(server.stats().rejected(), 1u);
  EXPECT_EQ(server.stats().accepted(), 3u);
  EXPECT_EQ(server.queue_depth(), 3u);

  server.Start();
  for (auto& f : f1) EXPECT_EQ(f.get().code, ResponseCode::kOk);
  EXPECT_EQ(f2.get().code, ResponseCode::kOk);
  server.Stop();
  EXPECT_EQ(server.queue_depth(), 0u);
  EXPECT_EQ(server.stats().ok(), 3u);
}

TEST(KnowledgeServerTest, SubmitBatchRejectionIsAllOrNothing) {
  Fixture fx;
  KnowledgeServerOptions opt;
  opt.queue_capacity = 1;
  KnowledgeServer server(fx.provider.get(), opt);
  // Not started: the first batch fills the queue.
  auto accepted = server.SubmitBatch(
      {ServiceRequest{}, ServiceRequest{}, ServiceRequest{}});
  EXPECT_EQ(server.queue_depth(), 3u);

  // A rejected batch must reject EVERY request and must not leak into the
  // pending gauge — queue_depth() stays exactly at the accepted count.
  for (int attempt = 0; attempt < 5; ++attempt) {
    auto rejected = server.SubmitBatch({ServiceRequest{}, ServiceRequest{}});
    ASSERT_EQ(rejected.size(), 2u);
    for (auto& f : rejected) {
      EXPECT_EQ(f.get().code, ResponseCode::kRejected);
    }
    EXPECT_EQ(server.queue_depth(), 3u);
  }
  EXPECT_EQ(server.stats().rejected(), 10u);
  EXPECT_EQ(server.stats().accepted(), 3u);

  server.Start();
  for (auto& f : accepted) EXPECT_EQ(f.get().code, ResponseCode::kOk);
  server.Stop();
  EXPECT_EQ(server.queue_depth(), 0u);
}

TEST(KnowledgeServerTest, SubmitBatchAsyncDeliversEveryCompletion) {
  Fixture fx;
  KnowledgeServer server(fx.provider.get());
  server.Start();

  constexpr size_t kBatch = 10;
  std::vector<ServiceRequest> requests;
  for (uint32_t i = 0; i < kBatch; ++i) {
    ServiceRequest request;
    request.item = i;
    requests.push_back(request);
  }
  std::mutex mu;
  std::vector<ServiceResponse> responses(kBatch);
  std::vector<int> calls(kBatch, 0);
  std::promise<void> all_done;
  std::atomic<size_t> remaining{kBatch};
  server.SubmitBatchAsync(requests, [&](size_t index, ServiceResponse r) {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_LT(index, kBatch);
    ++calls[index];
    responses[index] = std::move(r);
    if (remaining.fetch_sub(1) == 1) all_done.set_value();
  });
  all_done.get_future().wait();

  for (size_t i = 0; i < kBatch; ++i) {
    EXPECT_EQ(calls[i], 1) << "index " << i;  // exactly once per request
    EXPECT_EQ(responses[i].code, ResponseCode::kOk);
    // Async and future paths serve identical bytes.
    ServiceResponse direct = server.Submit(requests[i]).get();
    ASSERT_EQ(responses[i].vectors.size(), direct.vectors.size());
    for (size_t v = 0; v < direct.vectors.size(); ++v) {
      EXPECT_EQ(responses[i].vectors[v], direct.vectors[v]);
    }
  }
  server.Stop();
}

TEST(KnowledgeServerTest, SubmitBatchAsyncRejectionCallsBackSynchronously) {
  Fixture fx;
  KnowledgeServerOptions opt;
  opt.queue_capacity = 1;
  KnowledgeServer server(fx.provider.get(), opt);
  auto parked = server.SubmitBatch({ServiceRequest{}});  // fills the queue

  std::vector<size_t> indices;
  server.SubmitBatchAsync(
      {ServiceRequest{}, ServiceRequest{}},
      [&](size_t index, ServiceResponse r) {
        // Rejection runs on the submitting thread, so plain mutation is
        // safe here.
        indices.push_back(index);
        EXPECT_EQ(r.code, ResponseCode::kRejected);
      });
  EXPECT_EQ(indices, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(server.queue_depth(), 1u);

  server.Start();
  EXPECT_EQ(parked[0].get().code, ResponseCode::kOk);
  server.Stop();
}

TEST(KnowledgeServerTest, SubmitAfterStopIsRejected) {
  Fixture fx;
  KnowledgeServer server(fx.provider.get());
  server.Start();
  server.Stop();
  EXPECT_EQ(server.Submit(ServiceRequest{}).get().code,
            ResponseCode::kRejected);
}

TEST(KnowledgeServerTest, DeadlineExpiry) {
  Fixture fx;
  KnowledgeServerOptions opt;
  opt.num_workers = 1;
  KnowledgeServer server(fx.provider.get(), opt);

  ServiceRequest expired;
  expired.item = 1;
  expired.deadline = ServeClock::now() - std::chrono::milliseconds(1);
  ServiceRequest alive;
  alive.item = 1;  // no deadline
  auto futures = server.SubmitBatch({expired, alive});
  server.Start();

  ServiceResponse r0 = futures[0].get();
  EXPECT_EQ(r0.code, ResponseCode::kDeadlineExceeded);
  EXPECT_TRUE(r0.vectors.empty());
  EXPECT_EQ(futures[1].get().code, ResponseCode::kOk);
  server.Stop();
  EXPECT_EQ(server.stats().deadline_exceeded(), 1u);
}

TEST(KnowledgeServerTest, InvalidItem) {
  Fixture fx;
  KnowledgeServer server(fx.provider.get());
  server.Start();
  ServiceRequest request;
  request.item = fx.provider->num_items();  // one past the end
  EXPECT_EQ(server.Submit(request).get().code, ResponseCode::kInvalidItem);
  server.Stop();
  EXPECT_EQ(server.stats().invalid_item(), 1u);
}

TEST(KnowledgeServerTest, CondensedMatchesProviderOnMissAndHit) {
  Fixture fx;
  KnowledgeServer server(fx.provider.get());
  server.Start();
  for (core::ServiceMode mode :
       {core::ServiceMode::kTripleOnly, core::ServiceMode::kRelationOnly,
        core::ServiceMode::kAll}) {
    ServiceRequest request;
    request.item = 3;
    request.mode = mode;
    request.form = ServiceForm::kCondensed;
    const Vec expected = fx.provider->Condensed(3, mode);

    ServiceResponse miss = server.Submit(request).get();
    ASSERT_EQ(miss.code, ResponseCode::kOk);
    EXPECT_FALSE(miss.cache_hit);
    ASSERT_EQ(miss.vectors.size(), 1u);
    EXPECT_EQ(miss.vectors[0], expected);  // bit-for-bit

    ServiceResponse hit = server.Submit(request).get();
    ASSERT_EQ(hit.code, ResponseCode::kOk);
    EXPECT_TRUE(hit.cache_hit);
    ASSERT_EQ(hit.vectors.size(), 1u);
    EXPECT_EQ(hit.vectors[0], expected);  // bit-for-bit
  }
  server.Stop();
}

TEST(KnowledgeServerTest, SequenceMatchesProviderAndBypassesCache) {
  Fixture fx;
  KnowledgeServer server(fx.provider.get());
  server.Start();
  ServiceRequest request;
  request.item = 5;
  request.mode = core::ServiceMode::kAll;
  request.form = ServiceForm::kSequence;
  const std::vector<Vec> expected =
      fx.provider->Sequence(5, core::ServiceMode::kAll);

  for (int round = 0; round < 2; ++round) {
    ServiceResponse response = server.Submit(request).get();
    ASSERT_EQ(response.code, ResponseCode::kOk);
    EXPECT_FALSE(response.cache_hit);
    ASSERT_EQ(response.vectors.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(response.vectors[i], expected[i]);
    }
  }
  server.Stop();
  EXPECT_EQ(server.cache()->Stats().entries, 0u);
}

TEST(KnowledgeServerTest, EmptyKeyRelationItemServes) {
  Fixture fx;
  ASSERT_EQ(fx.provider->NumKeyRelations(7), 0u);
  KnowledgeServer server(fx.provider.get());
  server.Start();

  ServiceRequest condensed;
  condensed.item = 7;
  ServiceResponse response = server.Submit(condensed).get();
  ASSERT_EQ(response.code, ResponseCode::kOk);
  ASSERT_EQ(response.vectors.size(), 1u);
  EXPECT_EQ(response.vectors[0],
            fx.provider->Condensed(7, core::ServiceMode::kAll));

  ServiceRequest sequence;
  sequence.item = 7;
  sequence.form = ServiceForm::kSequence;
  EXPECT_TRUE(server.Submit(sequence).get().vectors.empty());
  server.Stop();
}

TEST(KnowledgeServerTest, CacheInvalidation) {
  Fixture fx;
  KnowledgeServer server(fx.provider.get());
  server.Start();
  ServiceRequest request;
  request.item = 2;

  EXPECT_FALSE(server.Submit(request).get().cache_hit);
  EXPECT_TRUE(server.Submit(request).get().cache_hit);
  server.InvalidateCache();
  EXPECT_FALSE(server.Submit(request).get().cache_hit);  // recomputed
  EXPECT_TRUE(server.Submit(request).get().cache_hit);
  server.Stop();
}

TEST(KnowledgeServerTest, CacheDisabled) {
  Fixture fx;
  KnowledgeServerOptions opt;
  opt.enable_cache = false;
  KnowledgeServer server(fx.provider.get(), opt);
  EXPECT_EQ(server.cache(), nullptr);
  server.Start();
  ServiceRequest request;
  request.item = 2;
  EXPECT_FALSE(server.Submit(request).get().cache_hit);
  EXPECT_FALSE(server.Submit(request).get().cache_hit);
  server.Stop();
}

TEST(KnowledgeServerTest, ConcurrentRequestsMatchDirectComputation) {
  Fixture fx;
  KnowledgeServerOptions opt;
  opt.num_workers = 3;
  opt.cache_capacity = 16;  // small: force eviction + recompute churn
  opt.cache_shards = 2;
  KnowledgeServer server(fx.provider.get(), opt);
  server.Start();

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 250;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(100 + c);
      for (int i = 0; i < kRequestsPerClient; ++i) {
        ServiceRequest request;
        request.item = static_cast<uint32_t>(
            rng.Uniform(fx.provider->num_items()));
        request.mode = static_cast<core::ServiceMode>(rng.Uniform(3));
        request.form = rng.Bernoulli(0.5) ? ServiceForm::kCondensed
                                          : ServiceForm::kSequence;
        ServiceResponse response = server.Submit(request).get();
        if (response.code != ResponseCode::kOk) {
          ++mismatches;
          continue;
        }
        if (request.form == ServiceForm::kCondensed) {
          if (response.vectors.size() != 1 ||
              response.vectors[0] !=
                  fx.provider->Condensed(request.item, request.mode)) {
            ++mismatches;
          }
        } else {
          const auto expected =
              fx.provider->Sequence(request.item, request.mode);
          if (response.vectors != expected) ++mismatches;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  server.Stop();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(server.stats().ok(),
            static_cast<uint64_t>(kClients * kRequestsPerClient));
  EXPECT_EQ(server.queue_depth(), 0u);
}

TEST(KnowledgeServerTest, StatsReportRenders) {
  Fixture fx;
  KnowledgeServer server(fx.provider.get());
  server.Start();
  server.Submit(ServiceRequest{}).get();
  server.Stop();
  const std::string report = server.StatsReport();
  EXPECT_NE(report.find("requests accepted"), std::string::npos);
  EXPECT_NE(report.find("cache hit rate"), std::string::npos);
  EXPECT_NE(report.find("p99 us"), std::string::npos);
  EXPECT_NE(report.find("queue wait"), std::string::npos);
}

TEST(KnowledgeServerTest, BackendReportsActiveKernelIsa) {
  // The backend line must name the kernel ISA serving this process so perf
  // regressions in reports are attributable; with PKGM_KERNEL set (the CI
  // scalar matrix leg), the env value round-trips into the report.
  Fixture fx;
  KnowledgeServer server(fx.provider.get());
  const std::string expected =
      std::string("kernels=") + simd::ActiveIsaName();
  EXPECT_NE(server.stats().backend().find(expected), std::string::npos)
      << "backend: " << server.stats().backend();
  if (const char* env = std::getenv("PKGM_KERNEL")) {
    simd::KernelIsa requested;
    if (simd::ParseKernelIsa(env, &requested) &&
        simd::KernelsForIsa(requested) != nullptr) {
      EXPECT_NE(server.stats().backend().find(std::string("kernels=") + env),
                std::string::npos)
          << "backend: " << server.stats().backend();
    }
  }
}

// ------------------------------------------------- coalescing + quotas --

// EmbeddingSource decorator whose first EntityRow call blocks until
// Release(); lets a test hold a backend fetch open while concurrent
// requests for the same key pile up behind the coalescer.
class GatedSource : public core::EmbeddingSource {
 public:
  explicit GatedSource(const core::EmbeddingSource* inner) : inner_(inner) {}

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }

  uint32_t num_entities() const override { return inner_->num_entities(); }
  uint32_t num_relations() const override { return inner_->num_relations(); }
  uint32_t dim() const override { return inner_->dim(); }
  core::TripleScorerKind scorer() const override { return inner_->scorer(); }
  bool has_relation_module() const override {
    return inner_->has_relation_module();
  }
  const float* EntityRow(uint32_t e, float* scratch) const override {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return released_; });
    return inner_->EntityRow(e, scratch);
  }
  const float* RelationRow(uint32_t r, float* scratch) const override {
    return inner_->RelationRow(r, scratch);
  }
  const float* TransferRow(uint32_t r, float* scratch) const override {
    return inner_->TransferRow(r, scratch);
  }
  const float* HyperplaneRow(uint32_t r, float* scratch) const override {
    return inner_->HyperplaneRow(r, scratch);
  }

 private:
  const core::EmbeddingSource* inner_;
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  bool released_ = false;
};

core::ServiceVectorProvider ProviderOver(const core::EmbeddingSource* source,
                                         const core::ServiceVectorProvider& ref) {
  std::vector<kg::EntityId> items;
  std::vector<std::vector<kg::RelationId>> rels;
  for (uint32_t i = 0; i < ref.num_items(); ++i) {
    items.push_back(ref.item_entity(i));
    rels.push_back(ref.key_relations(i));
  }
  return core::ServiceVectorProvider(source, std::move(items),
                                     std::move(rels));
}

TEST(KnowledgeServerTest, CoalescingHerdDoesOneBackendFetch) {
  Fixture fx;
  GatedSource gate(fx.model.get());
  core::ServiceVectorProvider slow = ProviderOver(&gate, *fx.provider);

  KnowledgeServerOptions opt;
  opt.num_workers = 4;
  opt.enable_cache = true;
  opt.enable_coalescing = true;
  KnowledgeServer server(&slow, opt);
  server.Start();

  // Four concurrent misses on the same key: one leader blocks inside the
  // gated backend; the other three must join its flight rather than fetch.
  std::vector<std::future<ServiceResponse>> futures;
  for (int i = 0; i < 4; ++i) {
    ServiceRequest request;
    request.item = 3;
    futures.push_back(server.Submit(request));
  }
  // Wait (bounded) until the three joiners have attached, then release the
  // leader's fetch.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.coalescer()->stats().joined < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.coalescer()->stats().joined, 3u);
  gate.Release();

  const Vec want = fx.provider->Condensed(3, core::ServiceMode::kAll);
  for (auto& future : futures) {
    ServiceResponse response = future.get();
    ASSERT_EQ(response.code, ResponseCode::kOk);
    ASSERT_EQ(response.vectors.size(), 1u);
    EXPECT_EQ(response.vectors[0], want);
  }
  EXPECT_EQ(server.stats().backend_fetches(), 1u);
  EXPECT_EQ(server.coalescer()->stats().leaders, 1u);
  EXPECT_EQ(server.stats().coalesced(), 3u);
  server.Stop();
}

TEST(KnowledgeServerTest, SwapDuringCoalescedFlightServesFreshAfterwards) {
  // A flight that spans a model hot-swap must not leave the old model's
  // vector in the cache: the leader's insert carries the cache generation
  // snapshotted before the fetch, and the generation-tagged cache drops it.
  core::PkgmModelOptions mopt;
  mopt.num_entities = 20;
  mopt.num_relations = 5;
  mopt.dim = 8;
  mopt.seed = 17;
  auto model_a = std::make_shared<core::PkgmModel>(mopt);
  mopt.seed = 99;
  auto model_b = std::make_shared<core::PkgmModel>(mopt);

  std::vector<kg::EntityId> items{0, 1, 2, 3};
  std::vector<std::vector<kg::RelationId>> rels{{0}, {1}, {2, 3}, {4}};
  auto gate = std::make_shared<GatedSource>(model_a.get());
  auto provider_a = std::make_shared<core::ServiceVectorProvider>(
      gate.get(), items, rels);
  auto provider_b = std::make_shared<core::ServiceVectorProvider>(
      model_b.get(), items, rels);

  store::ModelRegistry registry;
  registry.Publish(gate, provider_a, {});

  KnowledgeServerOptions opt;
  opt.num_workers = 2;
  opt.enable_cache = true;
  opt.enable_coalescing = true;
  KnowledgeServer server(&registry, opt);
  server.Start();

  // Leader snapshots generation 1 and blocks inside model A's backend.
  ServiceRequest request;
  request.item = 2;
  auto in_flight = server.Submit(request);

  // Hot-swap to model B while the flight is open, then let it finish.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  registry.Publish(model_b, provider_b, {});
  gate->Release();
  ServiceResponse stale = in_flight.get();
  ASSERT_EQ(stale.code, ResponseCode::kOk);

  // The next request runs on generation 2; if the stale insert survived
  // the swap it would be served from cache here.
  const Vec want_b = provider_b->Condensed(2, core::ServiceMode::kAll);
  ServiceResponse fresh = server.Submit(request).get();
  ASSERT_EQ(fresh.code, ResponseCode::kOk);
  ASSERT_EQ(fresh.vectors.size(), 1u);
  EXPECT_EQ(fresh.vectors[0], want_b);
  server.Stop();
}

TEST(KnowledgeServerTest, QuotaShedsDeterministicallyAndIsCounted) {
  Fixture fx;
  KnowledgeServerOptions opt;
  opt.num_workers = 2;
  // rate 0 + burst 4: each tenant gets exactly 4 admits, ever — the
  // deterministic configuration for testing.
  opt.tenant_rate = 0.0;
  opt.tenant_burst = 4.0;
  KnowledgeServer server(fx.provider.get(), opt);
  server.Start();

  std::vector<ServiceRequest> batch(10);
  for (auto& request : batch) {
    request.item = 1;
    request.tenant = 5;
  }
  auto futures = server.SubmitBatch(std::move(batch));
  int ok = 0, shed = 0;
  for (auto& future : futures) {
    const ResponseCode code = future.get().code;
    if (code == ResponseCode::kOk) ++ok;
    if (code == ResponseCode::kQuotaExceeded) ++shed;
  }
  EXPECT_EQ(ok, 4);
  EXPECT_EQ(shed, 6);
  EXPECT_EQ(server.stats().quota_rejected(), 6u);
  EXPECT_EQ(server.quotas()->shed_count(), 6u);

  // A different tenant draws from its own bucket.
  ServiceRequest other;
  other.item = 1;
  other.tenant = 6;
  EXPECT_EQ(server.Submit(other).get().code, ResponseCode::kOk);

  // Tenant 5 is dry: even a fresh single submit is shed.
  ServiceRequest again;
  again.item = 1;
  again.tenant = 5;
  EXPECT_EQ(server.Submit(again).get().code, ResponseCode::kQuotaExceeded);
  EXPECT_EQ(server.stats().quota_rejected(), 7u);
  server.Stop();
}

TEST(KnowledgeServerTest, StatsJsonSchemaKeepsOldKeysAndAddsTail) {
  Fixture fx;
  KnowledgeServerOptions opt;
  opt.enable_cache = true;
  opt.enable_coalescing = true;
  opt.tenant_rate = 0.0;
  opt.tenant_burst = 1.0;
  KnowledgeServer server(fx.provider.get(), opt);
  server.Start();
  for (int i = 0; i < 3; ++i) {
    ServiceRequest request;
    request.item = 2;
    request.tenant = 9;
    server.Submit(request).get();
  }
  server.Stop();

  const std::string json = server.StatsJson();
  // Pre-existing schema keys must survive (dashboards parse these).
  for (const char* key :
       {"\"accepted\"", "\"rejected\"", "\"ok\"", "\"p50_us\"",
        "\"p95_us\"", "\"p99_us\"", "\"cache\"", "\"queue_depth\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing";
  }
  // New tail-latency keys.
  for (const char* key :
       {"\"p999_us\"", "\"quota_rejected\"", "\"backend_fetches\"",
        "\"coalesced\"", "\"coalescer\"", "\"leaders\"", "\"joined\"",
        "\"bypassed\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing";
  }
  EXPECT_NE(json.find("\"quota_rejected\":2"), std::string::npos) << json;
}

}  // namespace
}  // namespace pkgm::serve
