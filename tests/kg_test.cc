#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "kg/etl.h"
#include "kg/key_relations.h"
#include "kg/query_engine.h"
#include "kg/split.h"
#include "kg/synthetic_pkg.h"
#include "kg/triple_store.h"
#include "kg/vocab.h"

namespace pkgm::kg {
namespace {

// ----------------------------------------------------------------- Vocab --

TEST(VocabTest, InterningAssignsDenseIds) {
  Vocab v;
  EXPECT_EQ(v.GetOrAdd("a"), 0u);
  EXPECT_EQ(v.GetOrAdd("b"), 1u);
  EXPECT_EQ(v.GetOrAdd("a"), 0u);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.Name(1), "b");
}

TEST(VocabTest, FindMissing) {
  Vocab v;
  v.GetOrAdd("x");
  EXPECT_EQ(v.Find("y"), kInvalidId);
  EXPECT_TRUE(v.Contains("x"));
  EXPECT_FALSE(v.Contains("y"));
}

// ----------------------------------------------------------- TripleStore --

TEST(TripleStoreTest, AddAndContains) {
  TripleStore s;
  EXPECT_TRUE(s.Add(1, 2, 3));
  EXPECT_FALSE(s.Add(1, 2, 3));  // duplicate
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.Contains(1, 2, 3));
  EXPECT_FALSE(s.Contains(1, 2, 4));
}

TEST(TripleStoreTest, TailsAndHeads) {
  TripleStore s;
  s.Add(1, 7, 10);
  s.Add(1, 7, 11);
  s.Add(2, 7, 10);
  auto tails = s.Tails(1, 7);
  EXPECT_EQ(tails.size(), 2u);
  EXPECT_NE(std::find(tails.begin(), tails.end(), 10u), tails.end());
  EXPECT_NE(std::find(tails.begin(), tails.end(), 11u), tails.end());
  auto heads = s.Heads(7, 10);
  EXPECT_EQ(heads.size(), 2u);
  EXPECT_TRUE(s.Tails(3, 7).empty());
  EXPECT_TRUE(s.Heads(8, 10).empty());
}

TEST(TripleStoreTest, RelationsOfDeduplicates) {
  TripleStore s;
  s.Add(5, 1, 10);
  s.Add(5, 1, 11);  // same relation again
  s.Add(5, 2, 12);
  auto rels = s.RelationsOf(5);
  EXPECT_EQ(rels.size(), 2u);
  EXPECT_TRUE(s.HasRelation(5, 1));
  EXPECT_TRUE(s.HasRelation(5, 2));
  EXPECT_FALSE(s.HasRelation(5, 3));
  EXPECT_TRUE(s.RelationsOf(99).empty());
}

TEST(TripleStoreTest, RelationFrequencies) {
  TripleStore s;
  s.Add(1, 0, 2);
  s.Add(3, 0, 4);
  s.Add(1, 2, 5);
  auto freq = s.RelationFrequencies(3);
  EXPECT_EQ(freq[0], 2u);
  EXPECT_EQ(freq[1], 0u);
  EXPECT_EQ(freq[2], 1u);
}

TEST(TripleStoreTest, RelationFrequenciesKeepOutOfRangeIds) {
  // Regression: a relation id at or above the caller's count used to be
  // silently dropped from the tally; the result must grow instead.
  TripleStore s;
  s.Add(1, 0, 2);
  s.Add(3, 7, 4);  // id 7 >= the declared count of 2
  s.Add(5, 7, 6);
  auto freq = s.RelationFrequencies(2);
  ASSERT_EQ(freq.size(), 8u);
  EXPECT_EQ(freq[0], 1u);
  EXPECT_EQ(freq[1], 0u);
  EXPECT_EQ(freq[7], 2u);
  // Asking for more relations than seen still pads with zeros.
  EXPECT_EQ(s.RelationFrequencies(12).size(), 12u);
}

TEST(TripleStoreTest, RelationCountsTrackAdds) {
  TripleStore s;
  s.Add(1, 0, 2);
  s.Add(1, 0, 3);
  s.Add(1, 0, 3);  // duplicate: ignored
  s.Add(2, 4, 1);
  EXPECT_EQ(s.RelationCount(0), 2u);
  EXPECT_EQ(s.RelationCount(4), 1u);
  EXPECT_EQ(s.RelationCount(3), 0u);
  EXPECT_EQ(s.RelationCount(99), 0u);
}

TEST(TripleStoreTest, MaxIds) {
  TripleStore s;
  s.Add(10, 3, 42);
  EXPECT_EQ(s.MaxEntityId(), 43u);
  EXPECT_EQ(s.MaxRelationId(), 4u);
}

// Property test: random insert sets keep the indexes consistent.
class TripleStoreProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TripleStoreProperty, IndexesConsistentWithTripleList) {
  Rng rng(GetParam());
  TripleStore s;
  std::set<std::tuple<uint32_t, uint32_t, uint32_t>> reference;
  for (int i = 0; i < 500; ++i) {
    Triple t{static_cast<EntityId>(rng.Uniform(20)),
             static_cast<RelationId>(rng.Uniform(5)),
             static_cast<EntityId>(rng.Uniform(20))};
    bool added = s.Add(t);
    bool ref_added = reference.insert({t.head, t.relation, t.tail}).second;
    EXPECT_EQ(added, ref_added);
  }
  EXPECT_EQ(s.size(), reference.size());
  // Every stored triple is reachable via both indexes.
  for (const Triple& t : s.triples()) {
    const auto& tails = s.Tails(t.head, t.relation);
    EXPECT_NE(std::find(tails.begin(), tails.end(), t.tail), tails.end());
    const auto& heads = s.Heads(t.relation, t.tail);
    EXPECT_NE(std::find(heads.begin(), heads.end(), t.head), heads.end());
    const auto& rels = s.RelationsOf(t.head);
    EXPECT_NE(std::find(rels.begin(), rels.end(), t.relation), rels.end());
  }
  // RelationsOf contains no duplicates.
  for (EntityId h = 0; h < 20; ++h) {
    const auto& rels = s.RelationsOf(h);
    std::set<RelationId> unique(rels.begin(), rels.end());
    EXPECT_EQ(unique.size(), rels.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TripleStoreProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------------------------- ETL --

TEST(EtlTest, DropsRareRelations) {
  TripleStore in;
  for (uint32_t i = 0; i < 10; ++i) in.Add(i, 0, 100 + i);  // freq 10
  in.Add(0, 1, 200);                                        // freq 1
  in.Add(1, 1, 201);                                        // freq 2
  EtlStats stats;
  TripleStore out = FilterByRelationFrequency(in, 2, 5, &stats);
  EXPECT_EQ(out.size(), 10u);
  EXPECT_FALSE(out.HasRelation(0, 1));
  EXPECT_EQ(stats.input_triples, 12u);
  EXPECT_EQ(stats.output_triples, 10u);
  EXPECT_EQ(stats.dropped_triples, 2u);
  EXPECT_EQ(stats.input_relations, 2u);
  EXPECT_EQ(stats.output_relations, 1u);
  EXPECT_EQ(stats.dropped_relations, 1u);
}

TEST(EtlTest, ThresholdOneKeepsEverything) {
  TripleStore in;
  in.Add(0, 0, 1);
  in.Add(0, 1, 2);
  EtlStats stats;
  TripleStore out = FilterByRelationFrequency(in, 2, 1, &stats);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(stats.dropped_triples, 0u);
}

TEST(EtlTest, PreservesIds) {
  TripleStore in;
  in.Add(7, 1, 9);
  in.Add(8, 1, 9);
  TripleStore out = FilterByRelationFrequency(in, 2, 2, nullptr);
  EXPECT_TRUE(out.Contains(7, 1, 9));
  EXPECT_TRUE(out.Contains(8, 1, 9));
}

// ---------------------------------------------------------- SyntheticPkg --

SyntheticPkgOptions SmallPkgOptions(uint64_t seed = 42) {
  SyntheticPkgOptions opt;
  opt.seed = seed;
  opt.num_categories = 5;
  opt.items_per_category = 40;
  opt.properties_per_category = 6;
  opt.shared_property_pool = 8;
  opt.values_per_property = 10;
  opt.products_per_category = 10;
  opt.identity_properties = 2;
  opt.etl_min_occurrence = 5;
  return opt;
}

TEST(SyntheticPkgTest, DeterministicGivenSeed) {
  SyntheticPkg a = SyntheticPkgGenerator(SmallPkgOptions()).Generate();
  SyntheticPkg b = SyntheticPkgGenerator(SmallPkgOptions()).Generate();
  EXPECT_EQ(a.observed.size(), b.observed.size());
  EXPECT_EQ(a.items.size(), b.items.size());
  EXPECT_EQ(a.entities.size(), b.entities.size());
  ASSERT_FALSE(a.observed.triples().empty());
  EXPECT_EQ(a.observed.triples()[0], b.observed.triples()[0]);
}

TEST(SyntheticPkgTest, SchemaShapeMatchesOptions) {
  SyntheticPkgOptions opt = SmallPkgOptions();
  SyntheticPkg pkg = SyntheticPkgGenerator(opt).Generate();
  EXPECT_EQ(pkg.num_categories, opt.num_categories);
  ASSERT_EQ(pkg.category_schema.size(), opt.num_categories);
  for (const auto& schema : pkg.category_schema) {
    EXPECT_EQ(schema.size(), opt.properties_per_category);
    std::set<RelationId> unique(schema.begin(), schema.end());
    EXPECT_EQ(unique.size(), schema.size()) << "schema has duplicate props";
  }
}

TEST(SyntheticPkgTest, ItemsHaveFullGroundTruthAssignments) {
  SyntheticPkgOptions opt = SmallPkgOptions();
  SyntheticPkg pkg = SyntheticPkgGenerator(opt).Generate();
  ASSERT_GT(pkg.items.size(), 0u);
  for (const auto& item : pkg.items) {
    // Identity properties always apply; non-identity ones only when the
    // product declares them applicable.
    EXPECT_GE(item.attributes.size(), opt.identity_properties);
    EXPECT_LE(item.attributes.size(), opt.properties_per_category);
    EXPECT_LT(item.category, opt.num_categories);
    // Attribute relations match the category schema exactly.
    std::set<RelationId> schema(pkg.category_schema[item.category].begin(),
                                pkg.category_schema[item.category].end());
    for (const auto& [rel, value] : item.attributes) {
      EXPECT_TRUE(schema.count(rel));
    }
  }
}

TEST(SyntheticPkgTest, SameProductSharesIdentityValues) {
  SyntheticPkgOptions opt = SmallPkgOptions();
  SyntheticPkg pkg = SyntheticPkgGenerator(opt).Generate();
  // Find two items of the same product.
  std::unordered_map<uint32_t, uint32_t> first_of_product;
  int checked = 0;
  for (uint32_t i = 0; i < pkg.items.size(); ++i) {
    auto [it, inserted] =
        first_of_product.try_emplace(pkg.items[i].product, i);
    if (inserted) continue;
    const auto& a = pkg.items[it->second];
    const auto& b = pkg.items[i];
    for (uint32_t j = 0; j < opt.identity_properties; ++j) {
      EXPECT_EQ(a.attributes[j].first, b.attributes[j].first);
      EXPECT_EQ(a.attributes[j].second, b.attributes[j].second);
    }
    ++checked;
  }
  EXPECT_GT(checked, 0) << "no multi-item product generated";
}

TEST(SyntheticPkgTest, ObservedPlusHeldOutCoversGroundTruthAttributes) {
  SyntheticPkgOptions opt = SmallPkgOptions();
  opt.noise_properties = 0;
  opt.add_item_item_relations = false;
  opt.etl_min_occurrence = 1;  // keep everything
  SyntheticPkg pkg = SyntheticPkgGenerator(opt).Generate();
  uint64_t ground_truth = 0;
  for (const auto& item : pkg.items) ground_truth += item.attributes.size();
  EXPECT_EQ(pkg.observed.size() + pkg.held_out.size(), ground_truth);
}

TEST(SyntheticPkgTest, FillRateControlsHeldOutFraction) {
  SyntheticPkgOptions opt = SmallPkgOptions();
  opt.noise_properties = 0;
  opt.add_item_item_relations = false;
  opt.etl_min_occurrence = 1;
  opt.observed_fill_rate = 0.6;
  SyntheticPkg pkg = SyntheticPkgGenerator(opt).Generate();
  const double total =
      static_cast<double>(pkg.observed.size() + pkg.held_out.size());
  EXPECT_NEAR(pkg.observed.size() / total, 0.6, 0.05);
}

TEST(SyntheticPkgTest, EtlRemovesNoiseProperties) {
  SyntheticPkgOptions opt = SmallPkgOptions();
  opt.noise_properties = 5;
  opt.noise_property_occurrences = 2;
  opt.etl_min_occurrence = 5;
  SyntheticPkg pkg = SyntheticPkgGenerator(opt).Generate();
  EXPECT_GE(pkg.etl_dropped_relations, 5u);
  EXPECT_GE(pkg.etl_dropped_triples, 10u);
  // No noise relation survived in the observed store.
  for (const Triple& t : pkg.observed.triples()) {
    EXPECT_EQ(pkg.relations.Name(t.relation).find("noise_prop"),
              std::string::npos);
  }
}

TEST(SyntheticPkgTest, ShouldHaveRelationMatchesGroundTruth) {
  SyntheticPkg pkg = SyntheticPkgGenerator(SmallPkgOptions()).Generate();
  const auto& item = pkg.items[0];
  // Exactly the item's applicable (ground-truth) relations are "should
  // have"; those relations also expose their ground-truth tails.
  for (const auto& [r, value] : item.attributes) {
    EXPECT_TRUE(pkg.ItemShouldHaveRelation(0, r));
    EXPECT_EQ(pkg.GroundTruthTail(0, r), value);
  }
  // A property outside the item's own attribute list is not expected.
  for (uint32_t c = 0; c < pkg.num_categories; ++c) {
    for (RelationId r : pkg.category_schema[c]) {
      bool in_attrs = false;
      for (const auto& [rel, value] : item.attributes) in_attrs |= rel == r;
      EXPECT_EQ(pkg.ItemShouldHaveRelation(0, r), in_attrs);
    }
  }
}

TEST(SyntheticPkgTest, ItemItemRelationsPresentWhenEnabled) {
  SyntheticPkgOptions opt = SmallPkgOptions();
  opt.add_item_item_relations = true;
  SyntheticPkg pkg = SyntheticPkgGenerator(opt).Generate();
  EXPECT_EQ(pkg.item_relations.size(), 1u);
  EXPECT_TRUE(pkg.relations.Contains("similarTo"));
}

// ----------------------------------------------------------- QueryEngine --

TEST(QueryEngineTest, AnswersBothQueryShapes) {
  TripleStore s;
  s.Add(1, 0, 5);
  s.Add(1, 1, 6);
  QueryEngine engine(&s);
  EXPECT_EQ(engine.TripleQuery(1, 0).size(), 1u);
  EXPECT_EQ(engine.TripleQuery(1, 9).size(), 0u);
  EXPECT_EQ(engine.RelationQuery(1).size(), 2u);
  EXPECT_EQ(engine.num_triple_queries(), 2u);
  EXPECT_EQ(engine.num_relation_queries(), 1u);
  EXPECT_EQ(engine.latency_micros().count(), 3u);
}

TEST(QueryEngineTest, EmptyResultsAreRecordedAndCounted) {
  TripleStore s;
  s.Add(1, 0, 5);
  QueryEngine engine(&s);
  engine.TripleQuery(1, 0);   // hit
  engine.TripleQuery(9, 9);   // miss
  engine.TripleQuery(1, 3);   // miss
  engine.RelationQuery(1);    // hit
  engine.RelationQuery(42);   // miss
  // Misses land in the same latency histogram as hits...
  EXPECT_EQ(engine.latency_micros().count(), 5u);
  // ...and are tallied separately per query shape.
  EXPECT_EQ(engine.num_empty_triple_results(), 2u);
  EXPECT_EQ(engine.num_empty_relation_results(), 1u);
}

TEST(QueryEngineTest, StatsJsonSnapshot) {
  TripleStore s;
  s.Add(1, 0, 5);
  QueryEngine engine(&s);
  const std::string empty = engine.StatsJson();
  EXPECT_NE(empty.find("\"triple_queries\":0"), std::string::npos);
  EXPECT_NE(empty.find("\"latency\":{\"count\":0}"), std::string::npos);

  engine.TripleQuery(1, 0);
  engine.TripleQuery(2, 2);
  engine.RelationQuery(7);
  const std::string json = engine.StatsJson();
  EXPECT_NE(json.find("\"triple_queries\":2"), std::string::npos);
  EXPECT_NE(json.find("\"relation_queries\":1"), std::string::npos);
  EXPECT_NE(json.find("\"empty_triple_results\":1"), std::string::npos);
  EXPECT_NE(json.find("\"empty_relation_results\":1"), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\""), std::string::npos);
}

// ----------------------------------------------------------------- Split --

TEST(SplitTest, FractionsRespected) {
  TripleStore s;
  for (uint32_t i = 0; i < 100; ++i) s.Add(i, 0, i + 1000);
  Rng rng(3);
  TripleSplit split = SplitTriples(s, 0.8, 0.1, &rng);
  EXPECT_EQ(split.train.size(), 80u);
  EXPECT_EQ(split.valid.size(), 10u);
  EXPECT_EQ(split.test.size(), 10u);
}

TEST(SplitTest, PartitionIsExactAndDisjoint) {
  TripleStore s;
  for (uint32_t i = 0; i < 57; ++i) s.Add(i, i % 3, i + 100);
  Rng rng(5);
  TripleSplit split = SplitTriples(s, 0.7, 0.15, &rng);
  std::set<std::tuple<uint32_t, uint32_t, uint32_t>> all;
  auto insert_all = [&](const std::vector<Triple>& v) {
    for (const Triple& t : v) {
      EXPECT_TRUE(all.insert({t.head, t.relation, t.tail}).second)
          << "triple appears in two splits";
    }
  };
  insert_all(split.train);
  insert_all(split.valid);
  insert_all(split.test);
  EXPECT_EQ(all.size(), 57u);
}

// ---------------------------------------------------------- KeyRelations --

TEST(KeyRelationsTest, SelectsTopKSchemaProperties) {
  SyntheticPkgOptions opt = SmallPkgOptions();
  SyntheticPkg pkg = SyntheticPkgGenerator(opt).Generate();
  std::unordered_set<RelationId> allowed(pkg.property_relations.begin(),
                                         pkg.property_relations.end());
  KeyRelationSelector selector(4, allowed);
  auto per_category = selector.SelectPerCategory(pkg);
  ASSERT_EQ(per_category.size(), pkg.num_categories);
  for (uint32_t c = 0; c < pkg.num_categories; ++c) {
    EXPECT_LE(per_category[c].size(), 4u);
    EXPECT_GT(per_category[c].size(), 0u);
    // Key relations must be schema properties of the category (the observed
    // frequency ordering only ranks them).
    std::set<RelationId> schema(pkg.category_schema[c].begin(),
                                pkg.category_schema[c].end());
    for (RelationId r : per_category[c]) EXPECT_TRUE(schema.count(r));
  }
}

TEST(KeyRelationsTest, PerItemMatchesItemCategory) {
  SyntheticPkg pkg = SyntheticPkgGenerator(SmallPkgOptions()).Generate();
  std::unordered_set<RelationId> allowed(pkg.property_relations.begin(),
                                         pkg.property_relations.end());
  KeyRelationSelector selector(3, allowed);
  auto per_category = selector.SelectPerCategory(pkg);
  auto per_item = selector.SelectPerItem(pkg);
  ASSERT_EQ(per_item.size(), pkg.items.size());
  for (uint32_t i = 0; i < pkg.items.size(); ++i) {
    EXPECT_EQ(per_item[i], per_category[pkg.items[i].category]);
  }
}

TEST(KeyRelationsTest, ExcludesDisallowedRelations) {
  SyntheticPkgOptions opt = SmallPkgOptions();
  opt.add_item_item_relations = true;
  SyntheticPkg pkg = SyntheticPkgGenerator(opt).Generate();
  std::unordered_set<RelationId> allowed(pkg.property_relations.begin(),
                                         pkg.property_relations.end());
  KeyRelationSelector selector(100, allowed);  // take everything allowed
  auto per_category = selector.SelectPerCategory(pkg);
  const RelationId similar = pkg.relations.Find("similarTo");
  ASSERT_NE(similar, kInvalidId);
  for (const auto& rels : per_category) {
    EXPECT_EQ(std::find(rels.begin(), rels.end(), similar), rels.end());
  }
}

}  // namespace
}  // namespace pkgm::kg
