#include <gtest/gtest.h>

#include <cmath>

#include "nn/optimizer.h"
#include "rec/ncf.h"
#include "rec/ranking_metrics.h"
#include "util/rng.h"

namespace pkgm::rec {
namespace {

NcfConfig SmallNcf(uint32_t pkgm_dim = 0) {
  NcfConfig cfg;
  cfg.num_users = 20;
  cfg.num_items = 30;
  cfg.gmf_dim = 4;
  cfg.mlp_dim = 8;
  cfg.mlp_hidden = {8, 4};
  cfg.pkgm_dim = pkgm_dim;
  cfg.embedding_l2 = 0.0f;
  cfg.seed = 3;
  return cfg;
}

TEST(NcfTest, ForwardShape) {
  NcfModel model(SmallNcf());
  Mat logits;
  model.Forward({0, 1, 2}, {5, 6, 7}, nullptr, &logits);
  EXPECT_EQ(logits.rows(), 3u);
  EXPECT_EQ(logits.cols(), 1u);
}

TEST(NcfTest, PredictIsSigmoidOfLogit) {
  NcfModel model(SmallNcf());
  Mat logits;
  model.Forward({4}, {9}, nullptr, &logits);
  float p = model.Predict(4, 9, nullptr);
  EXPECT_NEAR(p, 1.0f / (1.0f + std::exp(-logits(0, 0))), 1e-5);
  EXPECT_GT(p, 0.0f);
  EXPECT_LT(p, 1.0f);
}

TEST(NcfTest, LearnsSimplePreference) {
  // User u likes item u (label 1) and dislikes item u+10 (label 0).
  NcfModel model(SmallNcf());
  nn::AdamOptimizer::Options adam;
  adam.lr = 5e-3f;
  nn::AdamOptimizer opt(model.Params(), adam);

  std::vector<uint32_t> users, items;
  std::vector<float> labels;
  for (uint32_t u = 0; u < 10; ++u) {
    users.push_back(u);
    items.push_back(u);
    labels.push_back(1.0f);
    users.push_back(u);
    items.push_back(u + 10);
    labels.push_back(0.0f);
  }
  float first = 0, last = 0;
  for (int step = 0; step < 150; ++step) {
    float loss = model.ForwardBackward(users, items, nullptr, labels);
    opt.Step();
    if (step == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first * 0.3f);
  // Preferences correctly ordered for every user.
  for (uint32_t u = 0; u < 10; ++u) {
    EXPECT_GT(model.Predict(u, u, nullptr), model.Predict(u, u + 10, nullptr));
  }
}

TEST(NcfTest, PkgmFeatureIsUsedWhenInformative) {
  // Labels depend ONLY on the PKGM feature: feature +1 => positive,
  // -1 => negative, with user/item ids shuffled so the collaborative path
  // carries no signal. The model must learn from the feature.
  const uint32_t pkgm_dim = 4;
  NcfModel model(SmallNcf(pkgm_dim));
  nn::AdamOptimizer::Options adam;
  adam.lr = 5e-3f;
  nn::AdamOptimizer opt(model.Params(), adam);

  Rng rng(7);
  std::vector<uint32_t> users, items;
  std::vector<float> labels;
  Mat pkgm(40, pkgm_dim);
  for (uint32_t i = 0; i < 40; ++i) {
    users.push_back(static_cast<uint32_t>(rng.Uniform(20)));
    items.push_back(static_cast<uint32_t>(rng.Uniform(30)));
    const float label = (i % 2 == 0) ? 1.0f : 0.0f;
    labels.push_back(label);
    for (uint32_t j = 0; j < pkgm_dim; ++j) {
      pkgm(i, j) = label > 0.5f ? 1.0f : -1.0f;
    }
  }
  for (int step = 0; step < 200; ++step) {
    model.ForwardBackward(users, items, &pkgm, labels);
    opt.Step();
  }
  // Evaluate on fresh user/item pairs: only the feature distinguishes.
  float pos_feature[4] = {1, 1, 1, 1};
  float neg_feature[4] = {-1, -1, -1, -1};
  int correct = 0;
  for (uint32_t u = 0; u < 20; ++u) {
    const float p_pos = model.Predict(u, (u * 7) % 30, pos_feature);
    const float p_neg = model.Predict(u, (u * 7) % 30, neg_feature);
    if (p_pos > p_neg) ++correct;
  }
  EXPECT_GE(correct, 18);
}

TEST(NcfTest, EmbeddingL2AddsGradient) {
  NcfConfig cfg = SmallNcf();
  cfg.embedding_l2 = 1.0f;
  NcfModel with_l2(cfg);
  cfg.embedding_l2 = 0.0f;
  cfg.seed = 3;  // identical init
  NcfModel without_l2(cfg);

  std::vector<uint32_t> users{1}, items{2};
  std::vector<float> labels{1.0f};
  with_l2.ForwardBackward(users, items, nullptr, labels);
  without_l2.ForwardBackward(users, items, nullptr, labels);

  // First parameter is the user GMF table; row 1 gradient must differ by
  // exactly lambda * value.
  nn::Parameter* p_l2 = with_l2.Params()[0];
  nn::Parameter* p_no = without_l2.Params()[0];
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(p_l2->grad(1, j) - p_no->grad(1, j), p_l2->value(1, j), 1e-4);
  }
}

// --------------------------------------------------------- RankingMetrics --

TEST(RankingMetricsTest, PerfectRanking) {
  RankingMetricsAccumulator acc({1, 3, 10});
  for (int i = 0; i < 5; ++i) acc.AddRank(1);
  EXPECT_DOUBLE_EQ(acc.HitRatio(1), 1.0);
  EXPECT_DOUBLE_EQ(acc.Ndcg(1), 1.0);
  EXPECT_DOUBLE_EQ(acc.HitRatio(10), 1.0);
}

TEST(RankingMetricsTest, RankOutsideKGivesZero) {
  RankingMetricsAccumulator acc({1, 3});
  acc.AddRank(5);
  EXPECT_DOUBLE_EQ(acc.HitRatio(3), 0.0);
  EXPECT_DOUBLE_EQ(acc.Ndcg(3), 0.0);
}

TEST(RankingMetricsTest, NdcgDiscountsDeeperRanks) {
  RankingMetricsAccumulator acc({10});
  acc.AddRank(2);
  EXPECT_NEAR(acc.Ndcg(10), 1.0 / std::log2(3.0), 1e-9);
  RankingMetricsAccumulator acc2({10});
  acc2.AddRank(4);
  EXPECT_LT(acc2.Ndcg(10), acc.Ndcg(10));
}

TEST(RankingMetricsTest, AddScoresComputesRank) {
  RankingMetricsAccumulator acc({1, 3});
  // Positive score 0.9 beats {0.5, 0.3}: rank 1.
  acc.AddScores(0.9f, {0.5f, 0.3f});
  EXPECT_DOUBLE_EQ(acc.HitRatio(1), 1.0);
  // Positive 0.4 loses to 0.5 and 0.6: rank 3.
  acc.AddScores(0.4f, {0.5f, 0.6f, 0.1f});
  EXPECT_DOUBLE_EQ(acc.HitRatio(1), 0.5);
  EXPECT_DOUBLE_EQ(acc.HitRatio(3), 1.0);
}

TEST(RankingMetricsTest, MeanOverUsers) {
  RankingMetricsAccumulator acc({1});
  acc.AddRank(1);
  acc.AddRank(2);
  acc.AddRank(1);
  acc.AddRank(9);
  EXPECT_DOUBLE_EQ(acc.HitRatio(1), 0.5);
  EXPECT_EQ(acc.count(), 4u);
}

// Property: HR@k is monotone non-decreasing in k, NDCG@k likewise.
class MetricsMonotoneSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricsMonotoneSweep, MonotoneInK) {
  Rng rng(GetParam());
  RankingMetricsAccumulator acc({1, 3, 5, 10, 30});
  for (int i = 0; i < 50; ++i) {
    acc.AddRank(1 + static_cast<uint32_t>(rng.Uniform(40)));
  }
  double prev_hr = 0, prev_ndcg = 0;
  for (int k : {1, 3, 5, 10, 30}) {
    EXPECT_GE(acc.HitRatio(k), prev_hr);
    EXPECT_GE(acc.Ndcg(k), prev_ndcg);
    prev_hr = acc.HitRatio(k);
    prev_ndcg = acc.Ndcg(k);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsMonotoneSweep,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace pkgm::rec
