// End-to-end tests for the distributed parameter-server training
// subsystem: ParamServer shards behind real epoll NetServers on loopback,
// driven over TCP by raw CallFrame probes and by the DistTrainer. The core
// acceptance property mirrors the serving tests' parity bar: with one
// worker and synchronous pushes the distributed trajectory is BIT-EXACT vs
// the in-process ShardedTrainer, and with hogwild workers and pipelined
// pushes the final mean hinge lands within 2% of it.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/gradients.h"
#include "core/pkgm_model.h"
#include "core/sharded_trainer.h"
#include "core/trainer.h"
#include "dist/dist_trainer.h"
#include "dist/param_server.h"
#include "kg/synthetic_pkg.h"
#include "kg/triple_store.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "net/wire.h"
#include "tensor/simd/kernel_dispatch.h"
#include "util/string_util.h"

namespace pkgm::dist {
namespace {

using net::Frame;
using net::FrameType;
using net::ParamTable;
using net::PullSection;
using net::RowsSection;

core::PkgmModelOptions TestModelOptions() {
  core::PkgmModelOptions mo;
  mo.num_entities = 30;
  mo.num_relations = 4;
  mo.dim = 8;
  mo.seed = 77;
  return mo;
}

/// In-process shard cluster over real loopback TCP.
struct Cluster {
  std::vector<std::unique_ptr<ParamServer>> shards;
  std::vector<std::unique_ptr<net::NetServer>> servers;
  std::vector<std::string> endpoints;
  std::vector<uint16_t> ports;

  void Start(uint32_t num_shards, ParamServerOptions base) {
    for (uint32_t s = 0; s < num_shards; ++s) {
      ParamServerOptions opt = base;
      opt.shard_index = s;
      opt.num_shards = num_shards;
      shards.push_back(std::make_unique<ParamServer>(opt));
      net::NetServerOptions nopt;
      nopt.bind_address = "127.0.0.1";
      servers.push_back(
          std::make_unique<net::NetServer>(shards.back().get(), nopt));
      ASSERT_TRUE(servers.back()->Start().ok());
      ports.push_back(servers.back()->port());
      endpoints.push_back(StrFormat("127.0.0.1:%u", servers.back()->port()));
    }
  }

  void Stop() {
    // Parked barrier responds count as outstanding frames: abort before
    // the drain waits on them.
    for (auto& shard : shards) shard->AbortBarriers();
    for (auto& server : servers) server->Stop();
  }

  ~Cluster() { Stop(); }
};

/// One round-tripped CallFrame; the correlation id rides at header
/// offset 8 of the encoded frame.
StatusOr<Frame> Call(net::NetClient* client, std::string frame_bytes) {
  uint64_t cid = 0;
  std::memcpy(&cid, frame_bytes.data() + 8, sizeof(cid));
  return client->CallFrame(cid, std::move(frame_bytes)).get();
}

std::unique_ptr<net::NetClient> MustConnect(uint16_t port,
                                            net::NetClientOptions copt = {}) {
  auto client = net::NetClient::Connect("127.0.0.1", port, copt);
  EXPECT_TRUE(client.ok());
  return std::move(client.value());
}

/// 20 triples over the 30-entity test model: heads 0..19, tails 20..29.
kg::TripleStore ChainKg() {
  kg::TripleStore store;
  for (uint32_t i = 0; i < 20; ++i) {
    store.Add(i, i % 4, 20 + (i * 7) % 10);
  }
  return store;
}

TEST(ParamServerTest, ShardInfoAnnouncesConfiguration) {
  ParamServerOptions base;
  base.model = TestModelOptions();
  base.optimizer = core::OptimizerKind::kAdam;
  base.learning_rate = 1e-4f;
  Cluster cluster;
  cluster.Start(2, base);

  auto client = MustConnect(cluster.ports[1]);
  const uint64_t cid = client->NextCorrelationId();
  StatusOr<Frame> reply =
      Call(client.get(), net::EncodeControl(FrameType::kShardInfo, cid));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, FrameType::kShardInfoReply);

  net::ShardInfo info;
  ASSERT_TRUE(net::DecodeShardInfoReply(reply->payload, &info).ok());
  EXPECT_EQ(info.shard_index, 1u);
  EXPECT_EQ(info.num_shards, 2u);
  EXPECT_EQ(info.num_entities, 30u);
  EXPECT_EQ(info.num_relations, 4u);
  EXPECT_EQ(info.dim, 8u);
  EXPECT_EQ(info.optimizer,
            static_cast<uint8_t>(core::OptimizerKind::kAdam));
  EXPECT_EQ(info.learning_rate, 1e-4f);
  EXPECT_EQ(info.model_seed, 77u);
}

TEST(ParamServerTest, PullReturnsModelBytesAndRejectsUnowned) {
  ParamServerOptions base;
  base.model = TestModelOptions();
  Cluster cluster;
  cluster.Start(2, base);
  // Same options + seed => the shard's table bytes are reproducible
  // locally.
  core::PkgmModel local(TestModelOptions());

  auto client = MustConnect(cluster.ports[0]);
  std::vector<PullSection> sections(3);
  sections[0].table = ParamTable::kEntity;
  sections[0].ids = {0, 2, 28};
  sections[1].table = ParamTable::kRelation;
  sections[1].ids = {0, 2};
  sections[2].table = ParamTable::kTransfer;
  sections[2].ids = {2};
  uint64_t cid = client->NextCorrelationId();
  StatusOr<Frame> reply =
      Call(client.get(), net::EncodePullRows(cid, sections));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, FrameType::kRows);

  std::vector<RowsSection> rows;
  ASSERT_TRUE(net::DecodeRows(reply->payload, &rows).ok());
  ASSERT_EQ(rows.size(), 3u);
  const uint32_t dim = local.dim();
  for (size_t i = 0; i < rows[0].ids.size(); ++i) {
    EXPECT_EQ(std::memcmp(rows[0].values.data() + i * dim,
                          local.entity(rows[0].ids[i]),
                          dim * sizeof(float)),
              0);
  }
  for (size_t i = 0; i < rows[1].ids.size(); ++i) {
    EXPECT_EQ(std::memcmp(rows[1].values.data() + i * dim,
                          local.relation(rows[1].ids[i]),
                          dim * sizeof(float)),
              0);
  }
  EXPECT_EQ(rows[2].row_size, dim * dim);
  EXPECT_EQ(std::memcmp(rows[2].values.data(), local.transfer(2),
                        dim * dim * sizeof(float)),
            0);

  // Unowned (odd ids belong to shard 1) and out-of-range pulls refused.
  std::vector<PullSection> unowned(1);
  unowned[0].table = ParamTable::kEntity;
  unowned[0].ids = {1};
  cid = client->NextCorrelationId();
  EXPECT_FALSE(Call(client.get(), net::EncodePullRows(cid, unowned)).ok());
  std::vector<PullSection> oob(1);
  oob[0].table = ParamTable::kEntity;
  oob[0].ids = {30};
  cid = client->NextCorrelationId();
  EXPECT_FALSE(Call(client.get(), net::EncodePullRows(cid, oob)).ok());
}

TEST(ParamServerTest, PushAppliesSgdExactly) {
  ParamServerOptions base;
  base.model = TestModelOptions();
  base.optimizer = core::OptimizerKind::kSgd;
  base.learning_rate = 0.1f;
  base.normalize_entities = false;  // isolate the axpy
  Cluster cluster;
  cluster.Start(2, base);
  core::PkgmModel expected(TestModelOptions());
  const uint32_t dim = expected.dim();
  const simd::KernelTable& kernels = simd::Active();

  core::GradArena arena;
  float* ge = arena.Entity(2, dim);
  for (uint32_t d = 0; d < dim; ++d) ge[d] = 0.5f * (d + 1);
  float* gr = arena.Relation(0, dim);
  for (uint32_t d = 0; d < dim; ++d) gr[d] = -0.25f * d;
  std::string blob;
  ASSERT_EQ(core::SerializeGradArena(arena, 0, 2, &blob), 2u);

  auto client = MustConnect(cluster.ports[0]);
  const float scale = 0.25f;
  uint64_t cid = client->NextCorrelationId();
  StatusOr<Frame> reply =
      Call(client.get(), net::EncodePushGrads(cid, scale, 0, blob));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, FrameType::kPushAck);
  uint32_t applied = 0;
  ASSERT_TRUE(net::DecodePushAck(reply->payload, &applied).ok());
  EXPECT_EQ(applied, 2u);

  // Replicate the server's arithmetic with the same dispatched kernel.
  const float alpha = -base.learning_rate * scale;
  kernels.axpy(dim, alpha, ge, expected.entity(2));
  kernels.axpy(dim, alpha, gr, expected.relation(0));

  std::vector<PullSection> sections(2);
  sections[0].table = ParamTable::kEntity;
  sections[0].ids = {2};
  sections[1].table = ParamTable::kRelation;
  sections[1].ids = {0};
  cid = client->NextCorrelationId();
  reply = Call(client.get(), net::EncodePullRows(cid, sections));
  ASSERT_TRUE(reply.ok());
  std::vector<RowsSection> rows;
  ASSERT_TRUE(net::DecodeRows(reply->payload, &rows).ok());
  EXPECT_EQ(std::memcmp(rows[0].values.data(), expected.entity(2),
                        dim * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(rows[1].values.data(), expected.relation(0),
                        dim * sizeof(float)),
            0);

  // A push with rows this shard does not own is refused all-or-nothing.
  std::string foreign_blob;
  core::GradArena foreign;
  foreign.Entity(3, dim)[0] = 1.0f;  // shard 1's row
  core::SerializeGradArena(foreign, &foreign_blob);
  cid = client->NextCorrelationId();
  EXPECT_FALSE(
      Call(client.get(), net::EncodePushGrads(cid, scale, 0, foreign_blob))
          .ok());
}

TEST(ParamServerTest, PushNormalizesEntities) {
  ParamServerOptions base;
  base.model = TestModelOptions();
  base.optimizer = core::OptimizerKind::kSgd;
  base.learning_rate = 0.1f;
  base.normalize_entities = true;
  Cluster cluster;
  cluster.Start(1, base);
  core::PkgmModel expected(TestModelOptions());
  const uint32_t dim = expected.dim();

  core::GradArena arena;
  float* ge = arena.Entity(5, dim);
  for (uint32_t d = 0; d < dim; ++d) ge[d] = 2.0f;
  std::string blob;
  core::SerializeGradArena(arena, &blob);

  auto client = MustConnect(cluster.ports[0]);
  uint64_t cid = client->NextCorrelationId();
  ASSERT_TRUE(
      Call(client.get(), net::EncodePushGrads(cid, 1.0f, 0, blob)).ok());

  simd::Active().axpy(dim, -0.1f, ge, expected.entity(5));
  expected.NormalizeEntity(5);

  std::vector<PullSection> sections(1);
  sections[0].table = ParamTable::kEntity;
  sections[0].ids = {5};
  cid = client->NextCorrelationId();
  StatusOr<Frame> reply =
      Call(client.get(), net::EncodePullRows(cid, sections));
  ASSERT_TRUE(reply.ok());
  std::vector<RowsSection> rows;
  ASSERT_TRUE(net::DecodeRows(reply->payload, &rows).ok());
  EXPECT_EQ(std::memcmp(rows[0].values.data(), expected.entity(5),
                        dim * sizeof(float)),
            0);
}

TEST(ParamServerTest, PushAppliesAdamWithStepParity) {
  ParamServerOptions base;
  base.model = TestModelOptions();
  base.optimizer = core::OptimizerKind::kAdam;
  base.learning_rate = 1e-3f;
  base.normalize_entities = false;
  Cluster cluster;
  cluster.Start(1, base);
  core::PkgmModel expected(TestModelOptions());
  const uint32_t dim = expected.dim();
  const simd::KernelTable& kernels = simd::Active();

  core::GradArena arena;
  float* ge = arena.Entity(3, dim);
  for (uint32_t d = 0; d < dim; ++d) ge[d] = 1.0f - 0.125f * d;
  std::string blob;
  core::SerializeGradArena(arena, &blob);

  auto client = MustConnect(cluster.ports[0]);
  const float scale = 0.5f;
  std::vector<float> m(dim, 0.0f), v(dim, 0.0f);
  for (uint32_t t = 1; t <= 2; ++t) {
    uint64_t cid = client->NextCorrelationId();
    ASSERT_TRUE(
        Call(client.get(), net::EncodePushGrads(cid, scale, 0, blob)).ok());
    // Replicate the server's bias-corrected step size exactly (same
    // float expression, same kernel).
    const float b1 = base.adam_beta1, b2 = base.adam_beta2;
    const float corr1 =
        1.0f - static_cast<float>(std::pow(b1, static_cast<double>(t)));
    const float corr2 =
        1.0f - static_cast<float>(std::pow(b2, static_cast<double>(t)));
    const float alpha = base.learning_rate * std::sqrt(corr2) / corr1;
    kernels.adam_row(dim, ge, scale, b1, b2, alpha, base.adam_epsilon,
                     expected.entity(3), m.data(), v.data());
  }
  EXPECT_EQ(cluster.shards[0]->step(), 2u);

  std::vector<PullSection> sections(1);
  sections[0].table = ParamTable::kEntity;
  sections[0].ids = {3};
  const uint64_t cid = client->NextCorrelationId();
  StatusOr<Frame> reply =
      Call(client.get(), net::EncodePullRows(cid, sections));
  ASSERT_TRUE(reply.ok());
  std::vector<RowsSection> rows;
  ASSERT_TRUE(net::DecodeRows(reply->payload, &rows).ok());
  EXPECT_EQ(std::memcmp(rows[0].values.data(), expected.entity(3),
                        dim * sizeof(float)),
            0);
}

TEST(ParamServerTest, BarrierReleasesMismatchesAndAborts) {
  ParamServerOptions base;
  base.model = TestModelOptions();
  Cluster cluster;
  cluster.Start(1, base);

  auto c1 = MustConnect(cluster.ports[0]);
  auto c2 = MustConnect(cluster.ports[0]);

  // Held until the second arrival, then both release with the count.
  uint64_t cid1 = c1->NextCorrelationId();
  auto f1 = c1->CallFrame(cid1, net::EncodeBarrier(cid1, 0, 2));
  EXPECT_EQ(f1.wait_for(std::chrono::milliseconds(100)),
            std::future_status::timeout);
  uint64_t cid2 = c2->NextCorrelationId();
  auto f2 = c2->CallFrame(cid2, net::EncodeBarrier(cid2, 0, 2));
  for (auto* f : {&f1, &f2}) {
    StatusOr<Frame> reply = f->get();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_EQ(reply->type, FrameType::kBarrierReply);
    uint32_t epoch = 1, arrived = 0;
    ASSERT_TRUE(
        net::DecodeBarrierReply(reply->payload, &epoch, &arrived).ok());
    EXPECT_EQ(epoch, 0u);
    EXPECT_EQ(arrived, 2u);
  }

  // A worker announcing a different expected count for the same epoch is
  // refused; the parked waiter stays parked and a correct arrival still
  // releases it.
  cid1 = c1->NextCorrelationId();
  f1 = c1->CallFrame(cid1, net::EncodeBarrier(cid1, 1, 2));
  EXPECT_EQ(f1.wait_for(std::chrono::milliseconds(50)),
            std::future_status::timeout);
  cid2 = c2->NextCorrelationId();
  EXPECT_FALSE(
      c2->CallFrame(cid2, net::EncodeBarrier(cid2, 1, 3)).get().ok());
  cid2 = c2->NextCorrelationId();
  EXPECT_TRUE(
      c2->CallFrame(cid2, net::EncodeBarrier(cid2, 1, 2)).get().ok());
  EXPECT_TRUE(f1.get().ok());

  // A zero worker count is nonsense and refused outright.
  cid1 = c1->NextCorrelationId();
  EXPECT_FALSE(
      c1->CallFrame(cid1, net::EncodeBarrier(cid1, 5, 0)).get().ok());

  // AbortBarriers (the shutdown path) fails parked waiters promptly.
  cid1 = c1->NextCorrelationId();
  f1 = c1->CallFrame(cid1, net::EncodeBarrier(cid1, 2, 2));
  EXPECT_EQ(f1.wait_for(std::chrono::milliseconds(50)),
            std::future_status::timeout);
  cluster.shards[0]->AbortBarriers();
  EXPECT_FALSE(f1.get().ok());
}

TEST(DistTrainerTest, ConnectRejectsMisorderedEndpoints) {
  ParamServerOptions base;
  base.model = TestModelOptions();
  base.learning_rate = 0.05f;
  Cluster cluster;
  cluster.Start(2, base);
  kg::TripleStore store = ChainKg();

  DistTrainerOptions dopt;
  dopt.shard_endpoints = {cluster.endpoints[1], cluster.endpoints[0]};
  dopt.learning_rate = 0.05f;
  DistTrainer trainer(&store, dopt);
  EXPECT_FALSE(trainer.Connect().ok());

  // Learning-rate disagreement with the shards is refused too.
  DistTrainerOptions bad_lr;
  bad_lr.shard_endpoints = cluster.endpoints;
  bad_lr.learning_rate = 0.02f;
  DistTrainer trainer2(&store, bad_lr);
  EXPECT_FALSE(trainer2.Connect().ok());
}

TEST(DistTrainerTest, OneWorkerSyncPushBitExactVsShardedTrainer) {
  kg::TripleStore store = ChainKg();
  const uint32_t epochs = 3;

  // In-process reference: same seed, one worker.
  core::PkgmModel ref(TestModelOptions());
  core::ShardedTrainerOptions sopt;
  sopt.num_workers = 1;
  sopt.batch_size = 8;
  sopt.learning_rate = 0.05f;
  sopt.seed = 123;
  core::ShardedTrainer reference(&ref, &store, sopt);
  std::vector<core::EpochStats> ref_stats;
  for (uint32_t e = 0; e < epochs; ++e) {
    ref_stats.push_back(reference.RunEpoch());
  }

  // Distributed: 2 shards, 1 worker, fully synchronous pushes.
  ParamServerOptions base;
  base.model = TestModelOptions();
  base.optimizer = core::OptimizerKind::kSgd;
  base.learning_rate = 0.05f;
  Cluster cluster;
  cluster.Start(2, base);
  DistTrainerOptions dopt;
  dopt.shard_endpoints = cluster.endpoints;
  dopt.num_workers = 1;
  dopt.batch_size = 8;
  dopt.learning_rate = 0.05f;
  dopt.seed = 123;
  dopt.max_inflight_pushes = 0;
  DistTrainer trainer(&store, dopt);
  ASSERT_TRUE(trainer.Connect().ok());
  for (uint32_t e = 0; e < epochs; ++e) {
    StatusOr<core::EpochStats> stats = trainer.RunEpoch();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    // Identical shuffle, identical negatives, identical batch-slot stat
    // merge: the telemetry must agree to the last bit.
    EXPECT_EQ(stats->mean_hinge, ref_stats[e].mean_hinge) << "epoch " << e;
    EXPECT_EQ(stats->active_pairs, ref_stats[e].active_pairs);
    EXPECT_EQ(stats->total_pairs, ref_stats[e].total_pairs);
  }
  ASSERT_TRUE(trainer.PullFullModel().ok());

  // The refreshed replica is bit-identical to the in-process model —
  // every table, every row.
  core::PkgmModel* replica = trainer.replica();
  for (uint32_t e = 0; e < ref.num_entities(); ++e) {
    ASSERT_EQ(std::memcmp(replica->entity(e), ref.entity(e),
                          ref.dim() * sizeof(float)),
              0)
        << "entity " << e;
  }
  for (uint32_t r = 0; r < ref.num_relations(); ++r) {
    ASSERT_EQ(std::memcmp(replica->relation(r), ref.relation(r),
                          ref.dim() * sizeof(float)),
              0)
        << "relation " << r;
    ASSERT_EQ(std::memcmp(replica->transfer(r), ref.transfer(r),
                          ref.dim() * ref.dim() * sizeof(float)),
              0)
        << "transfer " << r;
  }
  // And the comparable eval metric agrees exactly.
  core::TrainerOptions topt;
  topt.optimizer = core::OptimizerKind::kSgd;
  topt.seed = dopt.seed;
  core::Trainer evaluator(&ref, &store, topt);
  EXPECT_EQ(trainer.EvaluateMeanHinge(),
            evaluator.EvaluateMeanHinge(store.triples()));
}

TEST(DistTrainerTest, TwoWorkersTwoShardsHingeParity) {
  // A real (if small) synthetic PKG so hogwild noise averages out enough
  // for the 2% acceptance bound to be a meaningful assertion.
  kg::SyntheticPkgOptions pkg_opt;
  pkg_opt.num_categories = 4;
  pkg_opt.items_per_category = 60;
  pkg_opt.properties_per_category = 6;
  pkg_opt.shared_property_pool = 8;
  pkg_opt.values_per_property = 12;
  pkg_opt.products_per_category = 10;
  pkg_opt.noise_properties = 4;
  kg::SyntheticPkg pkg = kg::SyntheticPkgGenerator(pkg_opt).Generate();

  core::PkgmModelOptions mopt;
  mopt.num_entities = pkg.entities.size();
  mopt.num_relations = pkg.relations.size();
  mopt.dim = 8;
  mopt.seed = 2021;
  const uint32_t epochs = 3;

  core::PkgmModel ref(mopt);
  core::ShardedTrainerOptions sopt;
  sopt.num_workers = 2;
  sopt.batch_size = 64;
  sopt.learning_rate = 0.05f;
  sopt.seed = 2021;
  core::ShardedTrainer reference(&ref, &pkg.observed, sopt);
  double ref_hinge = 0.0;
  for (uint32_t e = 0; e < epochs; ++e) {
    ref_hinge = reference.RunEpoch().mean_hinge;
  }

  ParamServerOptions base;
  base.model = mopt;
  base.optimizer = core::OptimizerKind::kSgd;
  base.learning_rate = 0.05f;
  Cluster cluster;
  cluster.Start(2, base);
  DistTrainerOptions dopt;
  dopt.shard_endpoints = cluster.endpoints;
  dopt.num_workers = 2;
  dopt.batch_size = 64;
  dopt.learning_rate = 0.05f;
  dopt.seed = 2021;
  dopt.max_inflight_pushes = 4;
  DistTrainer trainer(&pkg.observed, dopt);
  ASSERT_TRUE(trainer.Connect().ok());
  double dist_hinge = 0.0;
  for (uint32_t e = 0; e < epochs; ++e) {
    StatusOr<core::EpochStats> stats = trainer.RunEpoch();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    dist_hinge = stats->mean_hinge;
  }
  EXPECT_GT(trainer.pulls(), 0u);
  EXPECT_GT(trainer.pushes(), 0u);

  // Acceptance bound: within 2% of the in-process trainer at the same
  // seed budget.
  ASSERT_GT(ref_hinge, 0.0);
  EXPECT_NEAR(dist_hinge / ref_hinge, 1.0, 0.02)
      << "dist " << dist_hinge << " vs ref " << ref_hinge;
}

}  // namespace
}  // namespace pkgm::dist
