#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.h"
#include "nn/attention.h"
#include "nn/dropout.h"
#include "nn/embedding.h"
#include "nn/grad_check.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "nn/parameter.h"
#include "nn/transformer.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace pkgm::nn {
namespace {

constexpr double kGradTol = 2e-2;  // float32 + central differences

// A scalar "loss" that exercises every output element: sum of x .* c for a
// fixed pseudo-random coefficient tensor c.
Mat MakeCoefficients(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Mat c(rows, cols);
  UniformInit(c.size(), -1.0f, 1.0f, &rng, c.data());
  return c;
}

double WeightedSum(const Mat& x, const Mat& c) {
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    acc += static_cast<double>(x.data()[i]) * c.data()[i];
  }
  return acc;
}

// ------------------------------------------------------------ Activations --

TEST(ActivationsTest, ReluForward) {
  Mat x(1, 4);
  x(0, 0) = -1;
  x(0, 1) = 0;
  x(0, 2) = 2;
  x(0, 3) = -3;
  Mat y(1, 4);
  ActivationForward(Activation::kRelu, x, &y);
  EXPECT_FLOAT_EQ(y(0, 0), 0);
  EXPECT_FLOAT_EQ(y(0, 2), 2);
}

TEST(ActivationsTest, SigmoidRange) {
  EXPECT_NEAR(SigmoidScalar(0.0f), 0.5f, 1e-6);
  EXPECT_GT(SigmoidScalar(10.0f), 0.999f);
  EXPECT_LT(SigmoidScalar(-10.0f), 0.001f);
  // Stability at extremes.
  EXPECT_FALSE(std::isnan(SigmoidScalar(500.0f)));
  EXPECT_FALSE(std::isnan(SigmoidScalar(-500.0f)));
}

TEST(ActivationsTest, GeluKnownValues) {
  EXPECT_NEAR(GeluScalar(0.0f), 0.0f, 1e-6);
  // GELU(x) -> x for large positive x, -> 0 for large negative x.
  EXPECT_NEAR(GeluScalar(6.0f), 6.0f, 1e-3);
  EXPECT_NEAR(GeluScalar(-6.0f), 0.0f, 1e-3);
}

class ActivationGradSweep : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationGradSweep, BackwardMatchesFiniteDifference) {
  const Activation act = GetParam();
  Rng rng(7);
  Mat x(3, 5);
  UniformInit(x.size(), -2.0f, 2.0f, &rng, x.data());
  // Keep ReLU away from the kink where the subgradient is ambiguous.
  if (act == Activation::kRelu) {
    for (size_t i = 0; i < x.size(); ++i) {
      if (std::fabs(x.data()[i]) < 0.05f) x.data()[i] = 0.1f;
    }
  }
  Mat c = MakeCoefficients(3, 5, 11);

  Mat y(3, 5);
  auto loss = [&] {
    ActivationForward(act, x, &y);
    return WeightedSum(y, c);
  };
  loss();
  Mat dx(3, 5);
  ActivationBackward(act, x, c, &dx);
  auto result = CheckInputGradient(&x, dx, loss, 1e-3);
  EXPECT_LT(result.max_rel_error, kGradTol) << "activation " << (int)act;
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActivationGradSweep,
                         ::testing::Values(Activation::kIdentity,
                                           Activation::kRelu,
                                           Activation::kTanh,
                                           Activation::kSigmoid,
                                           Activation::kGelu));

// ----------------------------------------------------------------- Linear --

TEST(LinearTest, ForwardMatchesManual) {
  Rng rng(3);
  Linear lin(2, 2, &rng, "t");
  lin.weight().value(0, 0) = 1;
  lin.weight().value(0, 1) = 2;
  lin.weight().value(1, 0) = 3;
  lin.weight().value(1, 1) = 4;
  lin.bias().value(0, 0) = 10;
  lin.bias().value(0, 1) = 20;
  Mat x(1, 2);
  x(0, 0) = 1;
  x(0, 1) = 1;
  Mat y;
  lin.Forward(x, &y);
  EXPECT_FLOAT_EQ(y(0, 0), 14);  // 1+3+10
  EXPECT_FLOAT_EQ(y(0, 1), 26);  // 2+4+20
}

TEST(LinearTest, GradCheckWeightsBiasInput) {
  Rng rng(5);
  Linear lin(4, 3, &rng, "t");
  Mat x(2, 4);
  UniformInit(x.size(), -1, 1, &rng, x.data());
  Mat c = MakeCoefficients(2, 3, 13);

  Mat y;
  auto loss = [&] {
    lin.Forward(x, &y);
    return WeightedSum(y, c);
  };
  loss();
  ZeroAllGrads([&] {
    std::vector<Parameter*> p;
    lin.Params(&p);
    return p;
  }());
  Mat dx;
  lin.Backward(x, c, &dx);

  EXPECT_LT(CheckParameterGradient(&lin.weight(), loss).max_rel_error, kGradTol);
  EXPECT_LT(CheckParameterGradient(&lin.bias(), loss).max_rel_error, kGradTol);
  EXPECT_LT(CheckInputGradient(&x, dx, loss).max_rel_error, kGradTol);
}

// -------------------------------------------------------------- Embedding --

TEST(EmbeddingTest, ForwardLooksUpRows) {
  Rng rng(7);
  Embedding emb(5, 3, &rng, "e");
  std::vector<uint32_t> ids = {4, 0, 4};
  Mat y;
  emb.Forward(ids, &y);
  EXPECT_EQ(y.rows(), 3u);
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_FLOAT_EQ(y(0, j), emb.Row(4)[j]);
    EXPECT_FLOAT_EQ(y(1, j), emb.Row(0)[j]);
    EXPECT_FLOAT_EQ(y(2, j), y(0, j));
  }
}

TEST(EmbeddingTest, BackwardAccumulatesRepeatedIds) {
  Rng rng(9);
  Embedding emb(4, 2, &rng, "e");
  std::vector<uint32_t> ids = {1, 1, 2};
  Mat dy(3, 2, 1.0f);
  emb.Backward(ids, dy);
  EXPECT_FLOAT_EQ(emb.table().grad(1, 0), 2.0f);  // id 1 twice
  EXPECT_FLOAT_EQ(emb.table().grad(2, 0), 1.0f);
  EXPECT_FLOAT_EQ(emb.table().grad(0, 0), 0.0f);
}

// -------------------------------------------------------------- LayerNorm --

TEST(LayerNormTest, NormalizesRows) {
  LayerNorm ln(8, "ln");
  Rng rng(11);
  Mat x(4, 8);
  UniformInit(x.size(), -3, 3, &rng, x.data());
  Mat y;
  ln.Forward(x, &y);
  for (size_t i = 0; i < 4; ++i) {
    double mean = 0, var = 0;
    for (size_t j = 0; j < 8; ++j) mean += y(i, j);
    mean /= 8;
    for (size_t j = 0; j < 8; ++j) var += (y(i, j) - mean) * (y(i, j) - mean);
    var /= 8;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(LayerNormTest, GradCheck) {
  LayerNorm ln(6, "ln");
  Rng rng(13);
  // Non-trivial gamma/beta so their gradients are exercised.
  UniformInit(ln.gamma().value.size(), 0.5f, 1.5f, &rng,
              ln.gamma().value.data());
  UniformInit(ln.beta().value.size(), -0.5f, 0.5f, &rng,
              ln.beta().value.data());
  Mat x(3, 6);
  UniformInit(x.size(), -2, 2, &rng, x.data());
  Mat c = MakeCoefficients(3, 6, 17);

  Mat y;
  auto loss = [&] {
    ln.Forward(x, &y);
    return WeightedSum(y, c);
  };
  loss();
  Mat dx;
  ln.Backward(x, c, &dx);
  EXPECT_LT(CheckInputGradient(&x, dx, loss).max_rel_error, kGradTol);
  EXPECT_LT(CheckParameterGradient(&ln.gamma(), loss).max_rel_error, kGradTol);
  EXPECT_LT(CheckParameterGradient(&ln.beta(), loss).max_rel_error, kGradTol);
}

// ---------------------------------------------------------------- Dropout --

TEST(DropoutTest, EvalModeIsIdentity) {
  Dropout drop(0.5f);
  drop.set_training(false);
  Rng rng(19);
  Mat x(2, 3);
  UniformInit(x.size(), -1, 1, &rng, x.data());
  Mat y;
  drop.Forward(x, &y, &rng);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
  }
}

TEST(DropoutTest, TrainingZeroesAndScales) {
  Dropout drop(0.5f);
  Rng rng(23);
  Mat x(1, 1000, 1.0f);
  Mat y;
  drop.Forward(x, &y, &rng);
  int zeros = 0;
  for (size_t i = 0; i < y.size(); ++i) {
    if (y.data()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(y.data()[i], 2.0f);  // 1 / (1-0.5)
    }
  }
  EXPECT_NEAR(zeros / 1000.0, 0.5, 0.06);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Dropout drop(0.3f);
  Rng rng(29);
  Mat x(1, 100, 1.0f);
  Mat y;
  drop.Forward(x, &y, &rng);
  Mat dy(1, 100, 1.0f);
  Mat dx;
  drop.Backward(dy, &dx);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(dx.data()[i] == 0.0f, y.data()[i] == 0.0f);
  }
}

// ----------------------------------------------------------------- Losses --

TEST(LossesTest, SoftmaxCrossEntropyUniformLogits) {
  Mat logits(2, 4);  // all zero -> uniform -> loss = log(4)
  float loss = SoftmaxCrossEntropy(logits, {0, 3}, nullptr);
  EXPECT_NEAR(loss, std::log(4.0f), 1e-5);
}

TEST(LossesTest, SoftmaxCrossEntropyGradCheck) {
  Rng rng(31);
  Mat logits(3, 5);
  UniformInit(logits.size(), -1, 1, &rng, logits.data());
  std::vector<uint32_t> labels = {2, 0, 4};
  auto loss = [&] {
    return static_cast<double>(SoftmaxCrossEntropy(logits, labels, nullptr));
  };
  Mat dlogits;
  SoftmaxCrossEntropy(logits, labels, &dlogits);
  EXPECT_LT(CheckInputGradient(&logits, dlogits, loss).max_rel_error, kGradTol);
}

TEST(LossesTest, BceWithLogitsKnownValue) {
  Mat logits(1, 1);
  logits(0, 0) = 0.0f;
  float loss = BinaryCrossEntropyWithLogits(logits, {1.0f}, nullptr);
  EXPECT_NEAR(loss, std::log(2.0f), 1e-5);
}

TEST(LossesTest, BceGradCheck) {
  Rng rng(37);
  Mat logits(4, 1);
  UniformInit(logits.size(), -2, 2, &rng, logits.data());
  std::vector<float> labels = {1, 0, 1, 0};
  auto loss = [&] {
    return static_cast<double>(
        BinaryCrossEntropyWithLogits(logits, labels, nullptr));
  };
  Mat dlogits;
  BinaryCrossEntropyWithLogits(logits, labels, &dlogits);
  EXPECT_LT(CheckInputGradient(&logits, dlogits, loss).max_rel_error, kGradTol);
}

TEST(LossesTest, BceStableAtExtremeLogits) {
  Mat logits(2, 1);
  logits(0, 0) = 200.0f;
  logits(1, 0) = -200.0f;
  float loss = BinaryCrossEntropyWithLogits(logits, {1.0f, 0.0f}, nullptr);
  EXPECT_NEAR(loss, 0.0f, 1e-5);
  EXPECT_FALSE(std::isnan(loss));
}

// -------------------------------------------------------------- Attention --

TEST(AttentionTest, OutputShape) {
  Rng rng(41);
  MultiHeadSelfAttention attn(8, 2, &rng, "a");
  Mat x(5, 8);
  UniformInit(x.size(), -1, 1, &rng, x.data());
  Mat y;
  attn.Forward(x, 5, &y);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 8u);
}

TEST(AttentionTest, PaddingMaskBlocksPaddedKeys) {
  Rng rng(43);
  MultiHeadSelfAttention attn(8, 2, &rng, "a");
  Mat x(4, 8);
  UniformInit(x.size(), -1, 1, &rng, x.data());
  Mat y_full_pad;
  attn.Forward(x, 2, &y_full_pad);  // only first 2 tokens are valid keys
  // Changing a padded token must not change valid-token outputs.
  Mat x2 = x;
  for (size_t j = 0; j < 8; ++j) x2(3, j) += 5.0f;
  Mat y2;
  attn.Forward(x2, 2, &y2);
  for (size_t j = 0; j < 8; ++j) {
    EXPECT_FLOAT_EQ(y_full_pad(0, j), y2(0, j));
    EXPECT_FLOAT_EQ(y_full_pad(1, j), y2(1, j));
  }
}

TEST(AttentionTest, GradCheckInputAndParams) {
  Rng rng(47);
  MultiHeadSelfAttention attn(6, 2, &rng, "a");
  Mat x(4, 6);
  UniformInit(x.size(), -1, 1, &rng, x.data());
  Mat c = MakeCoefficients(4, 6, 53);

  Mat y;
  auto loss = [&] {
    attn.Forward(x, 4, &y);
    return WeightedSum(y, c);
  };
  loss();
  std::vector<Parameter*> params;
  attn.Params(&params);
  ZeroAllGrads(params);
  Mat dx;
  attn.Backward(x, c, &dx);

  EXPECT_LT(CheckInputGradient(&x, dx, loss).max_rel_error, kGradTol);
  for (Parameter* p : params) {
    auto r = CheckParameterGradient(p, loss, 1e-3, 3);
    EXPECT_LT(r.max_rel_error, kGradTol) << p->name;
  }
}

// ------------------------------------------------------------ Transformer --

TEST(TransformerTest, LayerGradCheck) {
  Rng rng(59);
  TransformerEncoderLayer layer(6, 2, 12, &rng, "l");
  Mat x(3, 6);
  UniformInit(x.size(), -1, 1, &rng, x.data());
  Mat c = MakeCoefficients(3, 6, 61);

  Mat y;
  auto loss = [&] {
    layer.Forward(x, 3, &y);
    return WeightedSum(y, c);
  };
  loss();
  std::vector<Parameter*> params;
  layer.Params(&params);
  ZeroAllGrads(params);
  Mat dx;
  layer.Backward(x, c, &dx);

  EXPECT_LT(CheckInputGradient(&x, dx, loss).max_rel_error, kGradTol);
  for (Parameter* p : params) {
    auto r = CheckParameterGradient(p, loss, 1e-3, 5);
    EXPECT_LT(r.max_rel_error, kGradTol) << p->name;
  }
}

TEST(TransformerTest, StackGradCheckInput) {
  Rng rng(67);
  TransformerEncoder enc(2, 6, 2, 12, &rng, "enc");
  Mat x(3, 6);
  UniformInit(x.size(), -1, 1, &rng, x.data());
  Mat c = MakeCoefficients(3, 6, 71);

  Mat y;
  auto loss = [&] {
    enc.Forward(x, 3, &y);
    return WeightedSum(y, c);
  };
  loss();
  std::vector<Parameter*> params;
  enc.Params(&params);
  ZeroAllGrads(params);
  Mat dx;
  enc.Backward(c, &dx);
  EXPECT_LT(CheckInputGradient(&x, dx, loss).max_rel_error, kGradTol);
}

// --------------------------------------------------------------- Optimizer --

TEST(OptimizerTest, SgdStepsDownhill) {
  Parameter p("p", 1, 1);
  p.value(0, 0) = 1.0f;
  SgdOptimizer opt({&p}, 0.1f);
  // Minimize f(w) = w^2: grad = 2w.
  for (int i = 0; i < 100; ++i) {
    p.grad(0, 0) = 2.0f * p.value(0, 0);
    opt.Step();
  }
  EXPECT_NEAR(p.value(0, 0), 0.0f, 1e-4);
}

TEST(OptimizerTest, SgdZeroesGradAfterStep) {
  Parameter p("p", 1, 1);
  p.grad(0, 0) = 5.0f;
  SgdOptimizer opt({&p}, 0.1f);
  opt.Step();
  EXPECT_FLOAT_EQ(p.grad(0, 0), 0.0f);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  Parameter p("p", 1, 2);
  p.value(0, 0) = 3.0f;
  p.value(0, 1) = -2.0f;
  AdamOptimizer::Options opt_cfg;
  opt_cfg.lr = 0.05f;
  AdamOptimizer opt({&p}, opt_cfg);
  for (int i = 0; i < 500; ++i) {
    p.grad(0, 0) = 2.0f * p.value(0, 0);
    p.grad(0, 1) = 2.0f * p.value(0, 1);
    opt.Step();
  }
  EXPECT_NEAR(p.value(0, 0), 0.0f, 1e-2);
  EXPECT_NEAR(p.value(0, 1), 0.0f, 1e-2);
  EXPECT_EQ(opt.step_count(), 500u);
}

TEST(OptimizerTest, AdamFirstStepMagnitudeIsLr) {
  // With bias correction, |first step| ~= lr regardless of grad scale.
  Parameter p("p", 1, 1);
  AdamOptimizer::Options cfg;
  cfg.lr = 0.1f;
  AdamOptimizer opt({&p}, cfg);
  p.grad(0, 0) = 1e-3f;
  opt.Step();
  EXPECT_NEAR(std::fabs(p.value(0, 0)), 0.1f, 1e-3);
}

TEST(ParameterTest, GradNormAndScale) {
  Parameter a("a", 1, 2), b("b", 1, 1);
  a.grad(0, 0) = 3;
  a.grad(0, 1) = 4;
  b.grad(0, 0) = 0;
  EXPECT_DOUBLE_EQ(GradSquaredNorm({&a, &b}), 25.0);
  ScaleAllGrads({&a, &b}, 0.5f);
  EXPECT_FLOAT_EQ(a.grad(0, 0), 1.5f);
}

}  // namespace
}  // namespace pkgm::nn
