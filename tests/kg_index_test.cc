// Tests for the on-disk triple index tier (src/kg/*.pkgt*): round-trip
// parity between the in-memory TripleStore and the memory-mapped
// MmapTripleIndex, corrupt-file rejection mirroring the .pkgs suite,
// IndexedQueryEngine joins against brute force, and bit-identical training
// and filtered evaluation across the two TripleSource backends.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/link_prediction.h"
#include "core/pkgm_model.h"
#include "core/trainer.h"
#include "kg/indexed_query_engine.h"
#include "kg/mmap_triple_index.h"
#include "kg/pkgt_format.h"
#include "kg/synthetic_pkg.h"
#include "kg/triple_index_writer.h"
#include "kg/triple_store.h"
#include "util/status.h"

namespace pkgm {
namespace {

std::string TempIndexPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

/// A small deterministic product KG exercised by most tests here.
kg::SyntheticPkg SmallPkg(uint64_t seed = 5) {
  kg::SyntheticPkgOptions opt;
  opt.seed = seed;
  opt.num_categories = 4;
  opt.items_per_category = 30;
  return kg::SyntheticPkgGenerator(opt).Generate();
}

/// Builds a .pkgt from `store` and opens it; asserts success.
kg::MmapTripleIndex BuildAndOpen(const kg::TripleStore& store,
                                 const std::string& path) {
  auto stats = kg::TripleIndexWriter().Write(store, path);
  EXPECT_TRUE(stats.ok()) << stats.status().message();
  auto opened = kg::MmapTripleIndex::Open(path);
  EXPECT_TRUE(opened.ok()) << opened.status().message();
  return std::move(opened.value());
}

std::vector<uint32_t> Sorted(kg::IdSpan span) {
  std::vector<uint32_t> v(span.begin(), span.end());
  std::sort(v.begin(), v.end());
  return v;
}

void FlipByteAt(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, offset, SEEK_SET);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  std::fseek(f, offset, SEEK_SET);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);
}

// ------------------------------------------------------ backend parity --

TEST(KgIndexParity, AnswersMatchTripleStoreOnSyntheticPkg) {
  kg::SyntheticPkg pkg = SmallPkg();
  const kg::TripleStore& store = pkg.observed;
  const std::string path = TempIndexPath("parity.pkgt");
  kg::MmapTripleIndex index = BuildAndOpen(store, path);

  EXPECT_EQ(index.NumTriples(), store.NumTriples());
  EXPECT_EQ(index.MaxEntityId(), store.MaxEntityId());
  EXPECT_EQ(index.MaxRelationId(), store.MaxRelationId());
  ASSERT_TRUE(index.Validate().ok());

  // Every stored triple answers identically through both backends; probe
  // the full cross product of access paths per triple.
  for (const kg::Triple& t : store.triples()) {
    EXPECT_TRUE(index.Contains(t.head, t.relation, t.tail));
    EXPECT_TRUE(index.HasRelation(t.head, t.relation));
    EXPECT_EQ(Sorted(index.Tails(t.head, t.relation)),
              Sorted(store.Tails(t.head, t.relation)));
    EXPECT_EQ(Sorted(index.Heads(t.relation, t.tail)),
              Sorted(store.Heads(t.relation, t.tail)));
    EXPECT_EQ(Sorted(index.RelationsOf(t.head)),
              Sorted(store.RelationsOf(t.head)));
  }
  for (uint32_t r = 0; r < store.MaxRelationId(); ++r) {
    EXPECT_EQ(index.RelationCount(r), store.RelationCount(r));
  }

  // Negative probes: perturbed triples must agree (nearly all absent).
  for (const kg::Triple& t : pkg.held_out) {
    EXPECT_EQ(index.Contains(t.head, t.relation, t.tail),
              store.Contains(t.head, t.relation, t.tail));
  }
  EXPECT_FALSE(index.Contains(store.MaxEntityId() + 5, 0, 0));
  EXPECT_TRUE(index.Tails(store.MaxEntityId() + 5, 0).empty());
  EXPECT_TRUE(index.RelationsOf(store.MaxEntityId() + 5).empty());
  EXPECT_EQ(index.RelationCount(store.MaxRelationId() + 3), 0u);

  // AppendTriples round-trips the full triple set (as a sorted multiset).
  std::vector<kg::Triple> from_index, from_store;
  index.AppendTriples(&from_index);
  store.AppendTriples(&from_store);
  const auto spo_less = [](const kg::Triple& a, const kg::Triple& b) {
    return std::tie(a.head, a.relation, a.tail) <
           std::tie(b.head, b.relation, b.tail);
  };
  std::sort(from_store.begin(), from_store.end(), spo_less);
  ASSERT_EQ(from_index.size(), from_store.size());
  EXPECT_TRUE(std::is_sorted(from_index.begin(), from_index.end(), spo_less));
  for (size_t i = 0; i < from_index.size(); ++i) {
    EXPECT_EQ(from_index[i], from_store[i]);
  }
  std::remove(path.c_str());
}

TEST(KgIndexWriter, DeduplicatesAndRejectsEmptyInput) {
  const std::string path = TempIndexPath("dedup.pkgt");
  auto stats = kg::TripleIndexWriter().WriteTriples(
      {{1, 0, 2}, {1, 0, 2}, {3, 1, 4}, {1, 0, 2}}, path);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_triples, 2u);

  auto empty = kg::TripleIndexWriter().WriteTriples({}, path);
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// ------------------------------------------------------- corrupt files --

TEST(KgIndexCorruption, TruncatedIndexIsRejected) {
  kg::SyntheticPkg pkg = SmallPkg();
  const std::string path = TempIndexPath("trunc.pkgt");
  ASSERT_TRUE(kg::TripleIndexWriter().Write(pkg.observed, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);

  auto opened = kg::MmapTripleIndex::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(KgIndexCorruption, BadMagicIsRejected) {
  kg::SyntheticPkg pkg = SmallPkg();
  const std::string path = TempIndexPath("magic.pkgt");
  ASSERT_TRUE(kg::TripleIndexWriter().Write(pkg.observed, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  const uint32_t bogus = 0xDEADBEEFu;
  std::fwrite(&bogus, sizeof(bogus), 1, f);
  std::fclose(f);

  auto opened = kg::MmapTripleIndex::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(KgIndexCorruption, UnsupportedVersionIsRejected) {
  kg::SyntheticPkg pkg = SmallPkg();
  const std::string path = TempIndexPath("version.pkgt");
  ASSERT_TRUE(kg::TripleIndexWriter().Write(pkg.observed, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  const uint32_t future = kg::kPkgtFormatVersion + 1;
  std::fseek(f, 4, SEEK_SET);  // header byte layout: version at [4, 8)
  std::fwrite(&future, sizeof(future), 1, f);
  std::fclose(f);

  auto opened = kg::MmapTripleIndex::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(KgIndexCorruption, PayloadBitFlipFailsChecksum) {
  kg::SyntheticPkg pkg = SmallPkg();
  const std::string path = TempIndexPath("flip.pkgt");
  ASSERT_TRUE(kg::TripleIndexWriter().Write(pkg.observed, path).ok());
  kg::PkgtHeader header;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fread(&header, sizeof(header), 1, f), 1u);
    std::fclose(f);
  }
  // Flip a value byte in the middle of the SPO values section.
  FlipByteAt(path, static_cast<long>(header.spo.values_offset) + 1);

  auto strict = kg::MmapTripleIndex::Open(path);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kCorruption);

  // Lazy mode maps it anyway (large-index fast path) but an explicit
  // VerifyChecksum still catches the flip.
  kg::MmapTripleIndexOptions lazy;
  lazy.verify_checksum = false;
  auto opened = kg::MmapTripleIndex::Open(path, lazy);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  Status s = opened.value().VerifyChecksum();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(KgIndexCorruption, OutOfOrderRunKeysAreRejected) {
  kg::SyntheticPkg pkg = SmallPkg();
  const std::string path = TempIndexPath("order.pkgt");
  ASSERT_TRUE(kg::TripleIndexWriter().Write(pkg.observed, path).ok());
  kg::PkgtHeader header;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fread(&header, sizeof(header), 1, f), 1u);
    std::fclose(f);
  }
  // Overwrite the first SPO run key with the maximum key: keys are no
  // longer strictly increasing, which must fail the structural check at
  // open even with the checksum pass disabled.
  const uint64_t huge = ~UINT64_C(0);
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, static_cast<long>(header.spo.keys_offset), SEEK_SET);
  std::fwrite(&huge, sizeof(huge), 1, f);
  std::fclose(f);

  kg::MmapTripleIndexOptions lazy;
  lazy.verify_checksum = false;
  auto opened = kg::MmapTripleIndex::Open(path, lazy);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

// ------------------------------------------------- indexed query engine --

TEST(IndexedQueryEngine, PointQueriesAndStats) {
  kg::TripleStore store;
  store.Add(1, 0, 2);
  store.Add(1, 0, 3);
  store.Add(4, 1, 2);
  const std::string path = TempIndexPath("points.pkgt");
  kg::MmapTripleIndex index = BuildAndOpen(store, path);
  kg::IndexedQueryEngine engine(&index);

  EXPECT_EQ(Sorted(engine.TripleQuery(1, 0)), (std::vector<uint32_t>{2, 3}));
  EXPECT_EQ(Sorted(engine.RelationQuery(4)), (std::vector<uint32_t>{1}));
  EXPECT_TRUE(engine.TripleQuery(9, 9).empty());

  EXPECT_EQ(engine.num_triple_queries(), 2u);
  EXPECT_EQ(engine.num_relation_queries(), 1u);
  EXPECT_EQ(engine.num_empty_results(), 1u);
  EXPECT_EQ(engine.point_micros().count(), 3u);
  const std::string json = engine.StatsJson();
  EXPECT_NE(json.find("\"triple_queries\":2"), std::string::npos);
  EXPECT_NE(json.find("\"empty_results\":1"), std::string::npos);
  EXPECT_NE(json.find("\"join_latency\":{\"count\":0}"), std::string::npos);
  std::remove(path.c_str());
}

/// Brute-force reference for one conjunctive pattern over all entities.
std::vector<uint32_t> BruteConjunction(
    const kg::TripleStore& store,
    const std::vector<kg::IndexedQueryEngine::Atom>& atoms) {
  using Atom = kg::IndexedQueryEngine::Atom;
  const bool has_positive =
      std::any_of(atoms.begin(), atoms.end(), [](const Atom& a) {
        return a.kind != Atom::Kind::kMissingRelation;
      });
  std::vector<uint32_t> out;
  for (uint32_t x = 0; x < store.MaxEntityId(); ++x) {
    // With no positive atom the engine's candidate universe is the graph's
    // subjects; a positive atom constrains ?x by itself.
    if (!has_positive && store.RelationsOf(x).empty()) continue;
    bool ok = true;
    for (const Atom& a : atoms) {
      switch (a.kind) {
        case Atom::Kind::kHasTail:
          ok = store.Contains(x, a.relation, a.fixed);
          break;
        case Atom::Kind::kHasHead:
          ok = store.Contains(a.fixed, a.relation, x);
          break;
        case Atom::Kind::kHasRelation:
          ok = store.HasRelation(x, a.relation);
          break;
        case Atom::Kind::kMissingRelation:
          ok = !store.HasRelation(x, a.relation);
          break;
      }
      if (!ok) break;
    }
    if (ok) out.push_back(x);
  }
  return out;
}

TEST(IndexedQueryEngine, ConjunctionsMatchBruteForce) {
  kg::SyntheticPkg pkg = SmallPkg(9);
  const kg::TripleStore& store = pkg.observed;
  const std::string path = TempIndexPath("joins.pkgt");
  kg::MmapTripleIndex index = BuildAndOpen(store, path);
  kg::IndexedQueryEngine engine(&index);
  using Atom = kg::IndexedQueryEngine::Atom;

  // Pick a well-populated relation/tail pair to join on: the first triple's
  // category-ish edge plus a second relation that some-but-not-all of those
  // items carry makes every atom kind selective.
  const kg::Triple seed = store.triples().front();
  const kg::RelationId other =
      (seed.relation + 1) % std::max(1u, store.MaxRelationId());

  const std::vector<std::vector<Atom>> patterns = {
      // The canonical audit: items of "category" seed.tail missing `other`.
      {Atom::HasTail(seed.relation, seed.tail),
       Atom::MissingRelation(other)},
      {Atom::HasTail(seed.relation, seed.tail), Atom::HasRelation(other)},
      {Atom::HasRelation(seed.relation)},
      {Atom::HasRelation(seed.relation), Atom::HasRelation(other)},
      {Atom::HasHead(seed.head, seed.relation)},
      {Atom::MissingRelation(seed.relation)},  // purely negative
      {},                                      // unconstrained: all subjects
      {Atom::HasTail(seed.relation, seed.tail),
       Atom::HasTail(seed.relation, seed.tail + 1)},  // likely empty
  };
  for (const auto& atoms : patterns) {
    EXPECT_EQ(engine.ConjunctiveQuery(atoms), BruteConjunction(store, atoms));
  }
  EXPECT_EQ(engine.num_conjunctive_queries(), patterns.size());
  EXPECT_EQ(engine.join_micros().count(), patterns.size());
  std::remove(path.c_str());
}

TEST(IndexedQueryEngine, ExpandMatchesBruteForceUnion) {
  kg::SyntheticPkg pkg = SmallPkg(11);
  const kg::TripleStore& store = pkg.observed;
  const std::string path = TempIndexPath("expand.pkgt");
  kg::MmapTripleIndex index = BuildAndOpen(store, path);
  kg::IndexedQueryEngine engine(&index);

  const kg::Triple seed = store.triples().front();
  std::vector<uint32_t> frontier = {seed.head, seed.head + 1, seed.head + 2};
  std::vector<uint32_t> expect;
  for (uint32_t h : frontier) {
    for (uint32_t t : store.Tails(h, seed.relation)) expect.push_back(t);
  }
  std::sort(expect.begin(), expect.end());
  expect.erase(std::unique(expect.begin(), expect.end()), expect.end());

  EXPECT_EQ(engine.Expand(frontier, seed.relation), expect);
  // Two hops compose.
  const std::vector<uint32_t> hop2 =
      engine.Expand(engine.Expand(frontier, seed.relation), seed.relation);
  EXPECT_TRUE(std::is_sorted(hop2.begin(), hop2.end()));
  EXPECT_EQ(engine.num_expand_queries(), 3u);
  std::remove(path.c_str());
}

// ------------------------------------------- training / eval via source --

TEST(KgIndexTraining, SeededLossIsBitIdenticalAcrossBackends) {
  // Insert the triples into the in-memory store in SPO order, matching the
  // order the index's AppendTriples produces — with identical epoch triple
  // order and a fixed seed the two backends must yield bit-identical
  // trajectories.
  kg::SyntheticPkg pkg = SmallPkg(23);
  std::vector<kg::Triple> triples = pkg.observed.triples();
  std::sort(triples.begin(), triples.end(),
            [](const kg::Triple& a, const kg::Triple& b) {
              return std::tie(a.head, a.relation, a.tail) <
                     std::tie(b.head, b.relation, b.tail);
            });
  kg::TripleStore sorted_store;
  for (const kg::Triple& t : triples) sorted_store.Add(t);

  const std::string path = TempIndexPath("train.pkgt");
  kg::MmapTripleIndex index = BuildAndOpen(sorted_store, path);

  core::PkgmModelOptions mopt;
  mopt.num_entities = sorted_store.MaxEntityId();
  mopt.num_relations = sorted_store.MaxRelationId();
  mopt.dim = 16;
  mopt.seed = 77;
  core::TrainerOptions topt;
  topt.seed = 31;

  core::PkgmModel model_mem(mopt);
  core::Trainer trainer_mem(&model_mem, &sorted_store, topt);
  core::PkgmModel model_idx(mopt);
  core::Trainer trainer_idx(&model_idx, &index, topt);

  for (int epoch = 0; epoch < 2; ++epoch) {
    const core::EpochStats mem = trainer_mem.RunEpoch();
    const core::EpochStats idx = trainer_idx.RunEpoch();
    EXPECT_EQ(mem.mean_hinge, idx.mean_hinge);
    EXPECT_EQ(mem.active_pairs, idx.active_pairs);
  }
  for (uint32_t e = 0; e < mopt.num_entities; ++e) {
    ASSERT_EQ(std::memcmp(model_mem.entity(e), model_idx.entity(e),
                          mopt.dim * sizeof(float)),
              0);
  }
  std::remove(path.c_str());
}

TEST(KgIndexEval, FilteredRankingMatchesAcrossBackends) {
  kg::SyntheticPkg pkg = SmallPkg(29);
  const kg::TripleStore& store = pkg.observed;
  const std::string path = TempIndexPath("eval.pkgt");
  kg::MmapTripleIndex index = BuildAndOpen(store, path);

  core::PkgmModelOptions mopt;
  mopt.num_entities = store.MaxEntityId();
  mopt.num_relations = store.MaxRelationId();
  mopt.dim = 16;
  mopt.seed = 3;
  core::PkgmModel model(mopt);

  std::vector<kg::Triple> test(store.triples().begin(),
                               store.triples().begin() + 50);
  core::LinkPredictionEvaluator::Options eopt;
  eopt.num_threads = 1;
  core::LinkPredictionEvaluator eval_mem(&model, &store, eopt);
  core::LinkPredictionEvaluator eval_idx(&model, &index, eopt);

  const core::LinkPredictionResult mem = eval_mem.EvaluateTails(test);
  const core::LinkPredictionResult idx = eval_idx.EvaluateTails(test);
  EXPECT_EQ(mem.mrr, idx.mrr);
  EXPECT_EQ(mem.mean_rank, idx.mean_rank);
  EXPECT_EQ(mem.hits, idx.hits);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pkgm
