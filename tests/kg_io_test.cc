#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "kg/io.h"

namespace pkgm::kg {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(KgIoTest, TriplesRoundTrip) {
  Vocab entities, relations;
  TripleStore store;
  store.Add(entities.GetOrAdd("iphone"), relations.GetOrAdd("brandIs"),
            entities.GetOrAdd("apple"));
  store.Add(entities.GetOrAdd("iphone"), relations.GetOrAdd("colorIs"),
            entities.GetOrAdd("green"));

  const std::string path = TempPath("triples.tsv");
  ASSERT_TRUE(ExportTriplesTsv(store, entities, relations, path).ok());

  Vocab e2, r2;
  auto loaded = ImportTriplesTsv(path, &e2, &r2);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_TRUE(loaded->Contains(e2.Find("iphone"), r2.Find("brandIs"),
                               e2.Find("apple")));
  EXPECT_TRUE(loaded->Contains(e2.Find("iphone"), r2.Find("colorIs"),
                               e2.Find("green")));
  std::remove(path.c_str());
}

TEST(KgIoTest, ImportSkipsCommentsAndBlanks) {
  const std::string path = TempPath("commented.tsv");
  {
    std::ofstream out(path);
    out << "# product KG dump\n\n"
        << "a\tr\tb\n"
        << "   \n"
        << "c\tr\td\n";
  }
  Vocab e, r;
  auto loaded = ImportTriplesTsv(path, &e, &r);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), 2u);
  std::remove(path.c_str());
}

TEST(KgIoTest, ImportRejectsMalformedLineWithLineNumber) {
  const std::string path = TempPath("malformed.tsv");
  {
    std::ofstream out(path);
    out << "a\tr\tb\n"
        << "only-two\tfields\n";
  }
  Vocab e, r;
  auto loaded = ImportTriplesTsv(path, &e, &r);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find(":2:"), std::string::npos)
      << loaded.status().message();
  std::remove(path.c_str());
}

TEST(KgIoTest, ImportMissingFile) {
  Vocab e, r;
  auto loaded = ImportTriplesTsv("/no/such/file.tsv", &e, &r);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(KgIoTest, VocabRoundTrip) {
  Vocab v;
  v.GetOrAdd("zero");
  v.GetOrAdd("one");
  v.GetOrAdd("two");
  const std::string path = TempPath("vocab.txt");
  ASSERT_TRUE(SaveVocab(v, path).ok());

  auto loaded = LoadVocab(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), 3u);
  EXPECT_EQ(loaded->Find("one"), 1u);
  EXPECT_EQ(loaded->Name(2), "two");
  std::remove(path.c_str());
}

TEST(KgIoTest, LoadVocabRejectsDuplicates) {
  const std::string path = TempPath("dupes.txt");
  {
    std::ofstream out(path);
    out << "a\nb\na\n";
  }
  auto loaded = LoadVocab(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pkgm::kg
