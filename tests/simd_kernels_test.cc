// Kernel parity suite: every vector ISA usable on this machine is compared
// against the scalar reference for each op, across lengths 1..4*width+3
// (deliberately straddling non-multiples of every vector width) and
// deliberately misaligned base pointers.
//
// Tolerance contract (documented in DESIGN.md §10):
//  * Elementwise ops with one rounding per lane (add, sub, hadamard,
//    scale, sign_of) must match the scalar reference bit-for-bit.
//  * axpy may fuse the multiply-add (one rounding instead of two): each
//    element is allowed 1 ulp of drift.
//  * Reductions (dot, norms, l1_distance, and the batch/gemv entry points
//    built on them) reassociate the sum across lanes/accumulators: results
//    must agree within a relative 16 * n * eps bound — loose enough for
//    any bracketing of an n-term fp32 sum, tight enough to catch a wrong
//    element or a dropped tail.
//  * Within one table, l1_distance_batch row i and gemv_raw row i must be
//    bit-identical to the single-row call (ranking-tie contract).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "tensor/simd/kernel_dispatch.h"
#include "util/rng.h"

namespace pkgm::simd {
namespace {

// Largest vector width across ISAs is 16 (AVX-512); the unrolled
// reduction chunks span 4 registers, so cover up to 4*16+3 elements plus
// margin to exercise every remainder path.
constexpr size_t kMaxLen = 4 * 16 + 3;

// Relative tolerance for an n-term reassociated fp32 reduction.
double ReductionTol(size_t n, double magnitude) {
  const double eps = 1.19209290e-7;  // fp32 machine epsilon
  return 16.0 * static_cast<double>(n + 1) * eps * (magnitude + 1.0);
}

std::vector<const KernelTable*> AvailableVectorTables() {
  std::vector<const KernelTable*> tables;
  if (const KernelTable* t = Avx2Kernels()) tables.push_back(t);
  if (const KernelTable* t = Avx512Kernels()) tables.push_back(t);
  if (const KernelTable* t = NeonKernels()) tables.push_back(t);
  return tables;
}

/// Buffer with a controlled misalignment: data() is `offset` floats past a
/// vector-aligned base, so 16-byte/32-byte/64-byte alignment is broken for
/// every offset in 1..3.
struct Misaligned {
  Misaligned(size_t n, size_t offset, uint64_t seed) : storage(n + offset + 1) {
    Rng rng(seed);
    for (auto& v : storage) {
      v = rng.Uniform(1000) / 250.0f - 2.0f;  // [-2, 2), some exact zeros
    }
    ptr = storage.data() + offset;
    size = n;
  }
  std::vector<float> storage;
  float* ptr;
  size_t size;
};

class SimdParityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SimdParityTest, AllOpsMatchScalarReference) {
  const size_t offset = GetParam();
  const KernelTable& ref = ScalarKernels();
  for (const KernelTable* table : AvailableVectorTables()) {
    SCOPED_TRACE(std::string("isa=") + KernelIsaName(table->isa) +
                 " offset=" + std::to_string(offset));
    for (size_t n = 1; n <= kMaxLen; ++n) {
      SCOPED_TRACE("n=" + std::to_string(n));
      Misaligned x(n, offset, 1000 + n), y(n, offset, 2000 + n);

      // Reductions: reassociation tolerance.
      EXPECT_NEAR(table->dot(n, x.ptr, y.ptr), ref.dot(n, x.ptr, y.ptr),
                  ReductionTol(n, std::fabs(ref.dot(n, x.ptr, y.ptr))));
      EXPECT_NEAR(table->l1_norm(n, x.ptr), ref.l1_norm(n, x.ptr),
                  ReductionTol(n, ref.l1_norm(n, x.ptr)));
      EXPECT_NEAR(table->squared_l2_norm(n, x.ptr),
                  ref.squared_l2_norm(n, x.ptr),
                  ReductionTol(n, ref.squared_l2_norm(n, x.ptr)));
      EXPECT_NEAR(table->l1_distance(n, x.ptr, y.ptr),
                  ref.l1_distance(n, x.ptr, y.ptr),
                  ReductionTol(n, ref.l1_distance(n, x.ptr, y.ptr)));

      // Elementwise ops: bit-for-bit.
      std::vector<float> got(n), want(n);
      table->add(n, x.ptr, y.ptr, got.data());
      ref.add(n, x.ptr, y.ptr, want.data());
      EXPECT_EQ(0, std::memcmp(got.data(), want.data(), n * sizeof(float)));

      table->sub(n, x.ptr, y.ptr, got.data());
      ref.sub(n, x.ptr, y.ptr, want.data());
      EXPECT_EQ(0, std::memcmp(got.data(), want.data(), n * sizeof(float)));

      table->hadamard(n, x.ptr, y.ptr, got.data());
      ref.hadamard(n, x.ptr, y.ptr, want.data());
      EXPECT_EQ(0, std::memcmp(got.data(), want.data(), n * sizeof(float)));

      table->sign_of(n, x.ptr, got.data());
      ref.sign_of(n, x.ptr, want.data());
      EXPECT_EQ(0, std::memcmp(got.data(), want.data(), n * sizeof(float)));

      std::copy(x.ptr, x.ptr + n, got.begin());
      std::copy(x.ptr, x.ptr + n, want.begin());
      table->scale(n, 1.75f, got.data());
      ref.scale(n, 1.75f, want.data());
      EXPECT_EQ(0, std::memcmp(got.data(), want.data(), n * sizeof(float)));

      // axpy: FMA is allowed one rounding of drift per element.
      std::copy(y.ptr, y.ptr + n, got.begin());
      std::copy(y.ptr, y.ptr + n, want.begin());
      table->axpy(n, 0.37f, x.ptr, got.data());
      ref.axpy(n, 0.37f, x.ptr, want.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(got[i], want[i],
                    2.0f * 1.19209290e-7f * (std::fabs(want[i]) + 1.0f));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Offsets, SimdParityTest,
                         ::testing::Values<size_t>(0, 1, 2, 3));

TEST(SimdBatchConsistencyTest, BatchAndGemvRowsMatchSingleRowCallsExactly) {
  // The ranking-tie contract: within a table, scoring a row inside a batch
  // must equal scoring it alone, bit-for-bit, for every dim remainder.
  std::vector<const KernelTable*> tables = AvailableVectorTables();
  tables.push_back(&ScalarKernels());
  for (const KernelTable* table : tables) {
    SCOPED_TRACE(std::string("isa=") + KernelIsaName(table->isa));
    for (size_t dim = 1; dim <= kMaxLen; dim += 7) {
      const size_t rows = 5;
      Misaligned q(dim, 1, 31 * dim), block(rows * dim, 1, 37 * dim);
      std::vector<float> out(rows);
      table->l1_distance_batch(q.ptr, block.ptr, rows, dim, out.data());
      for (size_t i = 0; i < rows; ++i) {
        const float single = table->l1_distance(dim, q.ptr, block.ptr + i * dim);
        EXPECT_EQ(out[i], single) << "dim=" << dim << " row=" << i;
      }
      table->gemv_raw(rows, dim, block.ptr, q.ptr, out.data());
      for (size_t i = 0; i < rows; ++i) {
        const float single = table->dot(dim, block.ptr + i * dim, q.ptr);
        EXPECT_EQ(out[i], single) << "dim=" << dim << " row=" << i;
      }
    }
  }
}

TEST(SimdTrainingKernelsTest, ResidualMatchesScalarBitForBit) {
  // residual is elementwise with the same two roundings per lane in every
  // table, so it inherits the bit-for-bit elementwise contract.
  const KernelTable& ref = ScalarKernels();
  for (const KernelTable* table : AvailableVectorTables()) {
    SCOPED_TRACE(std::string("isa=") + KernelIsaName(table->isa));
    for (size_t offset = 0; offset <= 3; ++offset) {
      for (size_t n = 1; n <= kMaxLen; ++n) {
        Misaligned x(n, offset, 100 + n), y(n, offset, 200 + n),
            z(n, offset, 300 + n);
        std::vector<float> got(n), want(n);
        table->residual(n, x.ptr, y.ptr, z.ptr, got.data());
        ref.residual(n, x.ptr, y.ptr, z.ptr, want.data());
        EXPECT_EQ(0, std::memcmp(got.data(), want.data(), n * sizeof(float)))
            << "offset=" << offset << " n=" << n;
      }
    }
  }
}

TEST(SimdTrainingKernelsTest, AdamRowMatchesScalarBitForBit) {
  // adam_row deliberately avoids FMA in every table so the optimizer state
  // is identical whatever ISA trained the model.
  const KernelTable& ref = ScalarKernels();
  for (const KernelTable* table : AvailableVectorTables()) {
    SCOPED_TRACE(std::string("isa=") + KernelIsaName(table->isa));
    for (size_t offset = 0; offset <= 3; ++offset) {
      for (size_t n = 1; n <= kMaxLen; ++n) {
        Misaligned g(n, offset, 400 + n), row0(n, offset, 500 + n),
            m0(n, offset, 600 + n), v0(n, offset, 700 + n);
        // Second moment must be non-negative.
        for (size_t i = 0; i < n; ++i) {
          v0.ptr[i] = std::fabs(v0.ptr[i]);
        }
        std::vector<float> row_a(row0.ptr, row0.ptr + n),
            m_a(m0.ptr, m0.ptr + n), v_a(v0.ptr, v0.ptr + n);
        std::vector<float> row_b(row_a), m_b(m_a), v_b(v_a);
        table->adam_row(n, g.ptr, 0.125f, 0.9f, 0.999f, 0.01f, 1e-8f,
                        row_a.data(), m_a.data(), v_a.data());
        ref.adam_row(n, g.ptr, 0.125f, 0.9f, 0.999f, 0.01f, 1e-8f,
                     row_b.data(), m_b.data(), v_b.data());
        EXPECT_EQ(0, std::memcmp(row_a.data(), row_b.data(),
                                 n * sizeof(float)))
            << "offset=" << offset << " n=" << n;
        EXPECT_EQ(0, std::memcmp(m_a.data(), m_b.data(), n * sizeof(float)));
        EXPECT_EQ(0, std::memcmp(v_a.data(), v_b.data(), n * sizeof(float)));
      }
    }
  }
}

TEST(SimdTrainingKernelsTest, GemvTransposedMatchesAxpyCompositionExactly) {
  // Within one table, y = A^T x must be exactly "zero y, then axpy each
  // row of A scaled by x[i], in row order" — the same sequence the fused
  // backward would otherwise issue. Cross-table agreement then follows
  // from the axpy contract (checked against scalar with 1-ulp drift).
  std::vector<const KernelTable*> tables = AvailableVectorTables();
  tables.push_back(&ScalarKernels());
  const KernelTable& ref = ScalarKernels();
  for (const KernelTable* table : tables) {
    SCOPED_TRACE(std::string("isa=") + KernelIsaName(table->isa));
    for (size_t n = 1; n <= kMaxLen; n += 5) {
      const size_t m = 6;
      Misaligned a(m * n, 1, 41 * n), x(m, 1, 43 * n);
      x.ptr[2 % m] = 0.0f;  // exercise zero coefficients
      std::vector<float> got(n), want(n, 0.0f);
      table->gemv_t(m, n, a.ptr, x.ptr, got.data());
      for (size_t i = 0; i < m; ++i) {
        table->axpy(n, x.ptr[i], a.ptr + i * n, want.data());
      }
      EXPECT_EQ(0, std::memcmp(got.data(), want.data(), n * sizeof(float)))
          << "n=" << n;
      // Cross-table: reassociation-free per element, so compare to the
      // scalar result with the per-element axpy tolerance times m terms.
      std::vector<float> scalar_y(n);
      ref.gemv_t(m, n, a.ptr, x.ptr, scalar_y.data());
      for (size_t j = 0; j < n; ++j) {
        EXPECT_NEAR(got[j], scalar_y[j],
                    ReductionTol(m, std::fabs(scalar_y[j])))
            << "n=" << n << " j=" << j;
      }
    }
  }
}

TEST(SimdTrainingKernelsTest, GerMatchesPerRowAxpyExactly) {
  // A += alpha * x y^T: row i must be exactly axpy(alpha*x[i], y, row_i),
  // and rows with x[i] == 0 must not be touched at all.
  std::vector<const KernelTable*> tables = AvailableVectorTables();
  tables.push_back(&ScalarKernels());
  for (const KernelTable* table : tables) {
    SCOPED_TRACE(std::string("isa=") + KernelIsaName(table->isa));
    for (size_t n = 1; n <= kMaxLen; n += 5) {
      const size_t m = 6;
      Misaligned a0(m * n, 1, 51 * n), x(m, 1, 53 * n), y(n, 1, 57 * n);
      x.ptr[1] = 0.0f;  // a skipped row
      std::vector<float> got(a0.ptr, a0.ptr + m * n),
          want(a0.ptr, a0.ptr + m * n);
      table->ger(m, n, 0.75f, x.ptr, y.ptr, got.data());
      for (size_t i = 0; i < m; ++i) {
        if (x.ptr[i] == 0.0f) continue;
        table->axpy(n, 0.75f * x.ptr[i], y.ptr, want.data() + i * n);
      }
      EXPECT_EQ(0, std::memcmp(got.data(), want.data(),
                               m * n * sizeof(float)))
          << "n=" << n;
      EXPECT_EQ(0, std::memcmp(got.data() + n, a0.ptr + n, n * sizeof(float)))
          << "skipped row was modified, n=" << n;
    }
  }
}

TEST(SimdInferenceKernelsTest, GemmBiasMatchesGemmThenBiasCompositionExactly) {
  // The fused linear forward: within a table, row i must equal "zero the
  // row, axpy each B row scaled by A(i,p) in p order, then axpy the bias"
  // — exactly the composition nn::Linear::Forward used before the fusion,
  // so rewiring Linear onto gemm_bias changes no bits.
  std::vector<const KernelTable*> tables = AvailableVectorTables();
  tables.push_back(&ScalarKernels());
  for (const KernelTable* table : tables) {
    SCOPED_TRACE(std::string("isa=") + KernelIsaName(table->isa));
    for (size_t n = 1; n <= kMaxLen; n += 5) {
      const size_t m = 4, k = 6;
      Misaligned a(m * k, 1, 61 * n), b(k * n, 1, 67 * n), bias(n, 1, 71 * n);
      std::vector<float> got(m * n), want(m * n, 0.0f);
      table->gemm_bias(m, k, n, a.ptr, b.ptr, bias.ptr, got.data());
      for (size_t i = 0; i < m; ++i) {
        for (size_t p = 0; p < k; ++p) {
          table->axpy(n, a.ptr[i * k + p], b.ptr + p * n, want.data() + i * n);
        }
        table->axpy(n, 1.0f, bias.ptr, want.data() + i * n);
      }
      EXPECT_EQ(0, std::memcmp(got.data(), want.data(), m * n * sizeof(float)))
          << "n=" << n;
      // nullptr bias = plain C = A B.
      std::vector<float> no_bias(m * n), want_nb(m * n, 0.0f);
      table->gemm_bias(m, k, n, a.ptr, b.ptr, nullptr, no_bias.data());
      for (size_t i = 0; i < m; ++i) {
        for (size_t p = 0; p < k; ++p) {
          table->axpy(n, a.ptr[i * k + p], b.ptr + p * n,
                      want_nb.data() + i * n);
        }
      }
      EXPECT_EQ(0, std::memcmp(no_bias.data(), want_nb.data(),
                               m * n * sizeof(float)))
          << "n=" << n;
    }
  }
}

TEST(SimdInferenceKernelsTest, GemmBiasBatchRowsMatchSingleRowCallsExactly) {
  // Batch invariance: row i of an m-row forward must equal a 1-row forward
  // of that row alone — the property the serving-vs-offline inference
  // parity tests lean on.
  std::vector<const KernelTable*> tables = AvailableVectorTables();
  tables.push_back(&ScalarKernels());
  for (const KernelTable* table : tables) {
    SCOPED_TRACE(std::string("isa=") + KernelIsaName(table->isa));
    const size_t m = 5, k = 7, n = 19;
    Misaligned a(m * k, 1, 73), b(k * n, 1, 79), bias(n, 1, 83);
    std::vector<float> batch(m * n), single(n);
    table->gemm_bias(m, k, n, a.ptr, b.ptr, bias.ptr, batch.data());
    for (size_t i = 0; i < m; ++i) {
      table->gemm_bias(1, k, n, a.ptr + i * k, b.ptr, bias.ptr, single.data());
      EXPECT_EQ(0, std::memcmp(batch.data() + i * n, single.data(),
                               n * sizeof(float)))
          << "row=" << i;
    }
  }
}

TEST(SimdInferenceKernelsTest, SoftmaxMatchesScalarBitForBit) {
  // softmax keeps exp scalar and the normalizing sum left-to-right in
  // every table, so unlike the reassociating reductions it must match the
  // scalar reference bit-for-bit (the probabilities go out on the wire).
  const KernelTable& ref = ScalarKernels();
  for (const KernelTable* table : AvailableVectorTables()) {
    SCOPED_TRACE(std::string("isa=") + KernelIsaName(table->isa));
    for (size_t offset = 0; offset <= 3; ++offset) {
      for (size_t n = 1; n <= kMaxLen; ++n) {
        Misaligned x(n, offset, 800 + n);
        std::vector<float> got(x.ptr, x.ptr + n), want(x.ptr, x.ptr + n);
        table->softmax(n, got.data());
        ref.softmax(n, want.data());
        EXPECT_EQ(0, std::memcmp(got.data(), want.data(), n * sizeof(float)))
            << "offset=" << offset << " n=" << n;
        // Sanity: a probability distribution.
        float sum = 0.0f;
        for (float p : got) {
          EXPECT_GE(p, 0.0f);
          sum += p;
        }
        EXPECT_NEAR(sum, 1.0f, 1e-4f);
      }
    }
  }
}

TEST(SimdDispatchTest, ScalarAlwaysAvailableAndDetectionConsistent) {
  EXPECT_EQ(ScalarKernels().isa, KernelIsa::kScalar);
  const KernelIsa best = DetectBestIsa();
  const KernelTable* table = KernelsForIsa(best);
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->isa, best);
  // Active() is one of the usable tables and reports a stable name.
  EXPECT_NE(KernelsForIsa(Active().isa), nullptr);
  EXPECT_STREQ(ActiveIsaName(), KernelIsaName(Active().isa));
}

TEST(SimdDispatchTest, ParseKernelIsaRoundTrips) {
  for (KernelIsa isa : {KernelIsa::kScalar, KernelIsa::kAvx2,
                        KernelIsa::kAvx512, KernelIsa::kNeon}) {
    KernelIsa parsed;
    ASSERT_TRUE(ParseKernelIsa(KernelIsaName(isa), &parsed));
    EXPECT_EQ(parsed, isa);
  }
  KernelIsa parsed;
  EXPECT_FALSE(ParseKernelIsa("sse9", &parsed));
  EXPECT_FALSE(ParseKernelIsa(nullptr, &parsed));
}

TEST(SimdDispatchTest, EnvOverrideRoundTripsThroughActiveIsa) {
  // The PKGM_KERNEL contract: when the env var names a usable ISA, the
  // process-wide Active() table must be exactly that ISA. The CI scalar
  // matrix leg runs the whole suite with PKGM_KERNEL=scalar, making this
  // a real round-trip assertion of the override path.
  const char* env = std::getenv("PKGM_KERNEL");
  if (env == nullptr || *env == '\0') {
    GTEST_SKIP() << "PKGM_KERNEL not set; override path not exercised";
  }
  KernelIsa requested;
  if (!ParseKernelIsa(env, &requested) ||
      KernelsForIsa(requested) == nullptr) {
    GTEST_SKIP() << "PKGM_KERNEL=" << env << " not usable on this machine";
  }
  EXPECT_EQ(Active().isa, requested);
  EXPECT_STREQ(ActiveIsaName(), env);
}

}  // namespace
}  // namespace pkgm::simd
