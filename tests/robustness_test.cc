// Failure-injection and edge-case tests across modules: corrupt/truncated
// checkpoints, degenerate datasets and stores, masked-attention gradient
// correctness, optimizer weight decay, and cross-scorer service identities.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/link_prediction.h"
#include "core/pkgm_model.h"
#include "core/service.h"
#include "data/classification_dataset.h"
#include "kg/etl.h"
#include "kg/split.h"
#include "kg/synthetic_pkg.h"
#include "nn/grad_check.h"
#include "nn/optimizer.h"
#include "nn/transformer.h"
#include "tensor/init.h"
#include "text/title_generator.h"

namespace pkgm {
namespace {

// ------------------------------------------------- checkpoint corruption --

core::PkgmModelOptions TinyModel() {
  core::PkgmModelOptions opt;
  opt.num_entities = 6;
  opt.num_relations = 2;
  opt.dim = 4;
  return opt;
}

TEST(CheckpointRobustness, TruncatedFileIsCorruption) {
  core::PkgmModel model(TinyModel());
  const std::string path = ::testing::TempDir() + "/trunc.bin";
  ASSERT_TRUE(model.SaveToFile(path).ok());
  // Truncate to half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);

  auto loaded = core::PkgmModel::LoadFromFile(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(CheckpointRobustness, TruncatedMidHeaderIsCorruption) {
  core::PkgmModel model(TinyModel());
  const std::string path = ::testing::TempDir() + "/trunc_hdr.bin";
  ASSERT_TRUE(model.SaveToFile(path).ok());
  ASSERT_EQ(truncate(path.c_str(), 9), 0);  // shorter than the header

  auto loaded = core::PkgmModel::LoadFromFile(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(CheckpointRobustness, GarbageHeaderCountsRejectedWithoutAllocating) {
  // A header advertising billions of rows must come back as a clean
  // Corruption status (the size check fires before any table allocation),
  // not an OOM or a crash.
  core::PkgmModel model(TinyModel());
  const std::string path = ::testing::TempDir() + "/garbage.bin";
  ASSERT_TRUE(model.SaveToFile(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  uint32_t huge = 0xFFFFFFFEu;
  std::fseek(f, 2 * 4, SEEK_SET);  // num_entities field
  std::fwrite(&huge, sizeof(huge), 1, f);
  std::fclose(f);

  auto loaded = core::PkgmModel::LoadFromFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(CheckpointRobustness, TrailingGarbageRejected) {
  core::PkgmModel model(TinyModel());
  const std::string path = ::testing::TempDir() + "/tail.bin";
  ASSERT_TRUE(model.SaveToFile(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const char junk[16] = {0};
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);

  auto loaded = core::PkgmModel::LoadFromFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(CheckpointRobustness, WrongVersionRejected) {
  core::PkgmModel model(TinyModel());
  const std::string path = ::testing::TempDir() + "/ver.bin";
  ASSERT_TRUE(model.SaveToFile(path).ok());
  // Patch the version word (offset 4) to 999.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  uint32_t bogus = 999;
  std::fseek(f, 4, SEEK_SET);
  std::fwrite(&bogus, sizeof(bogus), 1, f);
  std::fclose(f);

  auto loaded = core::PkgmModel::LoadFromFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(CheckpointRobustness, BogusScorerRejected) {
  core::PkgmModel model(TinyModel());
  const std::string path = ::testing::TempDir() + "/scorer.bin";
  ASSERT_TRUE(model.SaveToFile(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  uint32_t bogus = 42;  // not a TripleScorerKind
  std::fseek(f, 6 * 4, SEEK_SET);
  std::fwrite(&bogus, sizeof(bogus), 1, f);
  std::fclose(f);

  auto loaded = core::PkgmModel::LoadFromFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(CheckpointRobustness, SaveToUnwritablePathFails) {
  core::PkgmModel model(TinyModel());
  Status s = model.SaveToFile("/nonexistent-dir/x/y.bin");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

// ------------------------------------------------------- degenerate data --

TEST(DegenerateData, EtlOnEmptyStore) {
  kg::TripleStore empty;
  kg::EtlStats stats;
  kg::TripleStore out = kg::FilterByRelationFrequency(empty, 4, 10, &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.input_triples, 0u);
  EXPECT_EQ(stats.dropped_relations, 0u);
}

TEST(DegenerateData, SplitAllToTrain) {
  kg::TripleStore s;
  for (uint32_t i = 0; i < 10; ++i) s.Add(i, 0, i + 100);
  Rng rng(1);
  kg::TripleSplit split = kg::SplitTriples(s, 1.0, 0.0, &rng);
  EXPECT_EQ(split.train.size(), 10u);
  EXPECT_TRUE(split.valid.empty());
  EXPECT_TRUE(split.test.empty());
}

TEST(DegenerateData, SingleCategoryGeneratorWorks) {
  kg::SyntheticPkgOptions opt;
  opt.seed = 3;
  opt.num_categories = 1;
  opt.items_per_category = 20;
  opt.properties_per_category = 4;
  opt.shared_property_pool = 4;
  opt.values_per_property = 5;
  opt.products_per_category = 4;
  opt.identity_properties = 2;
  opt.etl_min_occurrence = 1;
  kg::SyntheticPkg pkg = kg::SyntheticPkgGenerator(opt).Generate();
  EXPECT_EQ(pkg.num_categories, 1u);
  EXPECT_GE(pkg.items.size(), 20u);
  EXPECT_FALSE(pkg.observed.empty());
}

TEST(DegenerateData, FullFillRateLeavesNothingHeldOut) {
  kg::SyntheticPkgOptions opt;
  opt.seed = 5;
  opt.num_categories = 2;
  opt.items_per_category = 15;
  opt.properties_per_category = 4;
  opt.values_per_property = 5;
  opt.products_per_category = 4;
  opt.identity_properties = 2;
  opt.observed_fill_rate = 1.0;
  opt.noise_properties = 0;
  opt.etl_min_occurrence = 1;
  kg::SyntheticPkg pkg = kg::SyntheticPkgGenerator(opt).Generate();
  EXPECT_TRUE(pkg.held_out.empty());
}

TEST(DegenerateData, ClassificationFromTinyPkg) {
  kg::SyntheticPkgOptions opt;
  opt.seed = 7;
  opt.num_categories = 2;
  opt.items_per_category = 10;
  opt.properties_per_category = 3;
  opt.values_per_property = 4;
  opt.products_per_category = 3;
  opt.identity_properties = 1;
  opt.etl_min_occurrence = 1;
  kg::SyntheticPkg pkg = kg::SyntheticPkgGenerator(opt).Generate();
  text::TitleGenerator titles(&pkg, text::TitleGeneratorOptions{});
  data::ClassificationDatasetOptions copt;
  copt.max_per_category = 5;
  data::ClassificationDataset ds =
      BuildClassificationDataset(pkg, titles, copt);
  EXPECT_GT(ds.train.size() + ds.test.size() + ds.dev.size(), 0u);
}

// ------------------------------------------- masked attention correctness --

// The valid_len mask must hold through backward too: gradients flowing to
// embeddings must be identical whether or not garbage sits past valid_len.
TEST(MaskedAttention, BackwardIgnoresPaddedKeys) {
  Rng rng(11);
  nn::TransformerEncoderLayer layer(8, 2, 16, &rng, "m");
  Mat x1(5, 8), dy(5, 8);
  UniformInit(x1.size(), -1, 1, &rng, x1.data());
  UniformInit(dy.size(), -1, 1, &rng, dy.data());
  // Zero the gradient rows of padded queries: only valid tokens get loss.
  for (size_t j = 0; j < 8; ++j) {
    dy(3, j) = 0;
    dy(4, j) = 0;
  }

  Mat x2 = x1;
  for (size_t j = 0; j < 8; ++j) x2(4, j) += 3.0f;  // corrupt padding

  Mat y1, dx1;
  layer.Forward(x1, 3, &y1);
  layer.Backward(x1, dy, &dx1);
  Mat y2, dx2;
  layer.Forward(x2, 3, &y2);
  layer.Backward(x2, dy, &dx2);

  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 8; ++j) {
      EXPECT_FLOAT_EQ(y1(i, j), y2(i, j)) << i << "," << j;
      EXPECT_FLOAT_EQ(dx1(i, j), dx2(i, j)) << i << "," << j;
    }
  }
}

// ------------------------------------------------------ optimizer extras --

TEST(OptimizerExtras, SgdWeightDecayShrinksWeights) {
  nn::Parameter p("p", 1, 1);
  p.value(0, 0) = 1.0f;
  nn::SgdOptimizer opt({&p}, 0.1f, /*weight_decay=*/0.5f);
  // Zero gradient: only decay acts. w -= lr * wd * w.
  opt.Step();
  EXPECT_NEAR(p.value(0, 0), 1.0f - 0.1f * 0.5f, 1e-6);
}

TEST(OptimizerExtras, AdamDecoupledWeightDecay) {
  nn::Parameter p("p", 1, 1);
  p.value(0, 0) = 2.0f;
  nn::AdamOptimizer::Options cfg;
  cfg.lr = 0.1f;
  cfg.weight_decay = 0.5f;
  nn::AdamOptimizer opt({&p}, cfg);
  opt.Step();  // zero grad -> only the decoupled decay term
  EXPECT_NEAR(p.value(0, 0), 2.0f - 0.1f * 0.5f * 2.0f, 1e-5);
}

// -------------------------------------- service identities across scorers --

class ServiceScorerSweep
    : public ::testing::TestWithParam<core::TripleScorerKind> {};

TEST_P(ServiceScorerSweep, CondensedEqualsMeanOfSequence) {
  core::PkgmModelOptions opt;
  opt.num_entities = 12;
  opt.num_relations = 5;
  opt.dim = 8;
  opt.scorer = GetParam();
  core::PkgmModel model(opt);
  core::ServiceVectorProvider provider(&model, {3, 7},
                                       {{0, 1, 4}, {2, 3}});
  for (uint32_t item : {0u, 1u}) {
    auto seq = provider.Sequence(item, core::ServiceMode::kAll);
    Vec cond = provider.Condensed(item, core::ServiceMode::kAll);
    const uint32_t k = provider.NumKeyRelations(item);
    const uint32_t d = model.dim();
    for (uint32_t j = 0; j < d; ++j) {
      float mean_t = 0, mean_r = 0;
      for (uint32_t i = 0; i < k; ++i) {
        mean_t += seq[i][j];
        mean_r += seq[k + i][j];
      }
      EXPECT_NEAR(cond[j], mean_t / k, 1e-5);
      EXPECT_NEAR(cond[d + j], mean_r / k, 1e-5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scorers, ServiceScorerSweep,
                         ::testing::Values(core::TripleScorerKind::kTransE,
                                           core::TripleScorerKind::kDistMult,
                                           core::TripleScorerKind::kComplEx,
                                           core::TripleScorerKind::kTransH));

// ---------------------------------------------- link prediction edge cases --

TEST(LinkPredictionEdge, EmptyTestSet) {
  core::PkgmModel model(TinyModel());
  kg::TripleStore known;
  core::LinkPredictionEvaluator::Options opt;
  opt.filtered = false;
  core::LinkPredictionEvaluator eval(&model, &known, opt);
  auto result = eval.EvaluateTails({});
  EXPECT_EQ(result.count, 0u);
  EXPECT_DOUBLE_EQ(result.mrr, 0.0);
}

TEST(LinkPredictionEdge, SingleCandidateAlwaysRankOne) {
  core::PkgmModel model(TinyModel());
  kg::TripleStore known;
  core::LinkPredictionEvaluator::Options opt;
  opt.filtered = false;
  core::LinkPredictionEvaluator eval(&model, &known, opt);
  std::unordered_map<kg::RelationId, std::vector<kg::EntityId>> candidates;
  candidates[0] = {3};
  auto result = eval.EvaluateTails({{0, 0, 3}}, &candidates);
  EXPECT_DOUBLE_EQ(result.mrr, 1.0);
}

}  // namespace
}  // namespace pkgm
