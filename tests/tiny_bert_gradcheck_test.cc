// End-to-end finite-difference verification of TinyBert: gradients of a
// scalar loss on the [CLS] output are checked against central differences
// for EVERY parameter of the model — token/position/segment embeddings,
// the embedding LayerNorm, and all transformer-block parameters — with a
// service vector injected mid-sequence, so the injection path (fixed
// vector, no token-table gradient) is exercised too.

#include <gtest/gtest.h>

#include "nn/grad_check.h"
#include "nn/parameter.h"
#include "tensor/init.h"
#include "text/tiny_bert.h"
#include "text/tokenizer.h"

namespace pkgm::text {
namespace {

TEST(TinyBertGradCheck, AllParametersMatchFiniteDifference) {
  TinyBertConfig cfg;
  cfg.vocab_size = 20;
  cfg.dim = 8;
  cfg.layers = 1;
  cfg.heads = 2;
  cfg.ff_dim = 16;
  cfg.max_len = 8;
  cfg.seed = 3;
  TinyBert bert(cfg);

  EncodedInput input;
  input.token_ids = {kClsId, 7, 9, kPadId, kSepId};
  input.segment_ids = {0, 0, 1, 1, 1};
  input.valid_len = 5;
  // Injected service vector replacing token 3's embedding.
  Rng rng(11);
  Vec service(cfg.dim);
  UniformInit(cfg.dim, -0.5f, 0.5f, &rng, service.data());
  input.injected.emplace_back(3, service);

  // Fixed loss coefficients over the CLS vector.
  Vec coeff(cfg.dim);
  UniformInit(cfg.dim, -1.0f, 1.0f, &rng, coeff.data());

  auto loss = [&] {
    Vec cls;
    bert.EncodeCls(input, &cls);
    double acc = 0;
    for (uint32_t j = 0; j < cfg.dim; ++j) {
      acc += static_cast<double>(cls[j]) * coeff[j];
    }
    return acc;
  };

  // One forward + backward to populate analytic gradients.
  std::vector<nn::Parameter*> params = bert.Params();
  nn::ZeroAllGrads(params);
  loss();
  bert.BackwardFromCls(input, coeff);

  for (nn::Parameter* p : params) {
    // Token-table rows for absent ids have zero grads and zero numeric
    // grads, so checking the full tables is safe, but subsample large ones
    // to keep the test quick.
    const size_t stride = p->size() > 64 ? 7 : 1;
    auto result = nn::CheckParameterGradient(p, loss, 1e-3, stride);
    EXPECT_LT(result.max_rel_error, 3e-2) << p->name;
    EXPECT_GT(result.checked, 0u) << p->name;
  }
}

TEST(TinyBertGradCheck, SequenceBackwardMatchesFiniteDifference) {
  TinyBertConfig cfg;
  cfg.vocab_size = 16;
  cfg.dim = 8;
  cfg.layers = 1;
  cfg.heads = 2;
  cfg.ff_dim = 16;
  cfg.max_len = 6;
  cfg.seed = 5;
  TinyBert bert(cfg);

  EncodedInput input;
  input.token_ids = {kClsId, 6, 7, kSepId};
  input.valid_len = 4;

  Rng rng(13);
  Mat coeff(4, cfg.dim);
  UniformInit(coeff.size(), -1.0f, 1.0f, &rng, coeff.data());

  auto loss = [&] {
    Mat seq;
    bert.EncodeSequence(input, &seq);
    double acc = 0;
    for (size_t i = 0; i < seq.size(); ++i) {
      acc += static_cast<double>(seq.data()[i]) * coeff.data()[i];
    }
    return acc;
  };

  std::vector<nn::Parameter*> params = bert.Params();
  nn::ZeroAllGrads(params);
  loss();
  bert.BackwardSequence(input, coeff);

  for (nn::Parameter* p : params) {
    const size_t stride = p->size() > 64 ? 5 : 1;
    auto result = nn::CheckParameterGradient(p, loss, 1e-3, stride);
    EXPECT_LT(result.max_rel_error, 3e-2) << p->name;
  }
}

}  // namespace
}  // namespace pkgm::text
