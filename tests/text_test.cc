#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "kg/synthetic_pkg.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "text/mlm.h"
#include "text/tiny_bert.h"
#include "text/title_generator.h"
#include "text/tokenizer.h"

namespace pkgm::text {
namespace {

// --------------------------------------------------------------- Tokenizer --

TEST(TokenizerTest, SpecialTokensPreRegistered) {
  Tokenizer tok;
  EXPECT_EQ(tok.TokenId("[PAD]"), kPadId);
  EXPECT_EQ(tok.TokenId("[CLS]"), kClsId);
  EXPECT_EQ(tok.TokenId("[SEP]"), kSepId);
  EXPECT_EQ(tok.TokenId("[UNK]"), kUnkId);
  EXPECT_EQ(tok.TokenId("[MASK]"), kMaskId);
  EXPECT_EQ(tok.vocab_size(), kNumSpecialTokens);
}

TEST(TokenizerTest, BuildsFrequencySortedVocab) {
  Tokenizer tok;
  tok.CountCorpusLine("red red red blue blue green");
  tok.BuildVocab(1);
  // "red" most frequent -> first non-special id.
  EXPECT_EQ(tok.TokenId("red"), kNumSpecialTokens);
  EXPECT_EQ(tok.TokenId("blue"), kNumSpecialTokens + 1);
  EXPECT_EQ(tok.TokenId("green"), kNumSpecialTokens + 2);
  EXPECT_EQ(tok.vocab_size(), kNumSpecialTokens + 3);
}

TEST(TokenizerTest, MinCountFilters) {
  Tokenizer tok;
  tok.CountCorpusLine("common common rare");
  tok.BuildVocab(2);
  EXPECT_NE(tok.TokenId("common"), kUnkId);
  EXPECT_EQ(tok.TokenId("rare"), kUnkId);
}

TEST(TokenizerTest, EncodeMapsUnknownToUnk) {
  Tokenizer tok;
  tok.CountCorpusLine("a b");
  tok.BuildVocab(1);
  auto ids = tok.Encode("a z b");
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[1], kUnkId);
  EXPECT_EQ(tok.TokenName(ids[0]), "a");
}

TEST(TokenizerTest, SingleInputLayout) {
  std::vector<uint32_t> tokens = {10, 11, 12};
  size_t valid = 0;
  auto ids = BuildSingleInput(tokens, 8, &valid);
  EXPECT_EQ(ids.size(), 8u);
  EXPECT_EQ(valid, 5u);  // CLS + 3 + SEP
  EXPECT_EQ(ids[0], kClsId);
  EXPECT_EQ(ids[4], kSepId);
  EXPECT_EQ(ids[5], kPadId);
}

TEST(TokenizerTest, SingleInputTruncates) {
  std::vector<uint32_t> tokens(20, 9);
  size_t valid = 0;
  auto ids = BuildSingleInput(tokens, 8, &valid);
  EXPECT_EQ(valid, 8u);  // fully used: CLS + 6 tokens + SEP
  EXPECT_EQ(ids[7], kSepId);
}

TEST(TokenizerTest, PairInputSegments) {
  std::vector<uint32_t> a = {10, 11}, b = {20};
  size_t valid = 0;
  std::vector<uint32_t> segs;
  auto ids = BuildPairInput(a, b, 12, &valid, &segs);
  EXPECT_EQ(valid, 6u);  // CLS a a SEP b SEP
  EXPECT_EQ(ids[0], kClsId);
  EXPECT_EQ(ids[3], kSepId);
  EXPECT_EQ(ids[4], 20u);
  EXPECT_EQ(ids[5], kSepId);
  EXPECT_EQ(segs[0], 0u);
  EXPECT_EQ(segs[3], 0u);
  EXPECT_EQ(segs[4], 1u);
  EXPECT_EQ(segs[5], 1u);
}

TEST(TokenizerTest, PairInputTruncatesEachSide) {
  std::vector<uint32_t> a(50, 7), b(50, 8);
  size_t valid = 0;
  std::vector<uint32_t> segs;
  auto ids = BuildPairInput(a, b, 21, &valid, &segs);
  // per side = (21-3)/2 = 9 tokens each.
  EXPECT_EQ(valid, 21u);
  EXPECT_EQ(ids.size(), 21u);
}

// ---------------------------------------------------------- TitleGenerator --

kg::SyntheticPkg MakePkg() {
  kg::SyntheticPkgOptions opt;
  opt.seed = 5;
  opt.num_categories = 3;
  opt.items_per_category = 30;
  opt.properties_per_category = 5;
  opt.shared_property_pool = 6;
  opt.values_per_property = 8;
  opt.products_per_category = 6;
  opt.identity_properties = 2;
  opt.etl_min_occurrence = 2;
  return kg::SyntheticPkgGenerator(opt).Generate();
}

TEST(TitleGeneratorTest, MentionsAttributeValues) {
  kg::SyntheticPkg pkg = MakePkg();
  TitleGeneratorOptions opt;
  opt.attribute_mention_prob = 1.0;
  opt.synonym_prob = 0.0;
  TitleGenerator gen(&pkg, opt);
  Rng rng(7);
  std::string title = gen.Generate(0, &rng);
  for (const auto& [rel, value] : pkg.items[0].attributes) {
    EXPECT_NE(title.find(pkg.entities.Name(value)), std::string::npos)
        << "missing " << pkg.entities.Name(value) << " in: " << title;
  }
}

TEST(TitleGeneratorTest, DifferentCallsDiffer) {
  kg::SyntheticPkg pkg = MakePkg();
  TitleGenerator gen(&pkg, TitleGeneratorOptions{});
  Rng rng(11);
  std::set<std::string> titles;
  for (int i = 0; i < 10; ++i) titles.insert(gen.Generate(0, &rng));
  EXPECT_GT(titles.size(), 5u) << "titles should vary across calls";
}

TEST(TitleGeneratorTest, DeterministicGivenRngState) {
  kg::SyntheticPkg pkg = MakePkg();
  TitleGenerator gen(&pkg, TitleGeneratorOptions{});
  Rng a(13), b(13);
  EXPECT_EQ(gen.Generate(3, &a), gen.Generate(3, &b));
}

// ----------------------------------------------------------------- TinyBert --

TinyBertConfig SmallBert(uint32_t vocab = 50) {
  TinyBertConfig cfg;
  cfg.vocab_size = vocab;
  cfg.dim = 16;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.ff_dim = 32;
  cfg.max_len = 16;
  cfg.seed = 17;
  return cfg;
}

EncodedInput SimpleInput(std::vector<uint32_t> ids) {
  EncodedInput in;
  in.valid_len = ids.size();
  in.token_ids = std::move(ids);
  return in;
}

TEST(TinyBertTest, ClsShapeAndDeterminism) {
  TinyBert bert(SmallBert());
  EncodedInput in = SimpleInput({kClsId, 10, 11, kSepId});
  Vec cls1, cls2;
  bert.EncodeCls(in, &cls1);
  bert.EncodeCls(in, &cls2);
  ASSERT_EQ(cls1.size(), 16u);
  for (size_t j = 0; j < cls1.size(); ++j) EXPECT_FLOAT_EQ(cls1[j], cls2[j]);
}

TEST(TinyBertTest, DifferentInputsGiveDifferentCls) {
  TinyBert bert(SmallBert());
  Vec a, b;
  bert.EncodeCls(SimpleInput({kClsId, 10, kSepId}), &a);
  bert.EncodeCls(SimpleInput({kClsId, 11, kSepId}), &b);
  float diff = 0;
  for (size_t j = 0; j < a.size(); ++j) diff += std::fabs(a[j] - b[j]);
  EXPECT_GT(diff, 1e-4f);
}

TEST(TinyBertTest, InjectedVectorChangesOutput) {
  TinyBert bert(SmallBert());
  EncodedInput plain = SimpleInput({kClsId, 10, kPadId, kSepId});
  Vec a;
  bert.EncodeCls(plain, &a);

  EncodedInput injected = plain;
  Vec service(16, 0.5f);
  injected.injected.emplace_back(2, service);
  Vec b;
  bert.EncodeCls(injected, &b);
  float diff = 0;
  for (size_t j = 0; j < a.size(); ++j) diff += std::fabs(a[j] - b[j]);
  EXPECT_GT(diff, 1e-4f);
}

TEST(TinyBertTest, InjectedPositionGetsNoTokenGradient) {
  TinyBert bert(SmallBert());
  EncodedInput in = SimpleInput({kClsId, 10, 20, kSepId});
  Vec service(16, 0.3f);
  in.injected.emplace_back(2, service);  // token 20's slot is replaced

  Vec cls;
  bert.EncodeCls(in, &cls);
  Vec dcls(16, 1.0f);
  bert.BackwardFromCls(in, dcls);

  auto& tok_grad = bert.token_embedding().table().grad;
  float g20 = 0, g10 = 0;
  for (size_t j = 0; j < 16; ++j) {
    g20 += std::fabs(tok_grad(20, j));
    g10 += std::fabs(tok_grad(10, j));
  }
  EXPECT_FLOAT_EQ(g20, 0.0f) << "injected slot must stay fixed";
  EXPECT_GT(g10, 0.0f) << "ordinary token must receive gradient";
}

TEST(TinyBertTest, TrainsToSeparateTwoClasses) {
  // Tiny supervised sanity check: token 10 => class 0, token 11 => class 1.
  TinyBert bert(SmallBert());
  Rng rng(19);
  nn::Linear head(16, 2, &rng, "head");
  std::vector<nn::Parameter*> params = bert.Params();
  head.Params(&params);
  nn::AdamOptimizer::Options adam;
  adam.lr = 5e-3f;
  nn::AdamOptimizer opt(params, adam);

  auto train_sample = [&](uint32_t token, uint32_t label) {
    EncodedInput in = SimpleInput({kClsId, token, kSepId});
    Vec cls;
    bert.EncodeCls(in, &cls);
    Mat cls_mat(1, 16);
    for (size_t j = 0; j < 16; ++j) cls_mat(0, j) = cls[j];
    Mat logits;
    head.Forward(cls_mat, &logits);
    Mat dlogits;
    float loss = nn::SoftmaxCrossEntropy(logits, {label}, &dlogits);
    Mat dcls_mat;
    head.Backward(cls_mat, dlogits, &dcls_mat);
    Vec dcls(16);
    for (size_t j = 0; j < 16; ++j) dcls[j] = dcls_mat(0, j);
    bert.BackwardFromCls(in, dcls);
    opt.Step();
    return loss;
  };

  float first = 0, last = 0;
  for (int step = 0; step < 60; ++step) {
    float l = train_sample(10, 0) + train_sample(11, 1);
    if (step == 0) first = l;
    last = l;
  }
  EXPECT_LT(last, first * 0.5f);
}

// --------------------------------------------------------------------- MLM --

TEST(MlmTest, LossDecreasesOverEpochs) {
  TinyBert bert(SmallBert(30));
  std::vector<EncodedInput> corpus;
  Rng rng(23);
  for (int i = 0; i < 30; ++i) {
    // Simple bigram-ish corpus: token pairs (k, k+1).
    uint32_t k = 5 + static_cast<uint32_t>(rng.Uniform(20));
    corpus.push_back(SimpleInput({kClsId, k, static_cast<uint32_t>(k + 1) % 30,
                                  k, kSepId}));
  }
  MlmOptions opt;
  opt.epochs = 1;
  opt.learning_rate = 3e-3f;
  MlmPretrainer pretrainer(&bert, opt);
  float first = pretrainer.Pretrain(corpus);
  float later = 0;
  for (int e = 0; e < 4; ++e) later = pretrainer.Pretrain(corpus);
  EXPECT_LT(later, first);
}

TEST(MlmTest, StepSkipsWhenNothingSelectable) {
  TinyBert bert(SmallBert());
  MlmOptions opt;
  MlmPretrainer pretrainer(&bert, opt);
  Rng rng(29);
  // Only special tokens: nothing can be masked.
  EncodedInput in = SimpleInput({kClsId, kSepId});
  EXPECT_FLOAT_EQ(pretrainer.Step(in, &rng), 0.0f);
}

}  // namespace
}  // namespace pkgm::text
