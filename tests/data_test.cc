#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "data/alignment_dataset.h"
#include "data/classification_dataset.h"
#include "data/interaction_dataset.h"
#include "kg/synthetic_pkg.h"
#include "text/title_generator.h"

namespace pkgm::data {
namespace {

kg::SyntheticPkg MakePkg(uint64_t seed = 9) {
  kg::SyntheticPkgOptions opt;
  opt.seed = seed;
  opt.num_categories = 4;
  opt.items_per_category = 60;
  opt.properties_per_category = 5;
  opt.shared_property_pool = 6;
  opt.values_per_property = 6;
  opt.products_per_category = 8;
  opt.identity_properties = 2;
  opt.etl_min_occurrence = 2;
  return kg::SyntheticPkgGenerator(opt).Generate();
}

// ------------------------------------------------------- Classification --

TEST(ClassificationDatasetTest, RespectsPerCategoryCap) {
  kg::SyntheticPkg pkg = MakePkg();
  text::TitleGenerator titles(&pkg, text::TitleGeneratorOptions{});
  ClassificationDatasetOptions opt;
  opt.max_per_category = 20;
  ClassificationDataset ds = BuildClassificationDataset(pkg, titles, opt);

  std::unordered_map<uint32_t, int> per_class;
  auto count = [&](const std::vector<ClassificationSample>& v) {
    for (const auto& s : v) ++per_class[s.label];
  };
  count(ds.train);
  count(ds.test);
  count(ds.dev);
  for (const auto& [label, n] : per_class) {
    EXPECT_LE(n, 20);
  }
  EXPECT_EQ(ds.num_classes, pkg.num_categories);
}

TEST(ClassificationDatasetTest, SplitFractions) {
  kg::SyntheticPkg pkg = MakePkg();
  text::TitleGenerator titles(&pkg, text::TitleGeneratorOptions{});
  ClassificationDatasetOptions opt;
  opt.train_fraction = 0.6;
  opt.test_fraction = 0.2;
  ClassificationDataset ds = BuildClassificationDataset(pkg, titles, opt);
  const double total =
      static_cast<double>(ds.train.size() + ds.test.size() + ds.dev.size());
  ASSERT_GT(total, 0);
  EXPECT_NEAR(ds.train.size() / total, 0.6, 0.02);
  EXPECT_NEAR(ds.test.size() / total, 0.2, 0.02);
}

TEST(ClassificationDatasetTest, LabelsMatchItemCategories) {
  kg::SyntheticPkg pkg = MakePkg();
  text::TitleGenerator titles(&pkg, text::TitleGeneratorOptions{});
  ClassificationDataset ds =
      BuildClassificationDataset(pkg, titles, ClassificationDatasetOptions{});
  for (const auto& s : ds.train) {
    EXPECT_EQ(s.label, pkg.items[s.item_index].category);
    EXPECT_FALSE(s.title.empty());
  }
}

TEST(ClassificationDatasetTest, DeterministicGivenSeed) {
  kg::SyntheticPkg pkg = MakePkg();
  text::TitleGenerator titles(&pkg, text::TitleGeneratorOptions{});
  ClassificationDatasetOptions opt;
  ClassificationDataset a = BuildClassificationDataset(pkg, titles, opt);
  ClassificationDataset b = BuildClassificationDataset(pkg, titles, opt);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].item_index, b.train[i].item_index);
    EXPECT_EQ(a.train[i].title, b.train[i].title);
  }
}

// ------------------------------------------------------------ Alignment --

TEST(AlignmentDatasetTest, LabelsAreConsistentWithProducts) {
  kg::SyntheticPkg pkg = MakePkg();
  text::TitleGenerator titles(&pkg, text::TitleGeneratorOptions{});
  AlignmentDatasetOptions opt;
  opt.pairs_per_category = 200;
  opt.ranking_cases = 5;
  opt.ranking_negatives = 9;
  auto datasets = BuildAlignmentDatasets(pkg, titles, {0, 1}, opt);
  ASSERT_FALSE(datasets.empty());
  for (const auto& ds : datasets) {
    for (const auto& p : ds.train) {
      const bool same =
          pkg.items[p.item_a].product == pkg.items[p.item_b].product;
      EXPECT_EQ(p.label > 0.5f, same);
      EXPECT_EQ(pkg.items[p.item_a].category, ds.category);
      EXPECT_EQ(pkg.items[p.item_b].category, ds.category);
    }
  }
}

TEST(AlignmentDatasetTest, BalancedLabels) {
  kg::SyntheticPkg pkg = MakePkg();
  text::TitleGenerator titles(&pkg, text::TitleGeneratorOptions{});
  AlignmentDatasetOptions opt;
  opt.pairs_per_category = 400;
  opt.ranking_cases = 2;
  auto datasets = BuildAlignmentDatasets(pkg, titles, {0}, opt);
  ASSERT_EQ(datasets.size(), 1u);
  int pos = 0, total = 0;
  for (const auto& p : datasets[0].train) {
    pos += p.label > 0.5f;
    ++total;
  }
  EXPECT_NEAR(pos / static_cast<double>(total), 0.5, 0.1);
}

TEST(AlignmentDatasetTest, RankingCasesHaveCorrectShape) {
  kg::SyntheticPkg pkg = MakePkg();
  text::TitleGenerator titles(&pkg, text::TitleGeneratorOptions{});
  AlignmentDatasetOptions opt;
  opt.pairs_per_category = 100;
  opt.ranking_cases = 7;
  opt.ranking_negatives = 19;
  auto datasets = BuildAlignmentDatasets(pkg, titles, {2}, opt);
  ASSERT_EQ(datasets.size(), 1u);
  EXPECT_EQ(datasets[0].test_r.size(), 7u);
  for (const auto& rc : datasets[0].test_r) {
    EXPECT_FLOAT_EQ(rc.positive.label, 1.0f);
    EXPECT_EQ(rc.negatives.size(), 19u);
    for (const auto& neg : rc.negatives) {
      EXPECT_FLOAT_EQ(neg.label, 0.0f);
      EXPECT_EQ(neg.item_a, rc.positive.item_a)
          << "negatives keep the anchor item";
    }
  }
}

TEST(AlignmentDatasetTest, SplitSizes) {
  kg::SyntheticPkg pkg = MakePkg();
  text::TitleGenerator titles(&pkg, text::TitleGeneratorOptions{});
  AlignmentDatasetOptions opt;
  opt.pairs_per_category = 200;
  opt.train_fraction = 0.7;
  opt.test_fraction = 0.15;
  opt.ranking_cases = 2;
  auto datasets = BuildAlignmentDatasets(pkg, titles, {0}, opt);
  ASSERT_EQ(datasets.size(), 1u);
  EXPECT_EQ(datasets[0].train.size(), 140u);
  EXPECT_EQ(datasets[0].test_c.size(), 30u);
  EXPECT_EQ(datasets[0].dev_c.size(), 30u);
}

// ----------------------------------------------------------- Interaction --

TEST(InteractionDatasetTest, EveryUserMeetsMinimumAndHoldouts) {
  kg::SyntheticPkg pkg = MakePkg();
  InteractionDatasetOptions opt;
  opt.num_users = 40;
  opt.min_interactions_per_user = 8;
  opt.max_interactions_per_user = 15;
  InteractionDataset ds = BuildInteractionDataset(pkg, opt);
  EXPECT_EQ(ds.num_users, 40u);
  EXPECT_EQ(ds.num_items, pkg.items.size());
  for (uint32_t u = 0; u < ds.num_users; ++u) {
    // train + test + valid >= minimum.
    EXPECT_GE(ds.train[u].size() + 2, 8u);
    EXPECT_LT(ds.test[u], ds.num_items);
    EXPECT_LT(ds.valid[u], ds.num_items);
    // Held-out items are not in train.
    for (uint32_t item : ds.train[u]) {
      EXPECT_NE(item, ds.test[u]);
      EXPECT_NE(item, ds.valid[u]);
    }
    // No duplicates in train.
    std::set<uint32_t> unique(ds.train[u].begin(), ds.train[u].end());
    EXPECT_EQ(unique.size(), ds.train[u].size());
  }
  EXPECT_GT(ds.total_interactions, 40u * 8u - 1);
}

TEST(InteractionDatasetTest, PreferenceSkewsTowardAttributeOverlap) {
  // With strong preference, users' train items should share attribute
  // values more than random items would.
  kg::SyntheticPkg pkg = MakePkg();
  InteractionDatasetOptions opt;
  opt.num_users = 30;
  opt.preference_strength = 5.0;
  InteractionDataset ds = BuildInteractionDataset(pkg, opt);

  // Measure within-user attribute-value overlap vs global baseline.
  auto value_set = [&](uint32_t item) {
    std::set<kg::EntityId> s;
    for (const auto& [rel, v] : pkg.items[item].attributes) s.insert(v);
    return s;
  };
  double within = 0;
  int pairs = 0;
  for (uint32_t u = 0; u < ds.num_users; ++u) {
    const auto& items = ds.train[u];
    for (size_t i = 0; i + 1 < items.size() && i < 5; ++i) {
      auto a = value_set(items[i]);
      auto b = value_set(items[i + 1]);
      int common = 0;
      for (auto v : a) common += b.count(v);
      within += common;
      ++pairs;
    }
  }
  within /= pairs;

  Rng rng(3);
  double baseline = 0;
  for (int i = 0; i < 200; ++i) {
    auto a = value_set(static_cast<uint32_t>(rng.Uniform(pkg.items.size())));
    auto b = value_set(static_cast<uint32_t>(rng.Uniform(pkg.items.size())));
    int common = 0;
    for (auto v : a) common += b.count(v);
    baseline += common;
  }
  baseline /= 200;
  EXPECT_GT(within, baseline) << "interactions must correlate with attributes";
}

TEST(InteractionDatasetTest, Deterministic) {
  kg::SyntheticPkg pkg = MakePkg();
  InteractionDatasetOptions opt;
  opt.num_users = 10;
  InteractionDataset a = BuildInteractionDataset(pkg, opt);
  InteractionDataset b = BuildInteractionDataset(pkg, opt);
  EXPECT_EQ(a.total_interactions, b.total_interactions);
  for (uint32_t u = 0; u < 10; ++u) {
    EXPECT_EQ(a.train[u], b.train[u]);
    EXPECT_EQ(a.test[u], b.test[u]);
  }
}

}  // namespace
}  // namespace pkgm::data
