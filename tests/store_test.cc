// Tests for the memory-mapped embedding store tier (src/store/): .pkgs
// format round-trips, int8 quantization error bounds, corrupt-file
// rejection, and zero-downtime ModelRegistry hot-swap under concurrent
// serving load.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/pkgm_model.h"
#include "core/service.h"
#include "core/service_math.h"
#include "serve/knowledge_server.h"
#include "store/embedding_store_writer.h"
#include "store/mmap_embedding_store.h"
#include "store/model_registry.h"
#include "store/store_format.h"
#include "util/status.h"

namespace pkgm {
namespace {

core::PkgmModelOptions SmallOptions(uint64_t seed = 11) {
  core::PkgmModelOptions opt;
  opt.num_entities = 12;
  opt.num_relations = 5;
  opt.dim = 8;
  opt.seed = seed;
  return opt;
}

struct ProviderSpec {
  std::vector<kg::EntityId> items;
  std::vector<std::vector<kg::RelationId>> key_relations;
};

ProviderSpec SmallProviderSpec() {
  ProviderSpec spec;
  spec.items = {0, 3, 7, 11};
  spec.key_relations = {{0, 1, 2}, {1, 4}, {2}, {0, 1, 2, 3, 4}};
  return spec;
}

std::string TempStorePath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

double Cosine(const Vec& a, const Vec& b) {
  EXPECT_EQ(a.size(), b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na == 0.0 || nb == 0.0) return na == nb ? 1.0 : 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

// ----------------------------------------------------- fp32 round-trips --

TEST(StoreRoundTrip, Fp32TablesAreBitExact) {
  core::PkgmModel model(SmallOptions());
  const std::string path = TempStorePath("fp32_exact.pkgs");
  store::StoreWriterOptions wopt;
  wopt.generation = 42;
  ASSERT_TRUE(store::EmbeddingStoreWriter(wopt).Write(model, path).ok());

  auto opened = store::MmapEmbeddingStore::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  const store::MmapEmbeddingStore& s = opened.value();

  EXPECT_EQ(s.num_entities(), model.num_entities());
  EXPECT_EQ(s.num_relations(), model.num_relations());
  EXPECT_EQ(s.dim(), model.dim());
  EXPECT_EQ(s.scorer(), model.scorer());
  EXPECT_TRUE(s.has_relation_module());
  EXPECT_EQ(s.dtype(), store::StoreDtype::kFloat32);
  EXPECT_EQ(s.generation(), 42u);

  const uint32_t d = model.dim();
  std::vector<float> scratch(static_cast<size_t>(d) * d);
  for (uint32_t e = 0; e < model.num_entities(); ++e) {
    const float* row = s.EntityRow(e, scratch.data());
    EXPECT_EQ(std::memcmp(row, model.entity(e), d * sizeof(float)), 0);
  }
  for (uint32_t r = 0; r < model.num_relations(); ++r) {
    EXPECT_EQ(std::memcmp(s.RelationRow(r, scratch.data()), model.relation(r),
                          d * sizeof(float)),
              0);
    EXPECT_EQ(std::memcmp(s.TransferRow(r, scratch.data()), model.transfer(r),
                          static_cast<size_t>(d) * d * sizeof(float)),
              0);
  }
  std::remove(path.c_str());
}

TEST(StoreRoundTrip, Fp32ServiceVectorsMatchHeapModelBitForBit) {
  core::PkgmModel model(SmallOptions());
  const std::string path = TempStorePath("fp32_serve.pkgs");
  ASSERT_TRUE(store::EmbeddingStoreWriter().Write(model, path).ok());
  auto opened = store::MmapEmbeddingStore::Open(path);
  ASSERT_TRUE(opened.ok());

  ProviderSpec spec = SmallProviderSpec();
  core::ServiceVectorProvider heap(&model, spec.items, spec.key_relations);
  core::ServiceVectorProvider mapped(&opened.value(), spec.items,
                                     spec.key_relations);

  for (uint32_t item = 0; item < heap.num_items(); ++item) {
    for (core::ServiceMode mode :
         {core::ServiceMode::kTripleOnly, core::ServiceMode::kRelationOnly,
          core::ServiceMode::kAll}) {
      const Vec a = heap.Condensed(item, mode);
      const Vec b = mapped.Condensed(item, mode);
      ASSERT_EQ(a.size(), b.size());
      EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
      const auto sa = heap.Sequence(item, mode);
      const auto sb = mapped.Sequence(item, mode);
      ASSERT_EQ(sa.size(), sb.size());
      for (size_t v = 0; v < sa.size(); ++v) {
        EXPECT_EQ(std::memcmp(sa[v].data(), sb[v].data(),
                              sa[v].size() * sizeof(float)),
                  0);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(StoreRoundTrip, TransHStoreCarriesHyperplanes) {
  core::PkgmModelOptions opt = SmallOptions();
  opt.scorer = core::TripleScorerKind::kTransH;
  core::PkgmModel model(opt);
  const std::string path = TempStorePath("transh.pkgs");
  ASSERT_TRUE(store::EmbeddingStoreWriter().Write(model, path).ok());

  auto opened = store::MmapEmbeddingStore::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  const store::MmapEmbeddingStore& s = opened.value();
  EXPECT_EQ(s.scorer(), core::TripleScorerKind::kTransH);
  EXPECT_TRUE(s.header().has_hyperplanes());
  std::vector<float> scratch(model.dim());
  for (uint32_t r = 0; r < model.num_relations(); ++r) {
    EXPECT_EQ(std::memcmp(s.HyperplaneRow(r, scratch.data()),
                          model.hyperplane(r), model.dim() * sizeof(float)),
              0);
  }
  std::remove(path.c_str());
}

// -------------------------------------------------------- degenerate data --

TEST(StoreRoundTrip, NoRelationModuleStoreZeroFillsRelationServices) {
  core::PkgmModelOptions opt = SmallOptions();
  opt.use_relation_module = false;
  core::PkgmModel model(opt);
  const std::string path = TempStorePath("norel.pkgs");
  ASSERT_TRUE(store::EmbeddingStoreWriter().Write(model, path).ok());

  auto opened = store::MmapEmbeddingStore::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  const store::MmapEmbeddingStore& s = opened.value();
  EXPECT_FALSE(s.has_relation_module());
  EXPECT_EQ(s.header().transfer_offset, 0u);

  core::ServiceVectorProvider provider(&s, {0, 1}, {{0, 1}, {2}});
  const Vec all = provider.Condensed(0, core::ServiceMode::kAll);
  ASSERT_EQ(all.size(), 2 * model.dim());
  for (uint32_t i = model.dim(); i < 2 * model.dim(); ++i) {
    EXPECT_EQ(all[i], 0.0f) << "relation half must be zero without M_r";
  }
  std::remove(path.c_str());
}

TEST(StoreRoundTrip, EmptyKeyRelationItemServesZeroVector) {
  core::PkgmModel model(SmallOptions());
  const std::string path = TempStorePath("emptykeys.pkgs");
  ASSERT_TRUE(store::EmbeddingStoreWriter().Write(model, path).ok());
  auto opened = store::MmapEmbeddingStore::Open(path);
  ASSERT_TRUE(opened.ok());

  core::ServiceVectorProvider provider(&opened.value(), {0, 1}, {{}, {0}});
  EXPECT_TRUE(provider.Sequence(0, core::ServiceMode::kAll).empty());
  const Vec condensed = provider.Condensed(0, core::ServiceMode::kAll);
  ASSERT_EQ(condensed.size(), 2 * model.dim());
  for (size_t i = 0; i < condensed.size(); ++i) EXPECT_EQ(condensed[i], 0.0f);
  std::remove(path.c_str());
}

// -------------------------------------------------------- int8 quantization --

TEST(Int8Quantization, PerRowErrorBoundedByHalfScale) {
  core::PkgmModel model(SmallOptions());
  const uint32_t d = model.dim();
  std::vector<int8_t> q(d);
  for (uint32_t e = 0; e < model.num_entities(); ++e) {
    const float* row = model.entity(e);
    const float scale = store::QuantizeRowInt8(row, d, q.data());
    for (uint32_t i = 0; i < d; ++i) {
      const float back = scale * static_cast<float>(q[i]);
      // Symmetric rounding: each element is off by at most half a step.
      EXPECT_LE(std::fabs(back - row[i]), 0.5f * scale + 1e-6f)
          << "entity " << e << " element " << i;
    }
  }
}

TEST(Int8Quantization, ZeroRowQuantizesToZeroScale) {
  std::vector<float> zeros(16, 0.0f);
  std::vector<int8_t> q(16, 99);
  const float scale = store::QuantizeRowInt8(zeros.data(), 16, q.data());
  EXPECT_EQ(scale, 0.0f);
  for (int8_t v : q) EXPECT_EQ(v, 0);
}

TEST(Int8Quantization, StoreDequantizesWithinBoundAndHighCosine) {
  core::PkgmModel model(SmallOptions());
  const std::string path = TempStorePath("int8.pkgs");
  store::StoreWriterOptions wopt;
  wopt.dtype = store::StoreDtype::kInt8;
  ASSERT_TRUE(store::EmbeddingStoreWriter(wopt).Write(model, path).ok());

  auto opened = store::MmapEmbeddingStore::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  const store::MmapEmbeddingStore& s = opened.value();
  EXPECT_EQ(s.dtype(), store::StoreDtype::kInt8);

  const uint32_t d = model.dim();
  std::vector<float> scratch(static_cast<size_t>(d) * d);
  std::vector<int8_t> q(d);
  for (uint32_t e = 0; e < model.num_entities(); ++e) {
    const float scale = store::QuantizeRowInt8(model.entity(e), d, q.data());
    const float* row = s.EntityRow(e, scratch.data());
    for (uint32_t i = 0; i < d; ++i) {
      EXPECT_LE(std::fabs(row[i] - model.entity(e)[i]), 0.5f * scale + 1e-6f);
    }
  }

  // Condensed service vectors stay directionally faithful (the acceptance
  // bar bench_store measures at scale).
  ProviderSpec spec = SmallProviderSpec();
  core::ServiceVectorProvider fp32(&model, spec.items, spec.key_relations);
  core::ServiceVectorProvider int8(&s, spec.items, spec.key_relations);
  double mean_cos = 0.0;
  for (uint32_t item = 0; item < fp32.num_items(); ++item) {
    mean_cos += Cosine(fp32.Condensed(item, core::ServiceMode::kAll),
                       int8.Condensed(item, core::ServiceMode::kAll));
  }
  mean_cos /= fp32.num_items();
  EXPECT_GE(mean_cos, 0.99);
  std::remove(path.c_str());
}

TEST(Int8Quantization, QuantizeStoreRecodesAnOpenFp32Store) {
  // The pkgm_tool quantize-store path: fp32 .pkgs -> mmap -> int8 .pkgs.
  core::PkgmModel model(SmallOptions());
  const std::string fp32_path = TempStorePath("recode_fp32.pkgs");
  const std::string int8_path = TempStorePath("recode_int8.pkgs");
  ASSERT_TRUE(store::EmbeddingStoreWriter().Write(model, fp32_path).ok());
  auto fp32_store = store::MmapEmbeddingStore::Open(fp32_path);
  ASSERT_TRUE(fp32_store.ok());

  store::StoreWriterOptions wopt;
  wopt.dtype = store::StoreDtype::kInt8;
  wopt.generation = 7;
  ASSERT_TRUE(store::EmbeddingStoreWriter(wopt)
                  .Write(fp32_store.value(), int8_path)
                  .ok());
  auto int8_store = store::MmapEmbeddingStore::Open(int8_path);
  ASSERT_TRUE(int8_store.ok()) << int8_store.status().message();
  EXPECT_EQ(int8_store.value().dtype(), store::StoreDtype::kInt8);
  EXPECT_EQ(int8_store.value().generation(), 7u);
  EXPECT_LT(int8_store.value().file_size(), fp32_store.value().file_size());

  ProviderSpec spec = SmallProviderSpec();
  core::ServiceVectorProvider a(&model, spec.items, spec.key_relations);
  core::ServiceVectorProvider b(&int8_store.value(), spec.items,
                                spec.key_relations);
  for (uint32_t item = 0; item < a.num_items(); ++item) {
    EXPECT_GE(Cosine(a.Condensed(item, core::ServiceMode::kAll),
                     b.Condensed(item, core::ServiceMode::kAll)),
              0.99);
  }
  std::remove(fp32_path.c_str());
  std::remove(int8_path.c_str());
}

// ------------------------------------------------------- corrupt stores --

TEST(StoreCorruption, TruncatedStoreIsRejected) {
  core::PkgmModel model(SmallOptions());
  const std::string path = TempStorePath("trunc.pkgs");
  ASSERT_TRUE(store::EmbeddingStoreWriter().Write(model, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);

  auto opened = store::MmapEmbeddingStore::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(StoreCorruption, BadMagicIsRejected) {
  core::PkgmModel model(SmallOptions());
  const std::string path = TempStorePath("magic.pkgs");
  ASSERT_TRUE(store::EmbeddingStoreWriter().Write(model, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  const uint32_t bogus = 0xDEADBEEFu;
  std::fwrite(&bogus, sizeof(bogus), 1, f);
  std::fclose(f);

  auto opened = store::MmapEmbeddingStore::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(StoreCorruption, PayloadBitFlipFailsChecksum) {
  core::PkgmModel model(SmallOptions());
  const std::string path = TempStorePath("flip.pkgs");
  ASSERT_TRUE(store::EmbeddingStoreWriter().Write(model, path).ok());
  // Flip one byte in the middle of the entity section.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 128, SEEK_SET);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  std::fseek(f, 128, SEEK_SET);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);

  auto strict = store::MmapEmbeddingStore::Open(path);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kCorruption);

  // Lazy mode maps it anyway (large-store fast path) but an explicit
  // VerifyChecksum still catches the flip.
  store::MmapStoreOptions lazy;
  lazy.verify_checksum = false;
  auto opened = store::MmapEmbeddingStore::Open(path, lazy);
  ASSERT_TRUE(opened.ok());
  Status s = opened.value().VerifyChecksum();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(StoreCorruption, HeaderSizeMismatchIsRejected) {
  core::PkgmModel model(SmallOptions());
  const std::string path = TempStorePath("tail.pkgs");
  ASSERT_TRUE(store::EmbeddingStoreWriter().Write(model, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const char junk[8] = {0};
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);

  auto opened = store::MmapEmbeddingStore::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

// -------------------------------------------------------- model registry --

TEST(ModelRegistry, PublishAssignsMonotonicGenerations) {
  store::ModelRegistry registry;
  EXPECT_EQ(registry.Current(), nullptr);
  EXPECT_EQ(registry.generation(), 0u);

  auto model = std::make_shared<core::PkgmModel>(SmallOptions());
  ProviderSpec spec = SmallProviderSpec();
  auto provider = std::make_shared<core::ServiceVectorProvider>(
      model.get(), spec.items, spec.key_relations);
  auto source =
      std::shared_ptr<const core::EmbeddingSource>(model, model.get());

  EXPECT_EQ(registry.Publish(source, provider, {}), 1u);
  EXPECT_EQ(registry.generation(), 1u);
  EXPECT_EQ(registry.Publish(source, provider, {}), 2u);
  auto current = registry.Current();
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->generation, 2u);
  EXPECT_EQ(current->provider.get(), provider.get());
}

// One published generation over a store file; the caller owns nothing else.
std::shared_ptr<const store::ServingGeneration> MakeStoreGeneration(
    const core::PkgmModel& model, const std::string& path,
    store::StoreDtype dtype) {
  store::StoreWriterOptions wopt;
  wopt.dtype = dtype;
  EXPECT_TRUE(store::EmbeddingStoreWriter(wopt).Write(model, path).ok());
  auto opened = store::MmapEmbeddingStore::Open(path);
  EXPECT_TRUE(opened.ok());
  auto source = std::make_shared<store::MmapEmbeddingStore>(
      std::move(opened.value()));
  ProviderSpec spec = SmallProviderSpec();
  auto provider = std::make_shared<core::ServiceVectorProvider>(
      source.get(), spec.items, spec.key_relations);
  auto gen = std::make_shared<store::ServingGeneration>();
  gen->source = source;
  gen->provider = provider;
  gen->info.load_mode =
      dtype == store::StoreDtype::kInt8 ? "mmap-int8" : "mmap-fp32";
  gen->info.dtype = dtype;
  gen->info.file_bytes = source->file_size();
  gen->info.path = path;
  return gen;
}

TEST(ModelRegistry, HotSwapUnderConcurrentServingLoadNeverFails) {
  core::PkgmModel model_a(SmallOptions(/*seed=*/11));
  core::PkgmModel model_b(SmallOptions(/*seed=*/99));
  const std::string path_a = TempStorePath("swap_a.pkgs");
  const std::string path_b = TempStorePath("swap_b.pkgs");
  auto gen_a = MakeStoreGeneration(model_a, path_a, store::StoreDtype::kFloat32);
  auto gen_b = MakeStoreGeneration(model_b, path_b, store::StoreDtype::kInt8);

  store::ModelRegistry registry;
  registry.Publish(gen_a->source, gen_a->provider, gen_a->info);

  serve::KnowledgeServerOptions opt;
  opt.num_workers = 3;
  opt.queue_capacity = 1024;
  serve::KnowledgeServer server(&registry, opt);
  server.Start();

  // Every Ok response must equal one of the two generations' outputs —
  // a response mixing them (or a stale cached value served after the
  // swap) is a hot-swap bug.
  const uint32_t num_items = gen_a->provider->num_items();
  std::vector<Vec> expect_a, expect_b;
  for (uint32_t i = 0; i < num_items; ++i) {
    expect_a.push_back(gen_a->provider->Condensed(i, core::ServiceMode::kAll));
    expect_b.push_back(gen_b->provider->Condensed(i, core::ServiceMode::kAll));
  }
  auto matches = [](const Vec& got, const Vec& want) {
    return got.size() == want.size() &&
           std::memcmp(got.data(), want.data(),
                       got.size() * sizeof(float)) == 0;
  };

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> not_ok{0};
  std::atomic<uint64_t> wrong_value{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 2; ++t) {
    clients.emplace_back([&, t] {
      uint32_t i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        serve::ServiceRequest request;
        request.item = i++ % num_items;
        auto future = server.Submit(request);
        serve::ServiceResponse response = future.get();
        if (response.code != serve::ResponseCode::kOk) {
          ++not_ok;
          continue;
        }
        if (!matches(response.vectors[0], expect_a[request.item]) &&
            !matches(response.vectors[0], expect_b[request.item])) {
          ++wrong_value;
        }
      }
    });
  }

  // Swap back and forth under load.
  for (int swap = 0; swap < 12; ++swap) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const auto& gen = (swap % 2 == 0) ? gen_b : gen_a;
    registry.Publish(gen->source, gen->provider, gen->info);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  stop.store(true);
  for (auto& c : clients) c.join();

  EXPECT_EQ(not_ok.load(), 0u) << "hot swaps must not fail requests";
  EXPECT_EQ(wrong_value.load(), 0u);

  // After the dust settles the server must serve exactly the latest
  // generation (gen_a, published last) — nothing stale survives in cache.
  for (uint32_t i = 0; i < num_items; ++i) {
    serve::ServiceRequest request;
    request.item = i;
    serve::ServiceResponse response = server.Submit(request).get();
    ASSERT_EQ(response.code, serve::ResponseCode::kOk);
    EXPECT_TRUE(matches(response.vectors[0], expect_a[i]))
        << "item " << i << " served a stale generation after the swap";
  }
  server.Stop();
  EXPECT_NE(server.stats().backend().find("mmap-"), std::string::npos);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

}  // namespace
}  // namespace pkgm
