// Wire-codec robustness: round-trips for every frame type, incremental
// decoding over arbitrary fragmentation, and rejection of hostile input
// (truncation, oversize, corruption) without allocation blowups. These run
// under ASan/UBSan in CI, so "rejected cleanly" also means no UB.
#include "net/wire.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "serve/request.h"

namespace pkgm::net {
namespace {

using serve::ResponseCode;
using serve::ServeClock;
using serve::ServiceForm;
using serve::ServiceRequest;
using serve::ServiceResponse;

std::vector<ServiceRequest> SampleRequests() {
  std::vector<ServiceRequest> requests;
  ServiceRequest a;
  a.item = 7;
  a.mode = core::ServiceMode::kAll;
  a.form = ServiceForm::kCondensed;
  requests.push_back(a);
  ServiceRequest b;
  b.item = 0xdeadbeef;
  b.mode = core::ServiceMode::kRelationOnly;
  b.form = ServiceForm::kSequence;
  b.deadline = ServeClock::now() + std::chrono::milliseconds(50);
  requests.push_back(b);
  return requests;
}

std::vector<ServiceResponse> SampleResponses() {
  std::vector<ServiceResponse> responses;
  ServiceResponse ok;
  ok.code = ResponseCode::kOk;
  ok.cache_hit = true;
  ok.vectors = {{1.5f, -2.25f, 0.0f}, {3.0f}};
  responses.push_back(ok);
  ServiceResponse rejected;
  rejected.code = ResponseCode::kRejected;
  responses.push_back(rejected);
  ServiceResponse empty_vec;
  empty_vec.code = ResponseCode::kOk;
  empty_vec.vectors = {{}};
  responses.push_back(empty_vec);
  return responses;
}

/// Decodes exactly one frame from `bytes`, asserting full consumption.
Frame MustDecode(const std::string& bytes) {
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  std::string error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kFrame)
      << error;
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  return frame;
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vector: 32 zero bytes.
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8a9136aau);
  // "123456789" — the classic check value for CRC32C.
  const char* digits = "123456789";
  EXPECT_EQ(Crc32c(digits, 9), 0xe3069283u);
  // Chaining must equal one-shot.
  EXPECT_EQ(Crc32c(digits + 4, 5, Crc32c(digits, 4)), 0xe3069283u);
}

TEST(WireTest, GetVectorsRoundTrip) {
  const auto now = ServeClock::now();
  const std::vector<ServiceRequest> requests = SampleRequests();
  const std::string bytes = EncodeGetVectors(42, requests, now);
  const Frame frame = MustDecode(bytes);
  EXPECT_EQ(frame.type, FrameType::kGetVectors);
  EXPECT_EQ(frame.correlation_id, 42u);

  std::vector<ServiceRequest> decoded;
  ASSERT_TRUE(DecodeGetVectors(frame.payload, now, &decoded).ok());
  ASSERT_EQ(decoded.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(decoded[i].item, requests[i].item);
    EXPECT_EQ(decoded[i].mode, requests[i].mode);
    EXPECT_EQ(decoded[i].form, requests[i].form);
  }
  // No deadline stays no deadline; a real deadline survives within the
  // microsecond quantization of the wire encoding.
  EXPECT_EQ(decoded[0].deadline, ServeClock::time_point::max());
  const auto skew = decoded[1].deadline - requests[1].deadline;
  EXPECT_LT(std::chrono::abs(skew), std::chrono::microseconds(2));
}

TEST(WireTest, ExpiredDeadlineStaysExpired) {
  std::vector<ServiceRequest> requests(1);
  requests[0].deadline = ServeClock::now() - std::chrono::seconds(5);
  const auto now = ServeClock::now();
  const Frame frame = MustDecode(EncodeGetVectors(1, requests, now));
  std::vector<ServiceRequest> decoded;
  ASSERT_TRUE(DecodeGetVectors(frame.payload, now, &decoded).ok());
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_NE(decoded[0].deadline, ServeClock::time_point::max());
  EXPECT_LE(decoded[0].deadline, now + std::chrono::microseconds(1));
}

TEST(WireTest, VectorsRoundTrip) {
  const std::vector<ServiceResponse> responses = SampleResponses();
  const Frame frame = MustDecode(EncodeVectors(99, responses));
  EXPECT_EQ(frame.type, FrameType::kVectors);
  EXPECT_EQ(frame.correlation_id, 99u);

  std::vector<ServiceResponse> decoded;
  ASSERT_TRUE(DecodeVectors(frame.payload, &decoded).ok());
  ASSERT_EQ(decoded.size(), responses.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(decoded[i].code, responses[i].code);
    EXPECT_EQ(decoded[i].cache_hit, responses[i].cache_hit);
    ASSERT_EQ(decoded[i].vectors.size(), responses[i].vectors.size());
    for (size_t v = 0; v < responses[i].vectors.size(); ++v) {
      // Bit-identical floats across the wire.
      ASSERT_EQ(decoded[i].vectors[v].size(), responses[i].vectors[v].size());
      if (responses[i].vectors[v].size() == 0) continue;  // data() may be null
      EXPECT_EQ(std::memcmp(decoded[i].vectors[v].data(),
                            responses[i].vectors[v].data(),
                            responses[i].vectors[v].size() * sizeof(float)),
                0);
    }
  }
}

TEST(WireTest, ErrorRoundTrip) {
  const Frame frame =
      MustDecode(EncodeError(3, WireCode::kUnsupported, "nope"));
  EXPECT_EQ(frame.type, FrameType::kError);
  WireCode code;
  std::string message;
  ASSERT_TRUE(DecodeError(frame.payload, &code, &message).ok());
  EXPECT_EQ(code, WireCode::kUnsupported);
  EXPECT_EQ(message, "nope");
}

TEST(WireTest, ControlAndStatsRoundTrip) {
  Frame frame = MustDecode(EncodeControl(FrameType::kPing, 5));
  EXPECT_EQ(frame.type, FrameType::kPing);
  EXPECT_TRUE(frame.payload.empty());

  frame = MustDecode(EncodeStatsJson(6, "{\"x\":1}"));
  EXPECT_EQ(frame.type, FrameType::kStatsJson);
  EXPECT_EQ(frame.payload, "{\"x\":1}");
}

TEST(WireTest, CodeMappingRoundTrips) {
  for (ResponseCode code :
       {ResponseCode::kOk, ResponseCode::kRejected,
        ResponseCode::kDeadlineExceeded, ResponseCode::kInvalidItem,
        ResponseCode::kQuotaExceeded}) {
    EXPECT_EQ(ResponseCodeFromWire(WireCodeFromResponse(code)), code);
  }
}

TEST(WireTest, TenantRoundTrips) {
  // The tenant id rides in the ex-reserved u16 of each GetVectors entry;
  // older clients always sent 0, so 0 must decode as the default tenant
  // and any other value must survive unchanged.
  const auto now = ServeClock::now();
  std::vector<ServiceRequest> requests(3);
  requests[0].item = 1;  // tenant defaults to 0
  requests[1].item = 2;
  requests[1].tenant = 7;
  requests[2].item = 3;
  requests[2].tenant = 0xffff;
  const Frame frame = MustDecode(EncodeGetVectors(11, requests, now));
  std::vector<ServiceRequest> decoded;
  ASSERT_TRUE(DecodeGetVectors(frame.payload, now, &decoded).ok());
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0].tenant, 0u);
  EXPECT_EQ(decoded[1].tenant, 7u);
  EXPECT_EQ(decoded[2].tenant, 0xffffu);
}

TEST(WireTest, QuotaExceededErrorCodeValidButNothingBeyond) {
  // kQuotaExceeded (6) extended the wire-code range; the decoders must
  // accept it and keep rejecting the first unassigned value.
  WireCode code;
  std::string message;
  const Frame frame =
      MustDecode(EncodeError(4, WireCode::kQuotaExceeded, "shed"));
  ASSERT_TRUE(DecodeError(frame.payload, &code, &message).ok());
  EXPECT_EQ(code, WireCode::kQuotaExceeded);
  EXPECT_EQ(message, "shed");

  std::string bad = frame.payload;
  bad[0] = static_cast<char>(static_cast<uint8_t>(kMaxWireCode) + 1);
  EXPECT_FALSE(DecodeError(bad, &code, &message).ok());
}

TEST(FrameDecoderTest, ByteAtATimeFragmentation) {
  const std::string bytes = EncodeVectors(12, SampleResponses());
  FrameDecoder decoder;
  Frame frame;
  std::string error;
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.Feed(&bytes[i], 1);
    ASSERT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kNeedMore);
  }
  decoder.Feed(&bytes[bytes.size() - 1], 1);
  ASSERT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame.correlation_id, 12u);
}

TEST(FrameDecoderTest, MultipleFramesInOneFeed) {
  std::string bytes = EncodeControl(FrameType::kPing, 1);
  bytes += EncodeControl(FrameType::kPong, 2);
  bytes += EncodeError(3, WireCode::kOk, "");
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  std::string error;
  for (uint64_t want = 1; want <= 3; ++want) {
    ASSERT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kFrame);
    EXPECT_EQ(frame.correlation_id, want);
  }
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kNeedMore);
}

TEST(FrameDecoderTest, BadMagicPoisons) {
  std::string bytes = EncodeControl(FrameType::kPing, 1);
  bytes[0] ^= 0xff;
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  std::string error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kError);
  // Poisoned: even valid bytes afterwards keep failing.
  const std::string good = EncodeControl(FrameType::kPing, 2);
  decoder.Feed(good.data(), good.size());
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kError);
}

TEST(FrameDecoderTest, BadVersionRejected) {
  std::string bytes = EncodeControl(FrameType::kPing, 1);
  bytes[4] = static_cast<char>(kWireVersion + 1);
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  std::string error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kError);
  EXPECT_NE(error.find("version"), std::string::npos);
}

TEST(FrameDecoderTest, NonZeroFlagsRejected) {
  std::string bytes = EncodeControl(FrameType::kPing, 1);
  bytes[6] = 1;
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  std::string error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kError);
}

TEST(FrameDecoderTest, CorruptPayloadFailsCrc) {
  std::string bytes = EncodeStatsJson(1, "{\"stats\":true}");
  bytes[kFrameHeaderBytes + 3] ^= 0x01;  // flip one payload bit
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  std::string error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kError);
  EXPECT_NE(error.find("CRC"), std::string::npos);
}

TEST(FrameDecoderTest, OversizedFrameRejectedBeforeBuffering) {
  // Header declares a payload far over the cap; the decoder must reject on
  // the header alone — long before that many bytes ever arrive.
  std::string bytes = EncodeStatsJson(1, "x");
  const uint32_t huge = 0x7fffffff;
  std::memcpy(&bytes[16], &huge, sizeof(huge));
  FrameDecoder decoder(/*max_frame_bytes=*/1024);
  decoder.Feed(bytes.data(), kFrameHeaderBytes);
  Frame frame;
  std::string error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kError);
  EXPECT_LT(decoder.buffered_bytes(), 1024u);
}

TEST(WireTest, HostileGetVectorsCountRejected) {
  // A count field claiming 2^30 entries against a tiny payload must fail
  // validation without attempting the implied allocation.
  std::string payload;
  const uint32_t hostile = 1u << 30;
  payload.append(reinterpret_cast<const char*>(&hostile), sizeof(hostile));
  payload.append(12, '\0');  // one entry's worth of bytes
  std::vector<ServiceRequest> out;
  EXPECT_FALSE(DecodeGetVectors(payload, ServeClock::now(), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(WireTest, HostileVectorLengthsRejected) {
  // Entry declares num_vectors / len values bigger than the payload.
  for (uint32_t hostile : {1u << 30, 0xffffffffu}) {
    std::string payload;
    const uint32_t count = 1;
    payload.append(reinterpret_cast<const char*>(&count), sizeof(count));
    payload.push_back(0);  // code
    payload.push_back(0);  // flags
    payload.push_back(0);  // reserved
    payload.push_back(0);
    payload.append(reinterpret_cast<const char*>(&hostile), sizeof(hostile));
    std::vector<ServiceResponse> out;
    EXPECT_FALSE(DecodeVectors(payload, &out).ok());
  }
}

TEST(WireTest, TruncatedPayloadsRejected) {
  const auto now = ServeClock::now();
  const std::string get = EncodeGetVectors(1, SampleRequests(), now);
  const std::string_view get_payload =
      std::string_view(get).substr(kFrameHeaderBytes);
  const std::string vec = EncodeVectors(1, SampleResponses());
  const std::string_view vec_payload =
      std::string_view(vec).substr(kFrameHeaderBytes);

  // Every strict prefix must be rejected (never accepted short).
  for (size_t len = 0; len < get_payload.size(); ++len) {
    std::vector<ServiceRequest> out;
    EXPECT_FALSE(
        DecodeGetVectors(get_payload.substr(0, len), now, &out).ok());
  }
  for (size_t len = 0; len < vec_payload.size(); ++len) {
    std::vector<ServiceResponse> out;
    EXPECT_FALSE(DecodeVectors(vec_payload.substr(0, len), &out).ok());
  }
  // Trailing garbage is rejected too.
  {
    std::vector<ServiceRequest> out;
    std::string padded(get_payload);
    padded.push_back('\0');
    EXPECT_FALSE(DecodeGetVectors(padded, now, &out).ok());
  }
  {
    std::vector<ServiceResponse> out;
    std::string padded(vec_payload);
    padded.push_back('\0');
    EXPECT_FALSE(DecodeVectors(padded, &out).ok());
  }
}

TEST(WireTest, BadEnumValuesRejected) {
  const auto now = ServeClock::now();
  std::vector<ServiceRequest> requests(1);
  std::string frame = EncodeGetVectors(1, requests, now);
  std::string payload = frame.substr(kFrameHeaderBytes);
  std::vector<ServiceRequest> out;
  ASSERT_TRUE(DecodeGetVectors(payload, now, &out).ok());

  std::string bad_mode = payload;
  bad_mode[4 + 4] = 0x7f;  // mode byte of entry 0
  EXPECT_FALSE(DecodeGetVectors(bad_mode, now, &out).ok());

  std::string bad_form = payload;
  bad_form[4 + 5] = 0x7f;  // form byte of entry 0
  EXPECT_FALSE(DecodeGetVectors(bad_form, now, &out).ok());
}

TEST(Crc32cTest, HardwareMatchesSoftware) {
  // The dispatched implementation (hardware where the CPU has it) must be
  // bit-identical to the table-driven software oracle on every length and
  // alignment — the checksum guards the per-batch gradient push path.
  EXPECT_EQ(Crc32cSoftware("123456789", 9), 0xe3069283u);

  std::string buf(1027, '\0');
  uint32_t state = 0x12345678u;
  for (size_t i = 0; i < buf.size(); ++i) {
    state = state * 1664525u + 1013904223u;  // LCG; any byte soup works
    buf[i] = static_cast<char>(state >> 24);
  }
  const size_t lengths[] = {0, 1, 2, 3, 7, 8, 9, 15, 16, 17,
                            63, 64, 65, 255, 1024, 1027};
  for (size_t len : lengths) {
    for (size_t offset : {size_t{0}, size_t{1}, size_t{3}}) {
      if (offset + len > buf.size()) continue;
      EXPECT_EQ(Crc32c(buf.data() + offset, len),
                Crc32cSoftware(buf.data() + offset, len))
          << "len=" << len << " offset=" << offset;
    }
  }
  // Chained hardware == one-shot software across an arbitrary split.
  EXPECT_EQ(Crc32c(buf.data() + 100, 900, Crc32c(buf.data(), 100)),
            Crc32cSoftware(buf.data(), 1000));
  // The dispatcher reports a real implementation name.
  EXPECT_NE(Crc32cImplName(), nullptr);
}

// ---------------------------------------------------------------------------
// Distributed-training frames (v2)
// ---------------------------------------------------------------------------

TEST(DistWireTest, PullRowsRoundTrip) {
  std::vector<PullSection> sections(2);
  sections[0].table = ParamTable::kEntity;
  sections[0].ids = {3, 1, 41, 0xffffffffu};
  sections[1].table = ParamTable::kTransfer;
  sections[1].ids = {7};
  const std::string bytes = EncodePullRows(99, sections);
  const Frame frame = MustDecode(bytes);
  EXPECT_EQ(frame.type, FrameType::kPullRows);
  EXPECT_EQ(frame.correlation_id, 99u);

  std::vector<PullSection> decoded;
  ASSERT_TRUE(DecodePullRows(frame.payload, &decoded).ok());
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].table, ParamTable::kEntity);
  EXPECT_EQ(decoded[0].ids, sections[0].ids);
  EXPECT_EQ(decoded[1].table, ParamTable::kTransfer);
  EXPECT_EQ(decoded[1].ids, sections[1].ids);

  // Every strict prefix rejected; trailing garbage rejected; bad table
  // byte rejected.
  const std::string payload(frame.payload);
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(DecodePullRows(payload.substr(0, len), &decoded).ok());
  }
  std::string padded = payload;
  padded.push_back('\0');
  EXPECT_FALSE(DecodePullRows(padded, &decoded).ok());
  std::string bad_table = payload;
  bad_table[4] = 0x7f;  // table byte of section 0
  EXPECT_FALSE(DecodePullRows(bad_table, &decoded).ok());
}

TEST(DistWireTest, PullRowsHostileCountNoAllocationBlowup) {
  // A section count far beyond the payload must be rejected up front, not
  // fed to a vector reserve.
  std::string payload;
  const uint32_t huge = 0x40000000u;
  payload.append(reinterpret_cast<const char*>(&huge), 4);
  std::vector<PullSection> out;
  EXPECT_FALSE(DecodePullRows(payload, &out).ok());

  // Same for a per-section id count.
  std::vector<PullSection> one(1);
  one[0].ids = {1};
  std::string bytes = EncodePullRows(1, one);
  std::string inner = bytes.substr(kFrameHeaderBytes);
  std::memcpy(&inner[5], &huge, 4);  // id count of section 0
  EXPECT_FALSE(DecodePullRows(inner, &out).ok());
}

TEST(DistWireTest, RowsRoundTrip) {
  std::vector<RowsSection> sections(2);
  sections[0].table = ParamTable::kRelation;
  sections[0].row_size = 3;
  sections[0].ids = {5, 9};
  sections[0].values = {1.0f, -2.5f, 0.0f, 4.0f, 5.0f, -6.0f};
  sections[1].table = ParamTable::kHyperplane;
  sections[1].row_size = 2;
  sections[1].ids = {0};
  sections[1].values = {0.5f, -0.5f};
  const std::string bytes = EncodeRows(7, sections);
  const Frame frame = MustDecode(bytes);
  EXPECT_EQ(frame.type, FrameType::kRows);

  std::vector<RowsSection> decoded;
  ASSERT_TRUE(DecodeRows(frame.payload, &decoded).ok());
  ASSERT_EQ(decoded.size(), 2u);
  for (size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(decoded[s].table, sections[s].table);
    EXPECT_EQ(decoded[s].row_size, sections[s].row_size);
    EXPECT_EQ(decoded[s].ids, sections[s].ids);
    EXPECT_EQ(decoded[s].values, sections[s].values);
  }

  const std::string payload(frame.payload);
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(DecodeRows(payload.substr(0, len), &decoded).ok());
  }
  std::string padded = payload;
  padded.push_back('\0');
  EXPECT_FALSE(DecodeRows(padded, &decoded).ok());

  // A count * row_size product that overflows past the payload must be
  // rejected before allocation.
  std::string hostile = payload;
  const uint32_t huge = 0x20000000u;
  std::memcpy(&hostile[5], &huge, 4);  // row_size of section 0
  EXPECT_FALSE(DecodeRows(hostile, &decoded).ok());
}

TEST(DistWireTest, PushGradsRoundTrip) {
  const std::string blob = "not-a-real-arena-but-opaque-bytes";
  const std::string bytes = EncodePushGrads(13, 0.125f, 4, blob);
  const Frame frame = MustDecode(bytes);
  EXPECT_EQ(frame.type, FrameType::kPushGrads);

  float scale = 0.0f;
  uint32_t epoch = 0;
  std::string_view arena;
  ASSERT_TRUE(DecodePushGrads(frame.payload, &scale, &epoch, &arena).ok());
  EXPECT_EQ(scale, 0.125f);
  EXPECT_EQ(epoch, 4u);
  EXPECT_EQ(arena, blob);

  // Shorter than the fixed scale+epoch prefix: rejected.
  for (size_t len = 0; len < 8; ++len) {
    EXPECT_FALSE(
        DecodePushGrads(std::string_view(frame.payload).substr(0, len),
                        &scale, &epoch, &arena)
            .ok());
  }
  // An empty blob is legal at this layer (the arena codec rejects it).
  ASSERT_TRUE(DecodePushGrads(std::string_view(frame.payload).substr(0, 8),
                              &scale, &epoch, &arena)
                  .ok());
  EXPECT_TRUE(arena.empty());
}

TEST(DistWireTest, PushAckRoundTrip) {
  const std::string bytes = EncodePushAck(21, 777);
  const Frame frame = MustDecode(bytes);
  EXPECT_EQ(frame.type, FrameType::kPushAck);
  uint32_t rows = 0;
  ASSERT_TRUE(DecodePushAck(frame.payload, &rows).ok());
  EXPECT_EQ(rows, 777u);
  EXPECT_FALSE(DecodePushAck(std::string_view("abc"), &rows).ok());
  std::string padded(frame.payload);
  padded.push_back('\0');
  EXPECT_FALSE(DecodePushAck(padded, &rows).ok());
}

TEST(DistWireTest, ShardInfoReplyRoundTrip) {
  ShardInfo info;
  info.shard_index = 3;
  info.num_shards = 8;
  info.num_entities = 123456;
  info.num_relations = 42;
  info.dim = 64;
  info.scorer = 2;
  info.use_relation_module = false;
  info.optimizer = 1;
  info.learning_rate = 1e-4f;
  info.model_seed = 0xdeadbeefcafef00dULL;
  const std::string bytes = EncodeShardInfoReply(5, info);
  const Frame frame = MustDecode(bytes);
  EXPECT_EQ(frame.type, FrameType::kShardInfoReply);

  ShardInfo decoded;
  ASSERT_TRUE(DecodeShardInfoReply(frame.payload, &decoded).ok());
  EXPECT_EQ(decoded.shard_index, info.shard_index);
  EXPECT_EQ(decoded.num_shards, info.num_shards);
  EXPECT_EQ(decoded.num_entities, info.num_entities);
  EXPECT_EQ(decoded.num_relations, info.num_relations);
  EXPECT_EQ(decoded.dim, info.dim);
  EXPECT_EQ(decoded.scorer, info.scorer);
  EXPECT_EQ(decoded.use_relation_module, info.use_relation_module);
  EXPECT_EQ(decoded.optimizer, info.optimizer);
  EXPECT_EQ(decoded.learning_rate, info.learning_rate);
  EXPECT_EQ(decoded.model_seed, info.model_seed);

  const std::string payload(frame.payload);
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(DecodeShardInfoReply(payload.substr(0, len), &decoded).ok());
  }
  std::string padded = payload;
  padded.push_back('\0');
  EXPECT_FALSE(DecodeShardInfoReply(padded, &decoded).ok());
}

TEST(DistWireTest, BarrierRoundTrip) {
  {
    const std::string bytes = EncodeBarrier(2, 17, 4);
    const Frame frame = MustDecode(bytes);
    EXPECT_EQ(frame.type, FrameType::kBarrier);
    uint32_t epoch = 0, workers = 0;
    ASSERT_TRUE(DecodeBarrier(frame.payload, &epoch, &workers).ok());
    EXPECT_EQ(epoch, 17u);
    EXPECT_EQ(workers, 4u);
    for (size_t len = 0; len < frame.payload.size(); ++len) {
      EXPECT_FALSE(
          DecodeBarrier(std::string_view(frame.payload).substr(0, len),
                        &epoch, &workers)
              .ok());
    }
  }
  {
    const std::string bytes = EncodeBarrierReply(2, 17, 4);
    const Frame frame = MustDecode(bytes);
    EXPECT_EQ(frame.type, FrameType::kBarrierReply);
    uint32_t epoch = 0, arrived = 0;
    ASSERT_TRUE(DecodeBarrierReply(frame.payload, &epoch, &arrived).ok());
    EXPECT_EQ(epoch, 17u);
    EXPECT_EQ(arrived, 4u);
    std::string padded(frame.payload);
    padded.push_back('\0');
    EXPECT_FALSE(DecodeBarrierReply(padded, &epoch, &arrived).ok());
  }
}

TEST(DistWireTest, V1HeaderCutOff) {
  // A v1 peer must be rejected at the header: same layout, older version
  // byte.
  std::string bytes = EncodeControl(FrameType::kPing, 1);
  bytes[4] = 1;  // version byte
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  std::string error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kError);
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

// ------------------------------------------ inference frames (v3) --------

std::vector<ServiceRequest> SampleInferRequests(serve::TaskKind task) {
  std::vector<ServiceRequest> requests;
  ServiceRequest a;
  a.task = task;
  a.user = 11;
  a.item = 7;
  a.item_b = 3;
  a.top_k = 5;
  a.mode = core::ServiceMode::kAll;
  a.tenant = 2;
  requests.push_back(a);
  ServiceRequest b;
  b.task = task;
  b.user = 0xfeedface;
  b.item = 0xdeadbeef;
  b.item_b = 0xcafef00d;
  b.top_k = 1;
  b.mode = core::ServiceMode::kTripleOnly;
  b.deadline = ServeClock::now() + std::chrono::milliseconds(50);
  requests.push_back(b);
  return requests;
}

TEST(InferWireTest, RecommendRoundTrip) {
  const auto now = ServeClock::now();
  const auto requests = SampleInferRequests(serve::TaskKind::kRecommend);
  const Frame frame = MustDecode(EncodeRecommend(99, requests, now));
  EXPECT_EQ(frame.type, FrameType::kRecommend);
  EXPECT_EQ(frame.correlation_id, 99u);
  std::vector<ServiceRequest> decoded;
  ASSERT_TRUE(DecodeRecommend(frame.payload, now, &decoded).ok());
  ASSERT_EQ(decoded.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(decoded[i].task, serve::TaskKind::kRecommend);
    EXPECT_EQ(decoded[i].user, requests[i].user);
    EXPECT_EQ(decoded[i].item, requests[i].item);
    EXPECT_EQ(decoded[i].mode, requests[i].mode);
    EXPECT_EQ(decoded[i].tenant, requests[i].tenant);
  }
  EXPECT_EQ(decoded[0].deadline, ServeClock::time_point::max());
  const auto skew = decoded[1].deadline - requests[1].deadline;
  EXPECT_LT(std::chrono::abs(skew), std::chrono::microseconds(2));
}

TEST(InferWireTest, ClassifyRoundTrip) {
  const auto now = ServeClock::now();
  const auto requests = SampleInferRequests(serve::TaskKind::kClassify);
  const Frame frame = MustDecode(EncodeClassify(5, requests, now));
  EXPECT_EQ(frame.type, FrameType::kClassify);
  std::vector<ServiceRequest> decoded;
  ASSERT_TRUE(DecodeClassify(frame.payload, now, &decoded).ok());
  ASSERT_EQ(decoded.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(decoded[i].task, serve::TaskKind::kClassify);
    EXPECT_EQ(decoded[i].item, requests[i].item);
    EXPECT_EQ(decoded[i].top_k, requests[i].top_k);
    EXPECT_EQ(decoded[i].mode, requests[i].mode);
  }
}

TEST(InferWireTest, AlignRoundTrip) {
  const auto now = ServeClock::now();
  const auto requests = SampleInferRequests(serve::TaskKind::kAlign);
  const Frame frame = MustDecode(EncodeAlign(6, requests, now));
  EXPECT_EQ(frame.type, FrameType::kAlign);
  std::vector<ServiceRequest> decoded;
  ASSERT_TRUE(DecodeAlign(frame.payload, now, &decoded).ok());
  ASSERT_EQ(decoded.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(decoded[i].task, serve::TaskKind::kAlign);
    EXPECT_EQ(decoded[i].item, requests[i].item);
    EXPECT_EQ(decoded[i].item_b, requests[i].item_b);
  }
}

TEST(InferWireTest, ScoreReplyRoundTrip) {
  std::vector<ServiceResponse> responses(3);
  responses[0].code = ResponseCode::kOk;
  responses[0].score = 0.875f;
  responses[0].cache_hit = true;
  responses[1].code = ResponseCode::kDeadlineExceeded;
  responses[2].code = ResponseCode::kOk;
  responses[2].score = -3.5f;  // alignment logits can be negative
  for (FrameType type :
       {FrameType::kRecommendReply, FrameType::kAlignReply}) {
    const Frame frame = MustDecode(EncodeScoreReply(type, 8, responses));
    EXPECT_EQ(frame.type, type);
    std::vector<ServiceResponse> decoded;
    ASSERT_TRUE(DecodeScoreReply(frame.payload, &decoded).ok());
    ASSERT_EQ(decoded.size(), responses.size());
    for (size_t i = 0; i < responses.size(); ++i) {
      EXPECT_EQ(decoded[i].code, responses[i].code);
      EXPECT_EQ(decoded[i].score, responses[i].score);
      EXPECT_EQ(decoded[i].cache_hit, responses[i].cache_hit);
    }
  }
}

TEST(InferWireTest, ClassifyReplyRoundTrip) {
  std::vector<ServiceResponse> responses(3);
  responses[0].code = ResponseCode::kOk;
  responses[0].class_ids = {4, 1, 7};
  responses[0].class_probs = {0.5f, 0.25f, 0.125f};
  responses[1].code = ResponseCode::kInvalidItem;  // no classes
  responses[2].code = ResponseCode::kOk;
  responses[2].class_ids = {0};
  responses[2].class_probs = {1.0f};
  const Frame frame = MustDecode(EncodeClassifyReply(9, responses));
  EXPECT_EQ(frame.type, FrameType::kClassifyReply);
  std::vector<ServiceResponse> decoded;
  ASSERT_TRUE(DecodeClassifyReply(frame.payload, &decoded).ok());
  ASSERT_EQ(decoded.size(), responses.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(decoded[i].code, responses[i].code);
    EXPECT_EQ(decoded[i].class_ids, responses[i].class_ids);
    EXPECT_EQ(decoded[i].class_probs, responses[i].class_probs);
  }
}

TEST(InferWireTest, TruncatedPayloadsRejected) {
  // Every strict prefix of every v3 payload must be rejected, and a single
  // trailing byte must be rejected too.
  const auto now = ServeClock::now();
  std::vector<ServiceResponse> scores(2);
  scores[0].score = 1.0f;
  std::vector<ServiceResponse> classes(1);
  classes[0].class_ids = {3, 1};
  classes[0].class_probs = {0.75f, 0.25f};
  struct Case {
    std::string frame;
    std::function<bool(std::string_view)> decode_ok;
  };
  const std::vector<Case> cases = {
      {EncodeRecommend(1, SampleInferRequests(serve::TaskKind::kRecommend),
                       now),
       [&](std::string_view p) {
         std::vector<ServiceRequest> out;
         return DecodeRecommend(p, now, &out).ok();
       }},
      {EncodeClassify(1, SampleInferRequests(serve::TaskKind::kClassify), now),
       [&](std::string_view p) {
         std::vector<ServiceRequest> out;
         return DecodeClassify(p, now, &out).ok();
       }},
      {EncodeAlign(1, SampleInferRequests(serve::TaskKind::kAlign), now),
       [&](std::string_view p) {
         std::vector<ServiceRequest> out;
         return DecodeAlign(p, now, &out).ok();
       }},
      {EncodeScoreReply(FrameType::kRecommendReply, 1, scores),
       [](std::string_view p) {
         std::vector<ServiceResponse> out;
         return DecodeScoreReply(p, &out).ok();
       }},
      {EncodeClassifyReply(1, classes),
       [](std::string_view p) {
         std::vector<ServiceResponse> out;
         return DecodeClassifyReply(p, &out).ok();
       }},
  };
  for (size_t c = 0; c < cases.size(); ++c) {
    SCOPED_TRACE(c);
    const std::string_view payload =
        std::string_view(cases[c].frame).substr(kFrameHeaderBytes);
    ASSERT_TRUE(cases[c].decode_ok(payload));
    for (size_t len = 0; len < payload.size(); ++len) {
      EXPECT_FALSE(cases[c].decode_ok(payload.substr(0, len))) << len;
    }
    std::string padded(payload);
    padded.push_back('\0');
    EXPECT_FALSE(cases[c].decode_ok(padded));
  }
}

TEST(InferWireTest, HostileCountRejectedBeforeAllocation) {
  // A count field claiming 2^30 entries against a one-entry payload must
  // fail validation without attempting the implied allocation.
  const uint32_t hostile = 1u << 30;
  std::string payload;
  payload.append(reinterpret_cast<const char*>(&hostile), sizeof(hostile));
  payload.append(16, '\0');  // one request entry's worth of bytes
  const auto now = ServeClock::now();
  std::vector<ServiceRequest> reqs;
  EXPECT_FALSE(DecodeRecommend(payload, now, &reqs).ok());
  EXPECT_FALSE(DecodeClassify(payload, now, &reqs).ok());
  EXPECT_FALSE(DecodeAlign(payload, now, &reqs).ok());
  EXPECT_TRUE(reqs.empty());
  std::vector<ServiceResponse> resps;
  EXPECT_FALSE(DecodeScoreReply(payload, &resps).ok());
  EXPECT_FALSE(DecodeClassifyReply(payload, &resps).ok());
  // A classify-reply entry declaring more classes than the payload holds
  // is rejected at the entry, not trusted.
  std::string entry;
  const uint32_t one = 1;
  entry.append(reinterpret_cast<const char*>(&one), sizeof(one));
  entry.push_back(0);                  // code
  entry.push_back(0);                  // flags
  entry.push_back(static_cast<char>(0xff));  // k = 0xffff
  entry.push_back(static_cast<char>(0xff));
  entry.append(8, '\0');               // bytes for only one class
  EXPECT_FALSE(DecodeClassifyReply(entry, &resps).ok());
}

TEST(InferWireTest, BadFieldValuesRejected) {
  const auto now = ServeClock::now();
  std::vector<ServiceRequest> requests(1);
  requests[0].task = serve::TaskKind::kRecommend;
  const std::string frame = EncodeRecommend(1, requests, now);
  const std::string payload = frame.substr(kFrameHeaderBytes);
  std::vector<ServiceRequest> out;
  ASSERT_TRUE(DecodeRecommend(payload, now, &out).ok());

  // Entry layout: count(4) | a(4) b(4) mode(1) reserved(1) tenant(2)
  // deadline(4).
  std::string bad_mode = payload;
  bad_mode[4 + 8] = 0x7f;
  EXPECT_FALSE(DecodeRecommend(bad_mode, now, &out).ok());

  std::string bad_reserved = payload;
  bad_reserved[4 + 9] = 0x01;
  EXPECT_FALSE(DecodeRecommend(bad_reserved, now, &out).ok());

  // Score reply: count(4) | code(1) flags(1) reserved(2) score(4).
  std::vector<ServiceResponse> resp(1);
  const std::string reply =
      EncodeScoreReply(FrameType::kAlignReply, 1, resp)
          .substr(kFrameHeaderBytes);
  std::vector<ServiceResponse> rout;
  ASSERT_TRUE(DecodeScoreReply(reply, &rout).ok());
  std::string bad_code = reply;
  bad_code[4] = 0x7f;
  EXPECT_FALSE(DecodeScoreReply(bad_code, &rout).ok());
  std::string bad_rsv = reply;
  bad_rsv[4 + 2] = 0x01;
  EXPECT_FALSE(DecodeScoreReply(bad_rsv, &rout).ok());
  std::string bad_cls = reply;  // ClassifyReply shares the code check
  EXPECT_FALSE(DecodeClassifyReply(bad_code, &rout).ok());
}

TEST(InferWireTest, OldPeerVersionCutOffForInferFrames) {
  // The v3 handshake is exact-match: a frame carrying an inference type but
  // an older version byte must poison the decoder at the header, so v1/v2
  // peers can never reach the new codecs.
  const auto now = ServeClock::now();
  std::vector<ServiceRequest> requests(1);
  requests[0].task = serve::TaskKind::kRecommend;
  for (uint8_t version : {1, 2}) {
    std::string bytes = EncodeRecommend(1, requests, now);
    bytes[4] = static_cast<char>(version);
    FrameDecoder decoder;
    decoder.Feed(bytes.data(), bytes.size());
    Frame frame;
    std::string error;
    EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kError);
    EXPECT_NE(error.find("version"), std::string::npos) << error;
    // Poisoned: even a valid follow-up frame is refused.
    const std::string good = EncodeControl(FrameType::kPing, 2);
    decoder.Feed(good.data(), good.size());
    EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kError);
  }
}

TEST(FrameDecoderTest, BufferCompaction) {
  // Many small frames through one decoder: the internal buffer must not
  // grow with the total bytes ever fed (compaction reclaims consumed
  // prefixes).
  FrameDecoder decoder;
  Frame frame;
  std::string error;
  const std::string bytes = EncodeControl(FrameType::kPing, 1);
  for (int i = 0; i < 10000; ++i) {
    decoder.Feed(bytes.data(), bytes.size());
    ASSERT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kFrame);
  }
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

}  // namespace
}  // namespace pkgm::net
