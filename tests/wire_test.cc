// Wire-codec robustness: round-trips for every frame type, incremental
// decoding over arbitrary fragmentation, and rejection of hostile input
// (truncation, oversize, corruption) without allocation blowups. These run
// under ASan/UBSan in CI, so "rejected cleanly" also means no UB.
#include "net/wire.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "serve/request.h"

namespace pkgm::net {
namespace {

using serve::ResponseCode;
using serve::ServeClock;
using serve::ServiceForm;
using serve::ServiceRequest;
using serve::ServiceResponse;

std::vector<ServiceRequest> SampleRequests() {
  std::vector<ServiceRequest> requests;
  ServiceRequest a;
  a.item = 7;
  a.mode = core::ServiceMode::kAll;
  a.form = ServiceForm::kCondensed;
  requests.push_back(a);
  ServiceRequest b;
  b.item = 0xdeadbeef;
  b.mode = core::ServiceMode::kRelationOnly;
  b.form = ServiceForm::kSequence;
  b.deadline = ServeClock::now() + std::chrono::milliseconds(50);
  requests.push_back(b);
  return requests;
}

std::vector<ServiceResponse> SampleResponses() {
  std::vector<ServiceResponse> responses;
  ServiceResponse ok;
  ok.code = ResponseCode::kOk;
  ok.cache_hit = true;
  ok.vectors = {{1.5f, -2.25f, 0.0f}, {3.0f}};
  responses.push_back(ok);
  ServiceResponse rejected;
  rejected.code = ResponseCode::kRejected;
  responses.push_back(rejected);
  ServiceResponse empty_vec;
  empty_vec.code = ResponseCode::kOk;
  empty_vec.vectors = {{}};
  responses.push_back(empty_vec);
  return responses;
}

/// Decodes exactly one frame from `bytes`, asserting full consumption.
Frame MustDecode(const std::string& bytes) {
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  std::string error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kFrame)
      << error;
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  return frame;
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vector: 32 zero bytes.
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8a9136aau);
  // "123456789" — the classic check value for CRC32C.
  const char* digits = "123456789";
  EXPECT_EQ(Crc32c(digits, 9), 0xe3069283u);
  // Chaining must equal one-shot.
  EXPECT_EQ(Crc32c(digits + 4, 5, Crc32c(digits, 4)), 0xe3069283u);
}

TEST(WireTest, GetVectorsRoundTrip) {
  const auto now = ServeClock::now();
  const std::vector<ServiceRequest> requests = SampleRequests();
  const std::string bytes = EncodeGetVectors(42, requests, now);
  const Frame frame = MustDecode(bytes);
  EXPECT_EQ(frame.type, FrameType::kGetVectors);
  EXPECT_EQ(frame.correlation_id, 42u);

  std::vector<ServiceRequest> decoded;
  ASSERT_TRUE(DecodeGetVectors(frame.payload, now, &decoded).ok());
  ASSERT_EQ(decoded.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(decoded[i].item, requests[i].item);
    EXPECT_EQ(decoded[i].mode, requests[i].mode);
    EXPECT_EQ(decoded[i].form, requests[i].form);
  }
  // No deadline stays no deadline; a real deadline survives within the
  // microsecond quantization of the wire encoding.
  EXPECT_EQ(decoded[0].deadline, ServeClock::time_point::max());
  const auto skew = decoded[1].deadline - requests[1].deadline;
  EXPECT_LT(std::chrono::abs(skew), std::chrono::microseconds(2));
}

TEST(WireTest, ExpiredDeadlineStaysExpired) {
  std::vector<ServiceRequest> requests(1);
  requests[0].deadline = ServeClock::now() - std::chrono::seconds(5);
  const auto now = ServeClock::now();
  const Frame frame = MustDecode(EncodeGetVectors(1, requests, now));
  std::vector<ServiceRequest> decoded;
  ASSERT_TRUE(DecodeGetVectors(frame.payload, now, &decoded).ok());
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_NE(decoded[0].deadline, ServeClock::time_point::max());
  EXPECT_LE(decoded[0].deadline, now + std::chrono::microseconds(1));
}

TEST(WireTest, VectorsRoundTrip) {
  const std::vector<ServiceResponse> responses = SampleResponses();
  const Frame frame = MustDecode(EncodeVectors(99, responses));
  EXPECT_EQ(frame.type, FrameType::kVectors);
  EXPECT_EQ(frame.correlation_id, 99u);

  std::vector<ServiceResponse> decoded;
  ASSERT_TRUE(DecodeVectors(frame.payload, &decoded).ok());
  ASSERT_EQ(decoded.size(), responses.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(decoded[i].code, responses[i].code);
    EXPECT_EQ(decoded[i].cache_hit, responses[i].cache_hit);
    ASSERT_EQ(decoded[i].vectors.size(), responses[i].vectors.size());
    for (size_t v = 0; v < responses[i].vectors.size(); ++v) {
      // Bit-identical floats across the wire.
      ASSERT_EQ(decoded[i].vectors[v].size(), responses[i].vectors[v].size());
      if (responses[i].vectors[v].size() == 0) continue;  // data() may be null
      EXPECT_EQ(std::memcmp(decoded[i].vectors[v].data(),
                            responses[i].vectors[v].data(),
                            responses[i].vectors[v].size() * sizeof(float)),
                0);
    }
  }
}

TEST(WireTest, ErrorRoundTrip) {
  const Frame frame =
      MustDecode(EncodeError(3, WireCode::kUnsupported, "nope"));
  EXPECT_EQ(frame.type, FrameType::kError);
  WireCode code;
  std::string message;
  ASSERT_TRUE(DecodeError(frame.payload, &code, &message).ok());
  EXPECT_EQ(code, WireCode::kUnsupported);
  EXPECT_EQ(message, "nope");
}

TEST(WireTest, ControlAndStatsRoundTrip) {
  Frame frame = MustDecode(EncodeControl(FrameType::kPing, 5));
  EXPECT_EQ(frame.type, FrameType::kPing);
  EXPECT_TRUE(frame.payload.empty());

  frame = MustDecode(EncodeStatsJson(6, "{\"x\":1}"));
  EXPECT_EQ(frame.type, FrameType::kStatsJson);
  EXPECT_EQ(frame.payload, "{\"x\":1}");
}

TEST(WireTest, CodeMappingRoundTrips) {
  for (ResponseCode code :
       {ResponseCode::kOk, ResponseCode::kRejected,
        ResponseCode::kDeadlineExceeded, ResponseCode::kInvalidItem}) {
    EXPECT_EQ(ResponseCodeFromWire(WireCodeFromResponse(code)), code);
  }
}

TEST(FrameDecoderTest, ByteAtATimeFragmentation) {
  const std::string bytes = EncodeVectors(12, SampleResponses());
  FrameDecoder decoder;
  Frame frame;
  std::string error;
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.Feed(&bytes[i], 1);
    ASSERT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kNeedMore);
  }
  decoder.Feed(&bytes[bytes.size() - 1], 1);
  ASSERT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame.correlation_id, 12u);
}

TEST(FrameDecoderTest, MultipleFramesInOneFeed) {
  std::string bytes = EncodeControl(FrameType::kPing, 1);
  bytes += EncodeControl(FrameType::kPong, 2);
  bytes += EncodeError(3, WireCode::kOk, "");
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  std::string error;
  for (uint64_t want = 1; want <= 3; ++want) {
    ASSERT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kFrame);
    EXPECT_EQ(frame.correlation_id, want);
  }
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kNeedMore);
}

TEST(FrameDecoderTest, BadMagicPoisons) {
  std::string bytes = EncodeControl(FrameType::kPing, 1);
  bytes[0] ^= 0xff;
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  std::string error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kError);
  // Poisoned: even valid bytes afterwards keep failing.
  const std::string good = EncodeControl(FrameType::kPing, 2);
  decoder.Feed(good.data(), good.size());
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kError);
}

TEST(FrameDecoderTest, BadVersionRejected) {
  std::string bytes = EncodeControl(FrameType::kPing, 1);
  bytes[4] = static_cast<char>(kWireVersion + 1);
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  std::string error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kError);
  EXPECT_NE(error.find("version"), std::string::npos);
}

TEST(FrameDecoderTest, NonZeroFlagsRejected) {
  std::string bytes = EncodeControl(FrameType::kPing, 1);
  bytes[6] = 1;
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  std::string error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kError);
}

TEST(FrameDecoderTest, CorruptPayloadFailsCrc) {
  std::string bytes = EncodeStatsJson(1, "{\"stats\":true}");
  bytes[kFrameHeaderBytes + 3] ^= 0x01;  // flip one payload bit
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  std::string error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kError);
  EXPECT_NE(error.find("CRC"), std::string::npos);
}

TEST(FrameDecoderTest, OversizedFrameRejectedBeforeBuffering) {
  // Header declares a payload far over the cap; the decoder must reject on
  // the header alone — long before that many bytes ever arrive.
  std::string bytes = EncodeStatsJson(1, "x");
  const uint32_t huge = 0x7fffffff;
  std::memcpy(&bytes[16], &huge, sizeof(huge));
  FrameDecoder decoder(/*max_frame_bytes=*/1024);
  decoder.Feed(bytes.data(), kFrameHeaderBytes);
  Frame frame;
  std::string error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kError);
  EXPECT_LT(decoder.buffered_bytes(), 1024u);
}

TEST(WireTest, HostileGetVectorsCountRejected) {
  // A count field claiming 2^30 entries against a tiny payload must fail
  // validation without attempting the implied allocation.
  std::string payload;
  const uint32_t hostile = 1u << 30;
  payload.append(reinterpret_cast<const char*>(&hostile), sizeof(hostile));
  payload.append(12, '\0');  // one entry's worth of bytes
  std::vector<ServiceRequest> out;
  EXPECT_FALSE(DecodeGetVectors(payload, ServeClock::now(), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(WireTest, HostileVectorLengthsRejected) {
  // Entry declares num_vectors / len values bigger than the payload.
  for (uint32_t hostile : {1u << 30, 0xffffffffu}) {
    std::string payload;
    const uint32_t count = 1;
    payload.append(reinterpret_cast<const char*>(&count), sizeof(count));
    payload.push_back(0);  // code
    payload.push_back(0);  // flags
    payload.push_back(0);  // reserved
    payload.push_back(0);
    payload.append(reinterpret_cast<const char*>(&hostile), sizeof(hostile));
    std::vector<ServiceResponse> out;
    EXPECT_FALSE(DecodeVectors(payload, &out).ok());
  }
}

TEST(WireTest, TruncatedPayloadsRejected) {
  const auto now = ServeClock::now();
  const std::string get = EncodeGetVectors(1, SampleRequests(), now);
  const std::string_view get_payload =
      std::string_view(get).substr(kFrameHeaderBytes);
  const std::string vec = EncodeVectors(1, SampleResponses());
  const std::string_view vec_payload =
      std::string_view(vec).substr(kFrameHeaderBytes);

  // Every strict prefix must be rejected (never accepted short).
  for (size_t len = 0; len < get_payload.size(); ++len) {
    std::vector<ServiceRequest> out;
    EXPECT_FALSE(
        DecodeGetVectors(get_payload.substr(0, len), now, &out).ok());
  }
  for (size_t len = 0; len < vec_payload.size(); ++len) {
    std::vector<ServiceResponse> out;
    EXPECT_FALSE(DecodeVectors(vec_payload.substr(0, len), &out).ok());
  }
  // Trailing garbage is rejected too.
  {
    std::vector<ServiceRequest> out;
    std::string padded(get_payload);
    padded.push_back('\0');
    EXPECT_FALSE(DecodeGetVectors(padded, now, &out).ok());
  }
  {
    std::vector<ServiceResponse> out;
    std::string padded(vec_payload);
    padded.push_back('\0');
    EXPECT_FALSE(DecodeVectors(padded, &out).ok());
  }
}

TEST(WireTest, BadEnumValuesRejected) {
  const auto now = ServeClock::now();
  std::vector<ServiceRequest> requests(1);
  std::string frame = EncodeGetVectors(1, requests, now);
  std::string payload = frame.substr(kFrameHeaderBytes);
  std::vector<ServiceRequest> out;
  ASSERT_TRUE(DecodeGetVectors(payload, now, &out).ok());

  std::string bad_mode = payload;
  bad_mode[4 + 4] = 0x7f;  // mode byte of entry 0
  EXPECT_FALSE(DecodeGetVectors(bad_mode, now, &out).ok());

  std::string bad_form = payload;
  bad_form[4 + 5] = 0x7f;  // form byte of entry 0
  EXPECT_FALSE(DecodeGetVectors(bad_form, now, &out).ok());
}

TEST(FrameDecoderTest, BufferCompaction) {
  // Many small frames through one decoder: the internal buffer must not
  // grow with the total bytes ever fed (compaction reclaims consumed
  // prefixes).
  FrameDecoder decoder;
  Frame frame;
  std::string error;
  const std::string bytes = EncodeControl(FrameType::kPing, 1);
  for (int i = 0; i < 10000; ++i) {
    decoder.Feed(bytes.data(), bytes.size());
    ASSERT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kFrame);
  }
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

}  // namespace
}  // namespace pkgm::net
