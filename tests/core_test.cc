#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <unordered_map>
#include <vector>

#include "core/gradients.h"
#include "core/link_prediction.h"
#include "core/negative_sampler.h"
#include "core/pkgm_model.h"
#include "core/service.h"
#include "core/service_math.h"
#include "core/sharded_trainer.h"
#include "core/trainer.h"
#include "kg/triple_store.h"
#include "tensor/ops.h"

namespace pkgm::core {
namespace {

PkgmModelOptions SmallModel(uint32_t entities = 20, uint32_t relations = 4,
                            uint32_t dim = 8, bool rel_module = true) {
  PkgmModelOptions opt;
  opt.num_entities = entities;
  opt.num_relations = relations;
  opt.dim = dim;
  opt.use_relation_module = rel_module;
  opt.seed = 11;
  return opt;
}

// A small chain-structured KG for training tests: entities 0..9 are
// "items", 10..19 are "values"; items link to values through relations.
kg::TripleStore SmallKg() {
  kg::TripleStore store;
  for (uint32_t i = 0; i < 10; ++i) {
    store.Add(i, 0, 10 + i % 5);
    store.Add(i, 1, 15 + i % 3);
    if (i % 2 == 0) store.Add(i, 2, 18);
  }
  return store;
}

// ------------------------------------------------------------- PkgmModel --

TEST(PkgmModelTest, ScoreDecomposition) {
  PkgmModel model(SmallModel());
  kg::Triple t{1, 2, 3};
  EXPECT_NEAR(model.Score(t),
              model.TripleScore(t) + model.RelationScore(1, 2), 1e-5);
}

TEST(PkgmModelTest, TripleScoreIsL1OfTranslation) {
  PkgmModel model(SmallModel());
  kg::Triple t{0, 0, 1};
  float expected = 0.0f;
  for (uint32_t j = 0; j < model.dim(); ++j) {
    expected += std::fabs(model.entity(0)[j] + model.relation(0)[j] -
                          model.entity(1)[j]);
  }
  EXPECT_NEAR(model.TripleScore(t), expected, 1e-5);
}

TEST(PkgmModelTest, TripleServiceIsExactlyHPlusR) {
  PkgmModel model(SmallModel());
  std::vector<float> s(model.dim());
  model.TripleService(4, 2, s.data());
  for (uint32_t j = 0; j < model.dim(); ++j) {
    EXPECT_FLOAT_EQ(s[j], model.entity(4)[j] + model.relation(2)[j]);
  }
}

TEST(PkgmModelTest, RelationServiceIsMrHMinusR) {
  PkgmModel model(SmallModel());
  const uint32_t d = model.dim();
  std::vector<float> s(d), mh(d);
  model.RelationService(3, 1, s.data());
  GemvRaw(d, d, model.transfer(1), model.entity(3), mh.data());
  for (uint32_t j = 0; j < d; ++j) {
    EXPECT_NEAR(s[j], mh[j] - model.relation(1)[j], 1e-5);
  }
}

TEST(PkgmModelTest, RelationScoreIsNormOfRelationService) {
  PkgmModel model(SmallModel());
  const uint32_t d = model.dim();
  std::vector<float> s(d);
  model.RelationService(5, 2, s.data());
  EXPECT_NEAR(model.RelationScore(5, 2), L1Norm(d, s.data()), 1e-4);
}

TEST(PkgmModelTest, TransEOnlyModeZeroesRelationModule) {
  PkgmModel model(SmallModel(20, 4, 8, /*rel_module=*/false));
  EXPECT_FLOAT_EQ(model.RelationScore(1, 1), 0.0f);
  std::vector<float> s(model.dim(), 123.0f);
  model.RelationService(1, 1, s.data());
  for (float x : s) EXPECT_FLOAT_EQ(x, 0.0f);
  kg::Triple t{0, 1, 2};
  EXPECT_FLOAT_EQ(model.Score(t), model.TripleScore(t));
}

TEST(PkgmModelTest, NormalizeEntityProjectsToUnitBall) {
  PkgmModel model(SmallModel());
  float* e = model.entity(0);
  for (uint32_t j = 0; j < model.dim(); ++j) e[j] = 10.0f;
  model.NormalizeEntity(0);
  EXPECT_NEAR(L2Norm(model.dim(), e), 1.0f, 1e-5);
}

TEST(PkgmModelTest, CheckpointRoundTrip) {
  PkgmModel model(SmallModel());
  const std::string path = ::testing::TempDir() + "/pkgm_ckpt.bin";
  ASSERT_TRUE(model.SaveToFile(path).ok());
  auto loaded = PkgmModel::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_entities(), model.num_entities());
  EXPECT_EQ(loaded->dim(), model.dim());
  kg::Triple t{3, 1, 7};
  EXPECT_FLOAT_EQ(loaded->Score(t), model.Score(t));
  std::remove(path.c_str());
}

TEST(PkgmModelTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/pkgm_garbage.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[] = "this is not a checkpoint at all";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  auto loaded = PkgmModel::LoadFromFile(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(PkgmModelTest, LoadMissingFileIsIoError) {
  auto loaded = PkgmModel::LoadFromFile("/nonexistent/dir/x.bin");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

// --------------------------------------------------------- NegativeSampler --

TEST(NegativeSamplerTest, CorruptsExactlyOneSlot) {
  kg::TripleStore store = SmallKg();
  NegativeSampler::Options opt;
  opt.num_entities = 20;
  opt.num_relations = 4;
  NegativeSampler sampler(opt, &store);
  Rng rng(3);
  kg::Triple pos{0, 0, 10};
  for (int i = 0; i < 200; ++i) {
    NegativeSample neg = sampler.Sample(pos, &rng);
    int changed = (neg.triple.head != pos.head) +
                  (neg.triple.relation != pos.relation) +
                  (neg.triple.tail != pos.tail);
    EXPECT_EQ(changed, 1);
    switch (neg.slot) {
      case CorruptionSlot::kHead:
        EXPECT_NE(neg.triple.head, pos.head);
        break;
      case CorruptionSlot::kTail:
        EXPECT_NE(neg.triple.tail, pos.tail);
        break;
      case CorruptionSlot::kRelation:
        EXPECT_NE(neg.triple.relation, pos.relation);
        break;
    }
  }
}

TEST(NegativeSamplerTest, FilteredSamplerAvoidsKnownPositives) {
  kg::TripleStore store = SmallKg();
  NegativeSampler::Options opt;
  opt.num_entities = 20;
  opt.num_relations = 4;
  opt.filter_known_positives = true;
  NegativeSampler sampler(opt, &store);
  Rng rng(5);
  kg::Triple pos = store.triples()[0];
  int false_negatives = 0;
  for (int i = 0; i < 500; ++i) {
    NegativeSample neg = sampler.Sample(pos, &rng);
    if (store.Contains(neg.triple)) ++false_negatives;
  }
  // Bounded retries make false negatives possible but very rare.
  EXPECT_LE(false_negatives, 5);
}

TEST(NegativeSamplerTest, RelationCorruptionRateFollowsOption) {
  kg::TripleStore store = SmallKg();
  NegativeSampler::Options opt;
  opt.num_entities = 20;
  opt.num_relations = 4;
  opt.relation_corruption_prob = 0.5;
  opt.filter_known_positives = false;
  NegativeSampler sampler(opt, &store);
  Rng rng(7);
  int rel = 0;
  const int n = 4000;
  kg::Triple pos{0, 0, 10};
  for (int i = 0; i < n; ++i) {
    if (sampler.Sample(pos, &rng).slot == CorruptionSlot::kRelation) ++rel;
  }
  EXPECT_NEAR(rel / static_cast<double>(n), 0.5, 0.05);
}

// --------------------------------------------------------------- Gradients --

TEST(GradientsTest, HingeInactiveWhenNegativeFarWorse) {
  PkgmModel model(SmallModel());
  // Construct pos == neg scores by reusing the same triple; margin 0 makes
  // the hinge exactly 0 (pos + 0 - neg = 0, not > 0).
  kg::Triple t{0, 0, 1};
  SparseGrad grad;
  float hinge = AccumulateHingeGradients(model, t, t, 0.0f, &grad);
  EXPECT_FLOAT_EQ(hinge, 0.0f);
  EXPECT_TRUE(grad.empty());
}

TEST(GradientsTest, FiniteDifferenceOnEntityEmbedding) {
  PkgmModel model(SmallModel(10, 3, 6));
  kg::Triple pos{0, 0, 1};
  kg::Triple neg{0, 0, 2};
  const float margin = 50.0f;  // guarantee the hinge is active everywhere

  SparseGrad grad;
  float hinge = AccumulateHingeGradients(model, pos, neg, margin, &grad);
  ASSERT_GT(hinge, 0.0f);

  auto loss = [&] {
    return static_cast<double>(
        AccumulateHingeGradients(model, pos, neg, margin, nullptr));
  };

  // Check gradients for every touched entity/relation/transfer row.
  const double eps = 1e-3;
  auto check_span = [&](float* values, const std::vector<float>& g) {
    for (size_t i = 0; i < g.size(); ++i) {
      const float saved = values[i];
      values[i] = saved + static_cast<float>(eps);
      const double plus = loss();
      values[i] = saved - static_cast<float>(eps);
      const double minus = loss();
      values[i] = saved;
      const double numeric = (plus - minus) / (2 * eps);
      EXPECT_NEAR(numeric, g[i], 5e-2);
    }
  };
  for (const auto& [id, g] : grad.entities()) check_span(model.entity(id), g);
  for (const auto& [id, g] : grad.relations()) {
    check_span(model.relation(id), g);
  }
  for (const auto& [id, g] : grad.transfers()) {
    check_span(model.transfer(id), g);
  }
}

// ----------------------------------------------------------------- Trainer --

TEST(TrainerTest, HingeDecreasesOverEpochs) {
  kg::TripleStore store = SmallKg();
  PkgmModel model(SmallModel(20, 4, 16));
  TrainerOptions opt;
  opt.batch_size = 8;
  opt.learning_rate = 0.05f;
  opt.margin = 1.0f;
  opt.seed = 3;
  Trainer trainer(&model, &store, opt);
  EpochStats first = trainer.RunEpoch();
  EpochStats last;
  for (int i = 0; i < 30; ++i) last = trainer.RunEpoch();
  EXPECT_LT(last.mean_hinge, first.mean_hinge);
  EXPECT_LT(last.active_pairs, first.active_pairs + 1);
  EXPECT_GT(trainer.global_step(), 0u);
}

TEST(TrainerTest, SgdAlsoLearns) {
  kg::TripleStore store = SmallKg();
  PkgmModel model(SmallModel(20, 4, 16));
  TrainerOptions opt;
  opt.optimizer = OptimizerKind::kSgd;
  opt.learning_rate = 0.1f;
  opt.batch_size = 8;
  opt.seed = 5;
  Trainer trainer(&model, &store, opt);
  EpochStats first = trainer.RunEpoch();
  EpochStats last = trainer.Train(30);
  EXPECT_LT(last.mean_hinge, first.mean_hinge);
}

TEST(TrainerTest, TrainedPositivesScoreBelowRandomNegatives) {
  kg::TripleStore store = SmallKg();
  PkgmModel model(SmallModel(20, 4, 16));
  TrainerOptions opt;
  opt.learning_rate = 0.05f;
  opt.seed = 7;
  Trainer trainer(&model, &store, opt);
  trainer.Train(40);

  Rng rng(9);
  double pos_sum = 0, neg_sum = 0;
  int n = 0;
  for (const kg::Triple& t : store.triples()) {
    pos_sum += model.Score(t);
    kg::Triple corrupted = t;
    corrupted.tail = static_cast<kg::EntityId>(rng.Uniform(20));
    if (store.Contains(corrupted)) continue;
    neg_sum += model.Score(corrupted);
    ++n;
  }
  ASSERT_GT(n, 0);
  EXPECT_LT(pos_sum / n, neg_sum / n);
}

TEST(TrainerTest, RelationServiceNearZeroForOwnedRelations) {
  kg::TripleStore store = SmallKg();
  PkgmModel model(SmallModel(20, 4, 16));
  TrainerOptions opt;
  opt.learning_rate = 0.05f;
  opt.seed = 11;
  Trainer trainer(&model, &store, opt);
  trainer.Train(60);

  // f_R for (h, r) pairs present in the KG must be clearly smaller than for
  // absent pairs (relation 3 is never used by any head).
  double owned = 0, unowned = 0;
  int n_owned = 0, n_unowned = 0;
  for (uint32_t h = 0; h < 10; ++h) {
    owned += model.RelationScore(h, 0);
    ++n_owned;
    unowned += model.RelationScore(h, 3);
    ++n_unowned;
  }
  EXPECT_LT(owned / n_owned, unowned / n_unowned);
}

TEST(ShardedTrainerTest, LearnsLikeSingleThreaded) {
  kg::TripleStore store = SmallKg();
  PkgmModel model(SmallModel(20, 4, 16));
  ShardedTrainerOptions opt;
  opt.num_workers = 3;
  opt.num_shards = 4;
  opt.batch_size = 4;
  opt.learning_rate = 0.1f;
  opt.seed = 13;
  ShardedTrainer trainer(&model, &store, opt);
  EpochStats first = trainer.RunEpoch();
  EpochStats last = trainer.Train(40);
  EXPECT_LT(last.mean_hinge, first.mean_hinge);
  EXPECT_GT(last.triples_per_second, 0.0);
}

// ------------------------------------------------- Fused gradient engine --

// Bit-equality of two models' parameter tables.
bool ModelsBitIdentical(const PkgmModel& a, const PkgmModel& b) {
  const auto same = [](const Mat& x, const Mat& y) {
    return x.size() == y.size() &&
           std::memcmp(x.data(), y.data(), x.size() * sizeof(float)) == 0;
  };
  return same(a.entity_table(), b.entity_table()) &&
         same(a.relation_table(), b.relation_table()) &&
         same(a.transfer_table(), b.transfer_table());
}

TEST(GradientsTest, FusedPathMatchesReferenceBitForBit) {
  // The fused forward+backward (GradArena + dispatch-table kernels) must
  // reproduce the map-based reference exactly: both sides run on the same
  // process-wide kernel table, and every fused composition mirrors the
  // reference's rounding sequence (DESIGN.md §12). Holds under every
  // PKGM_KERNEL CI matrix leg.
  PkgmModel model(SmallModel(30, 5, 24));
  const float margin = 50.0f;  // active hinge for every pair
  Rng rng(123);

  GradArena arena;
  HingeWorkspace ws;
  SparseGrad ref;
  for (int iter = 0; iter < 20; ++iter) {
    kg::Triple pos{static_cast<kg::EntityId>(rng.Uniform(30)),
                   static_cast<kg::RelationId>(rng.Uniform(5)),
                   static_cast<kg::EntityId>(rng.Uniform(30))};
    kg::Triple neg{static_cast<kg::EntityId>(rng.Uniform(30)),
                   pos.relation,
                   static_cast<kg::EntityId>(rng.Uniform(30))};
    const float want = AccumulateHingeGradients(model, pos, neg, margin, &ref);
    const float got = FusedHingeGradients(model, pos, neg, margin,
                                          simd::Active(), &ws, &arena);
    EXPECT_EQ(got, want) << "iter " << iter;
  }

  const auto check_slab = [&](const GradSlab& slab,
                              const std::unordered_map<uint32_t,
                                                       std::vector<float>>& m,
                              const char* what) {
    ASSERT_EQ(slab.size(), m.size()) << what;
    for (size_t i = 0; i < slab.size(); ++i) {
      const auto it = m.find(slab.id_at(i));
      ASSERT_NE(it, m.end()) << what << " id " << slab.id_at(i);
      ASSERT_EQ(it->second.size(), slab.row_size());
      EXPECT_EQ(0, std::memcmp(slab.row_at(i), it->second.data(),
                               slab.row_size() * sizeof(float)))
          << what << " id " << slab.id_at(i);
    }
  };
  check_slab(arena.entities(), ref.entities(), "entities");
  check_slab(arena.relations(), ref.relations(), "relations");
  check_slab(arena.transfers(), ref.transfers(), "transfers");
}

TEST(GradientsTest, GradSlabSurvivesClearAndRehash) {
  GradSlab slab;
  // Enough distinct ids to force several rehashes of the open-addressed
  // index and several slab growths.
  for (uint32_t round = 0; round < 3; ++round) {
    for (uint32_t id = 0; id < 2000; ++id) {
      float* row = slab.Row(id * 7 + round, 4);
      for (int j = 0; j < 4; ++j) row[j] += static_cast<float>(id + j);
    }
    ASSERT_EQ(slab.size(), 2000u);
    // Rows must be zero on first touch after Clear, so the accumulated
    // value is exactly one round's worth.
    for (size_t i = 0; i < slab.size(); ++i) {
      const uint32_t id = slab.id_at(i);
      EXPECT_EQ(slab.row_at(i)[0], static_cast<float>((id - round) / 7));
    }
    slab.Clear();
    ASSERT_TRUE(slab.empty());
  }
}

TEST(TrainerTest, SeededRunsAreBitIdentical) {
  kg::TripleStore store = SmallKg();
  const auto train = [&](PkgmModel* model) {
    TrainerOptions opt;
    opt.batch_size = 8;
    opt.learning_rate = 0.05f;
    opt.seed = 21;
    Trainer trainer(model, &store, opt);
    trainer.Train(5);
  };
  PkgmModel a(SmallModel(20, 4, 16)), b(SmallModel(20, 4, 16));
  train(&a);
  train(&b);
  EXPECT_TRUE(ModelsBitIdentical(a, b));
}

TEST(TrainerTest, EvaluateMeanHingeDoesNotPerturbTraining) {
  // Regression: EvaluateMeanHinge used to draw negatives from the training
  // RNG stream, so a mid-training eval changed the final model. It now owns
  // a derived eval RNG.
  kg::TripleStore store = SmallKg();
  TrainerOptions opt;
  opt.batch_size = 8;
  opt.learning_rate = 0.05f;
  opt.seed = 23;

  PkgmModel plain(SmallModel(20, 4, 16));
  {
    Trainer trainer(&plain, &store, opt);
    trainer.Train(4);
  }
  PkgmModel evaled(SmallModel(20, 4, 16));
  {
    Trainer trainer(&evaled, &store, opt);
    for (int e = 0; e < 4; ++e) {
      trainer.RunEpoch();
      // Interleaved validation must be invisible to the training stream.
      trainer.EvaluateMeanHinge(store.triples());
    }
  }
  EXPECT_TRUE(ModelsBitIdentical(plain, evaled));
}

TEST(ShardedTrainerTest, FinalHingeTracksSingleThreaded) {
  // Loss-parity acceptance: asynchronous striped-hogwild training must
  // converge to (approximately) the same loss as the single-threaded SGD
  // trainer on the same KG with the same hyper-parameters.
  kg::TripleStore store;
  Rng rng(77);
  for (int i = 0; i < 400; ++i) {
    store.Add(static_cast<kg::EntityId>(rng.Uniform(60)),
              static_cast<kg::RelationId>(rng.Uniform(6)),
              static_cast<kg::EntityId>(60 + rng.Uniform(40)));
  }
  const uint32_t epochs = 12;

  PkgmModel single_model(SmallModel(100, 6, 16));
  TrainerOptions topt;
  topt.optimizer = OptimizerKind::kSgd;
  topt.batch_size = 64;
  topt.learning_rate = 0.05f;
  topt.seed = 29;
  Trainer single(&single_model, &store, topt);
  const EpochStats single_last = single.Train(epochs);

  PkgmModel sharded_model(SmallModel(100, 6, 16));
  ShardedTrainerOptions sopt;
  sopt.num_workers = 4;
  sopt.batch_size = 64;
  sopt.learning_rate = 0.05f;
  sopt.seed = 29;
  ShardedTrainer sharded(&sharded_model, &store, sopt);
  const EpochStats sharded_last = sharded.Train(epochs);

  EXPECT_GT(single_last.mean_hinge, 0.0);
  EXPECT_NEAR(sharded_last.mean_hinge, single_last.mean_hinge,
              0.15 * single_last.mean_hinge);
}

// ---------------------------------------------------------- LinkPrediction --

TEST(LinkPredictionTest, PerfectModelRanksFirst) {
  // Hand-craft embeddings so that h + r == t exactly for the test triple
  // and every other entity is far away.
  PkgmModelOptions opt = SmallModel(5, 1, 4, /*rel_module=*/false);
  PkgmModel model(opt);
  for (uint32_t e = 0; e < 5; ++e) {
    for (uint32_t j = 0; j < 4; ++j) {
      model.entity(e)[j] = static_cast<float>(e * 10 + j);
    }
  }
  for (uint32_t j = 0; j < 4; ++j) {
    model.relation(0)[j] = model.entity(3)[j] - model.entity(0)[j];
  }
  kg::TripleStore known;
  known.Add(0, 0, 3);
  LinkPredictionEvaluator::Options eval_opt;
  LinkPredictionEvaluator eval(&model, &known, eval_opt);
  auto result = eval.EvaluateTails({{0, 0, 3}});
  EXPECT_DOUBLE_EQ(result.mrr, 1.0);
  EXPECT_DOUBLE_EQ(result.hits[1], 1.0);
  EXPECT_DOUBLE_EQ(result.mean_rank, 1.0);
}

TEST(LinkPredictionTest, FilteringSkipsKnownTails) {
  // Entity 2 is an even better match than the true tail 3, but (0,0,2) is a
  // known positive, so filtering must skip it.
  PkgmModelOptions opt = SmallModel(5, 1, 2, false);
  PkgmModel model(opt);
  // h + r = 0-vector, so score(e) = L1(e); h itself sits far away so the
  // head does not compete.
  for (uint32_t j = 0; j < 2; ++j) {
    model.entity(0)[j] = 5.0f;
    model.relation(0)[j] = -5.0f;
    model.entity(2)[j] = 0.1f;   // best score
    model.entity(3)[j] = 0.2f;   // true tail: second best
    model.entity(1)[j] = 5.0f;
    model.entity(4)[j] = 5.0f;
  }
  kg::TripleStore known;
  known.Add(0, 0, 2);
  known.Add(0, 0, 3);

  LinkPredictionEvaluator::Options eval_opt;
  eval_opt.filtered = true;
  LinkPredictionEvaluator filtered(&model, &known, eval_opt);
  auto r_filtered = filtered.EvaluateTails({{0, 0, 3}});
  EXPECT_DOUBLE_EQ(r_filtered.hits[1], 1.0);

  eval_opt.filtered = false;
  LinkPredictionEvaluator raw(&model, &known, eval_opt);
  auto r_raw = raw.EvaluateTails({{0, 0, 3}});
  EXPECT_DOUBLE_EQ(r_raw.hits[1], 0.0);
  EXPECT_DOUBLE_EQ(r_raw.mean_rank, 2.0);
}

TEST(LinkPredictionTest, CandidateRestriction) {
  PkgmModelOptions opt = SmallModel(6, 1, 2, false);
  PkgmModel model(opt);
  kg::TripleStore known;
  LinkPredictionEvaluator::Options eval_opt;
  eval_opt.filtered = false;
  LinkPredictionEvaluator eval(&model, &known, eval_opt);
  std::unordered_map<kg::RelationId, std::vector<kg::EntityId>> candidates;
  candidates[0] = {3};  // only the true tail competes
  auto result = eval.EvaluateTails({{0, 0, 3}}, &candidates);
  EXPECT_DOUBLE_EQ(result.hits[1], 1.0);
  EXPECT_DOUBLE_EQ(result.mean_rank, 1.0);
}

TEST(LinkPredictionTest, BatchedScoringMatchesReferencePath) {
  // The blocked batch path must reproduce the per-candidate reference path
  // exactly — same metrics, same tie handling — for every scorer family,
  // including block sizes that do not divide the candidate count.
  for (TripleScorerKind scorer :
       {TripleScorerKind::kTransE, TripleScorerKind::kDistMult,
        TripleScorerKind::kComplEx, TripleScorerKind::kTransH}) {
    PkgmModelOptions opt = SmallModel(30, 3, 8, /*rel_module=*/false);
    opt.scorer = scorer;
    PkgmModel model(opt);
    kg::TripleStore known = SmallKg();
    std::vector<kg::Triple> test = known.triples();

    LinkPredictionEvaluator::Options eval_opt;
    eval_opt.filtered = true;
    eval_opt.num_threads = 1;
    eval_opt.block_size = 7;  // forces a partial final block per triple
    eval_opt.use_batched_scoring = true;
    LinkPredictionEvaluator batched(&model, &known, eval_opt);
    auto r_batched = batched.EvaluateTails(test);

    eval_opt.use_batched_scoring = false;
    LinkPredictionEvaluator reference(&model, &known, eval_opt);
    auto r_reference = reference.EvaluateTails(test);

    EXPECT_DOUBLE_EQ(r_batched.mrr, r_reference.mrr) << "scorer " << (int)scorer;
    EXPECT_DOUBLE_EQ(r_batched.mean_rank, r_reference.mean_rank);
    for (auto& [k, v] : r_reference.hits) {
      EXPECT_DOUBLE_EQ(r_batched.hits.at(k), v);
    }
  }
}

TEST(LinkPredictionTest, MetricsIdenticalForAnyThreadCount) {
  PkgmModelOptions opt = SmallModel(30, 3, 8, /*rel_module=*/false);
  PkgmModel model(opt);
  kg::TripleStore known = SmallKg();
  std::vector<kg::Triple> test = known.triples();

  LinkPredictionEvaluator::Options eval_opt;
  eval_opt.filtered = true;
  eval_opt.num_threads = 1;
  LinkPredictionEvaluator serial(&model, &known, eval_opt);
  auto r1 = serial.EvaluateTails(test);

  for (size_t threads : {2, 4, 7}) {
    eval_opt.num_threads = threads;
    LinkPredictionEvaluator parallel(&model, &known, eval_opt);
    auto rn = parallel.EvaluateTails(test);
    EXPECT_DOUBLE_EQ(rn.mrr, r1.mrr) << threads << " threads";
    EXPECT_DOUBLE_EQ(rn.mean_rank, r1.mean_rank) << threads << " threads";
    for (auto& [k, v] : r1.hits) EXPECT_DOUBLE_EQ(rn.hits.at(k), v);
  }
}

// ------------------------------------------------------------ ServiceMath --

TEST(ServiceMathTest, ComplExQueryWritesTrailingCoordForOddDim) {
  // Regression: the ComplEx branch of TripleQueryFromRows paired halves
  // [0, dim/2) with [dim/2, dim) and left out[dim-1] unwritten when dim is
  // odd. The unpaired trailing coordinate is treated as purely real.
  const uint32_t dim = 7;
  std::vector<float> h(dim), r(dim);
  for (uint32_t i = 0; i < dim; ++i) {
    h[i] = 0.5f + static_cast<float>(i);
    r[i] = 2.0f - 0.25f * static_cast<float>(i);
  }
  const float sentinel = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> out(dim, sentinel);
  TripleQueryFromRows(TripleScorerKind::kComplEx, dim, h.data(), r.data(),
                      nullptr, out.data());
  for (uint32_t i = 0; i < dim; ++i) {
    EXPECT_FALSE(std::isnan(out[i])) << "out[" << i << "] left unwritten";
  }
  EXPECT_FLOAT_EQ(out[dim - 1], h[dim - 1] * r[dim - 1]);
  // The paired coordinates keep the even-dim complex product layout.
  const uint32_t half = dim / 2;
  for (uint32_t i = 0; i < half; ++i) {
    EXPECT_FLOAT_EQ(out[i], h[i] * r[i] - h[half + i] * r[half + i]);
    EXPECT_FLOAT_EQ(out[half + i], h[i] * r[half + i] + h[half + i] * r[i]);
  }
}

TEST(ServiceMathTest, BlockScoringMatchesSingleRowDistance) {
  // The bit-for-bit single-vs-batch contract at the service_math level.
  const uint32_t dim = 9;
  const size_t rows = 6;
  std::vector<float> q(dim), w(dim), block(rows * dim), scratch(dim);
  for (uint32_t i = 0; i < dim; ++i) {
    q[i] = 0.3f * static_cast<float>(i) - 1.0f;
    w[i] = (i % 2 == 0) ? 0.4f : -0.2f;
  }
  for (size_t i = 0; i < block.size(); ++i) {
    block[i] = 0.17f * static_cast<float>((i * 7) % 11) - 0.8f;
  }
  for (TripleScorerKind scorer :
       {TripleScorerKind::kTransE, TripleScorerKind::kDistMult,
        TripleScorerKind::kComplEx, TripleScorerKind::kTransH}) {
    std::vector<float> rows_copy = block;  // the block path may clobber rows
    std::vector<float> out(rows);
    ScoreTailCandidatesBlock(scorer, dim, q.data(), w.data(), rows_copy.data(),
                             rows, out.data());
    for (size_t i = 0; i < rows; ++i) {
      const float single =
          TailDistanceFromRows(scorer, dim, w.data(), q.data(),
                               block.data() + i * dim, scratch.data());
      EXPECT_EQ(out[i], single) << "scorer " << (int)scorer << " row " << i;
    }
  }
}

// ---------------------------------------------------------------- Service --

TEST(ServiceTest, SequenceLengthsPerMode) {
  PkgmModel model(SmallModel());
  ServiceVectorProvider provider(&model, {0, 1}, {{0, 1, 2}, {1}});
  EXPECT_EQ(provider.Sequence(0, ServiceMode::kAll).size(), 6u);
  EXPECT_EQ(provider.Sequence(0, ServiceMode::kTripleOnly).size(), 3u);
  EXPECT_EQ(provider.Sequence(0, ServiceMode::kRelationOnly).size(), 3u);
  EXPECT_EQ(provider.Sequence(1, ServiceMode::kAll).size(), 2u);
  EXPECT_EQ(provider.NumKeyRelations(0), 3u);
}

TEST(ServiceTest, SequenceMatchesModelServices) {
  PkgmModel model(SmallModel());
  ServiceVectorProvider provider(&model, {4}, {{0, 2}});
  auto seq = provider.Sequence(0, ServiceMode::kAll);
  const uint32_t d = model.dim();
  std::vector<float> expected(d);
  model.TripleService(4, 0, expected.data());
  for (uint32_t j = 0; j < d; ++j) EXPECT_FLOAT_EQ(seq[0][j], expected[j]);
  model.TripleService(4, 2, expected.data());
  for (uint32_t j = 0; j < d; ++j) EXPECT_FLOAT_EQ(seq[1][j], expected[j]);
  model.RelationService(4, 0, expected.data());
  for (uint32_t j = 0; j < d; ++j) EXPECT_FLOAT_EQ(seq[2][j], expected[j]);
  model.RelationService(4, 2, expected.data());
  for (uint32_t j = 0; j < d; ++j) EXPECT_FLOAT_EQ(seq[3][j], expected[j]);
}

TEST(ServiceTest, CondensedIsMeanOfConcatenatedPairs) {
  PkgmModel model(SmallModel());
  ServiceVectorProvider provider(&model, {2}, {{0, 1}});
  const uint32_t d = model.dim();
  Vec s = provider.Condensed(0, ServiceMode::kAll);
  ASSERT_EQ(s.size(), 2 * d);

  std::vector<float> t0(d), t1(d), r0(d), r1(d);
  model.TripleService(2, 0, t0.data());
  model.TripleService(2, 1, t1.data());
  model.RelationService(2, 0, r0.data());
  model.RelationService(2, 1, r1.data());
  for (uint32_t j = 0; j < d; ++j) {
    EXPECT_NEAR(s[j], (t0[j] + t1[j]) / 2.0f, 1e-5);
    EXPECT_NEAR(s[d + j], (r0[j] + r1[j]) / 2.0f, 1e-5);
  }
}

TEST(ServiceTest, CondensedSingleModuleDims) {
  PkgmModel model(SmallModel());
  ServiceVectorProvider provider(&model, {2}, {{0, 1}});
  EXPECT_EQ(provider.Condensed(0, ServiceMode::kTripleOnly).size(),
            model.dim());
  EXPECT_EQ(provider.Condensed(0, ServiceMode::kRelationOnly).size(),
            model.dim());
  EXPECT_EQ(provider.CondensedDim(ServiceMode::kAll), 2 * model.dim());
}

TEST(ServiceTest, EmptyKeyRelationsGiveZeroVector) {
  PkgmModel model(SmallModel());
  ServiceVectorProvider provider(&model, {0}, {{}});
  Vec s = provider.Condensed(0, ServiceMode::kAll);
  for (float x : s) EXPECT_FLOAT_EQ(x, 0.0f);
  EXPECT_TRUE(provider.Sequence(0, ServiceMode::kAll).empty());
}

TEST(ServiceTest, EmptyKeyRelationsPerModeDimsAndZeros) {
  PkgmModel model(SmallModel());
  // Item 1 has relations, item 0 has none — empty lists are legal and must
  // serve deterministic zeros at the mode's dimension.
  ServiceVectorProvider provider(&model, {0, 1}, {{}, {0, 2}});
  for (ServiceMode mode : {ServiceMode::kTripleOnly, ServiceMode::kRelationOnly,
                           ServiceMode::kAll}) {
    EXPECT_TRUE(provider.Sequence(0, mode).empty());
    Vec s = provider.Condensed(0, mode);
    EXPECT_EQ(s.size(), provider.CondensedDim(mode));
    for (float x : s) EXPECT_FLOAT_EQ(x, 0.0f);
  }
}

TEST(ServiceTest, CondensedDimAgreesWithCondensedOutput) {
  PkgmModel model(SmallModel());
  ServiceVectorProvider provider(&model, {3}, {{0, 1, 3}});
  EXPECT_EQ(provider.CondensedDim(ServiceMode::kAll), 2 * model.dim());
  EXPECT_EQ(provider.CondensedDim(ServiceMode::kTripleOnly), model.dim());
  EXPECT_EQ(provider.CondensedDim(ServiceMode::kRelationOnly), model.dim());
  for (ServiceMode mode : {ServiceMode::kTripleOnly, ServiceMode::kRelationOnly,
                           ServiceMode::kAll}) {
    EXPECT_EQ(provider.Condensed(0, mode).size(), provider.CondensedDim(mode));
    EXPECT_EQ(provider.Sequence(0, mode).size(),
              mode == ServiceMode::kAll ? 6u : 3u);
  }
}

TEST(ServiceTest, SequenceTripleBlockPrecedesRelationBlock) {
  PkgmModel model(SmallModel());
  ServiceVectorProvider provider(&model, {5}, {{1, 0, 2}});
  const auto all = provider.Sequence(0, ServiceMode::kAll);
  const auto triple = provider.Sequence(0, ServiceMode::kTripleOnly);
  const auto relation = provider.Sequence(0, ServiceMode::kRelationOnly);
  ASSERT_EQ(all.size(), triple.size() + relation.size());
  // Fig. 2 layout: [S_T(r_1)..S_T(r_k), S_R(r_1)..S_R(r_k)], preserving the
  // key-relation order within each block.
  for (size_t i = 0; i < triple.size(); ++i) EXPECT_EQ(all[i], triple[i]);
  for (size_t i = 0; i < relation.size(); ++i) {
    EXPECT_EQ(all[triple.size() + i], relation[i]);
  }
}

// Property sweep: service identity S_T(h,r) = h + r holds for every (h, r).
class ServiceIdentitySweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ServiceIdentitySweep, TripleServiceIdentity) {
  PkgmModel model(SmallModel(12, 5, 8));
  const uint32_t h = GetParam();
  for (uint32_t r = 0; r < 5; ++r) {
    std::vector<float> s(8);
    model.TripleService(h, r, s.data());
    for (uint32_t j = 0; j < 8; ++j) {
      EXPECT_FLOAT_EQ(s[j], model.entity(h)[j] + model.relation(r)[j]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Heads, ServiceIdentitySweep,
                         ::testing::Values(0, 1, 5, 11));

// ---------------------------------------------------------------------------
// GradArena serialization (the kPushGrads wire payload)
// ---------------------------------------------------------------------------

// Fills an arena with a deterministic mix of rows across all four slabs,
// including negative-zero payloads (the bit-exactness trap: -0.0f + 0.0f
// flushes to +0.0f, so fresh rows must be copied, not accumulated).
void FillSampleArena(GradArena* arena, uint32_t dim) {
  const uint32_t ent_ids[] = {4, 0, 9, 2};
  for (size_t i = 0; i < 4; ++i) {
    float* row = arena->Entity(ent_ids[i], dim);
    for (uint32_t d = 0; d < dim; ++d) {
      row[d] = static_cast<float>(i + 1) * 0.25f - static_cast<float>(d);
    }
  }
  arena->Entity(4, dim)[0] = -0.0f;
  float* rel = arena->Relation(1, dim);
  for (uint32_t d = 0; d < dim; ++d) rel[d] = -1.5f * static_cast<float>(d);
  float* tr = arena->Transfer(3, dim * dim);
  for (uint32_t d = 0; d < dim * dim; ++d) {
    tr[d] = 0.001f * static_cast<float>(d) - 0.02f;
  }
  // Hyperplanes left empty: an empty slab must round-trip too.
}

bool SlabsBitEqual(const GradSlab& a, const GradSlab& b) {
  if (a.size() != b.size() || a.row_size() != b.row_size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.id_at(i) != b.id_at(i)) return false;
    if (std::memcmp(a.row_at(i), b.row_at(i),
                    a.row_size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

TEST(GradArenaBlobTest, RoundTripBitExact) {
  const uint32_t dim = 8;
  GradArena arena;
  FillSampleArena(&arena, dim);

  std::string blob;
  const size_t written = SerializeGradArena(arena, &blob);
  EXPECT_EQ(written, 6u);  // 4 entities + 1 relation + 1 transfer

  GradArena decoded;
  uint64_t applied = 0;
  ASSERT_TRUE(DeserializeGradArena(blob, &decoded, &applied).ok());
  EXPECT_EQ(applied, written);
  // Bit-exact: same ids in the same first-touch order, same float bits —
  // including the -0.0f payload.
  EXPECT_TRUE(SlabsBitEqual(arena.entities(), decoded.entities()));
  EXPECT_TRUE(SlabsBitEqual(arena.relations(), decoded.relations()));
  EXPECT_TRUE(SlabsBitEqual(arena.transfers(), decoded.transfers()));
  EXPECT_TRUE(decoded.hyperplanes().empty());
  EXPECT_TRUE(std::signbit(decoded.entities().row_at(0)[0]));
}

TEST(GradArenaBlobTest, DeserializeAccumulatesExistingRows) {
  const uint32_t dim = 4;
  GradArena a;
  a.Entity(7, dim)[0] = 1.0f;
  a.Entity(7, dim)[3] = -2.0f;
  std::string blob;
  SerializeGradArena(a, &blob);

  // Deserializing the same blob twice into one arena: second pass finds
  // the rows present and adds element-wise.
  GradArena merged;
  ASSERT_TRUE(DeserializeGradArena(blob, &merged).ok());
  ASSERT_TRUE(DeserializeGradArena(blob, &merged).ok());
  ASSERT_EQ(merged.entities().size(), 1u);
  EXPECT_EQ(merged.entities().row_at(0)[0], 2.0f);
  EXPECT_EQ(merged.entities().row_at(0)[3], -4.0f);
}

TEST(GradArenaBlobTest, ShardFilteredSlices) {
  const uint32_t dim = 4;
  GradArena arena;
  for (uint32_t id = 0; id < 10; ++id) {
    arena.Entity(id, dim)[0] = static_cast<float>(id) + 0.5f;
  }
  arena.Relation(0, dim)[1] = 1.0f;
  arena.Relation(1, dim)[1] = 2.0f;
  arena.Relation(2, dim)[1] = 3.0f;
  arena.Transfer(1, dim * dim)[0] = 4.0f;
  arena.Hyperplane(2, dim)[2] = 5.0f;

  const uint32_t num_shards = 3;
  size_t total = 0;
  GradArena merged;
  for (uint32_t s = 0; s < num_shards; ++s) {
    std::string blob;
    const size_t rows = SerializeGradArena(arena, s, num_shards, &blob);
    total += rows;
    GradArena slice;
    ASSERT_TRUE(DeserializeGradArena(blob, &slice).ok());
    // Every row in the slice belongs to shard s (relation-keyed tables
    // included).
    for (size_t i = 0; i < slice.entities().size(); ++i) {
      EXPECT_EQ(slice.entities().id_at(i) % num_shards, s);
    }
    for (size_t i = 0; i < slice.relations().size(); ++i) {
      EXPECT_EQ(slice.relations().id_at(i) % num_shards, s);
    }
    for (size_t i = 0; i < slice.transfers().size(); ++i) {
      EXPECT_EQ(slice.transfers().id_at(i) % num_shards, s);
    }
    for (size_t i = 0; i < slice.hyperplanes().size(); ++i) {
      EXPECT_EQ(slice.hyperplanes().id_at(i) % num_shards, s);
    }
    ASSERT_TRUE(DeserializeGradArena(blob, &merged).ok());
  }
  // The shard slices partition the arena: no row lost, none duplicated.
  EXPECT_EQ(total, 10u + 3u + 1u + 1u);
  EXPECT_EQ(merged.entities().size(), 10u);
  EXPECT_EQ(merged.relations().size(), 3u);
  for (uint32_t id = 0; id < 10; ++id) {
    // Ids arrive shard-grouped; find each and check the payload survived.
    bool found = false;
    for (size_t i = 0; i < merged.entities().size(); ++i) {
      if (merged.entities().id_at(i) == id) {
        EXPECT_EQ(merged.entities().row_at(i)[0],
                  static_cast<float>(id) + 0.5f);
        found = true;
      }
    }
    EXPECT_TRUE(found) << "entity " << id;
  }

  // An empty slice returns 0 so the worker can skip the push.
  GradArena lone;
  lone.Entity(4, dim)[0] = 1.0f;
  std::string blob;
  EXPECT_EQ(SerializeGradArena(lone, 0, 3, &blob), 0u);  // 4 % 3 == 1
  blob.clear();
  EXPECT_EQ(SerializeGradArena(lone, 1, 3, &blob), 1u);
}

TEST(GradArenaBlobTest, CorruptionRejected) {
  const uint32_t dim = 8;
  GradArena arena;
  FillSampleArena(&arena, dim);
  std::string blob;
  SerializeGradArena(arena, &blob);

  GradArena sink;
  // Baseline: the pristine blob parses.
  ASSERT_TRUE(DeserializeGradArena(blob, &sink).ok());

  {  // Bad magic.
    std::string bad = blob;
    bad[0] ^= 0x01;
    GradArena g;
    EXPECT_FALSE(DeserializeGradArena(bad, &g).ok());
  }
  {  // Wrong version.
    std::string bad = blob;
    bad[4] = static_cast<char>(kGradArenaBlobVersion + 1);
    GradArena g;
    EXPECT_FALSE(DeserializeGradArena(bad, &g).ok());
  }
  {  // Non-zero reserved bits.
    std::string bad = blob;
    bad[6] = 0x01;
    GradArena g;
    EXPECT_FALSE(DeserializeGradArena(bad, &g).ok());
  }
  {  // Every strict prefix is truncation.
    for (size_t len = 0; len < blob.size(); ++len) {
      GradArena g;
      EXPECT_FALSE(DeserializeGradArena(blob.substr(0, len), &g).ok())
          << "prefix " << len;
    }
  }
  {  // Trailing garbage.
    std::string bad = blob;
    bad.push_back('\0');
    GradArena g;
    EXPECT_FALSE(DeserializeGradArena(bad, &g).ok());
  }
  {  // A count that promises more rows than the bytes can hold must be
     // rejected before allocation.
    std::string bad = blob;
    const uint32_t huge = 0x7fffffffu;
    std::memcpy(&bad[8 + 4], &huge, 4);  // entity slab count
    GradArena g;
    EXPECT_FALSE(DeserializeGradArena(bad, &g).ok());
  }
  {  // row_size disagreeing with a non-empty target slab.
    GradArena g;
    g.Entity(1, dim + 1)[0] = 1.0f;  // pre-existing rows at a wider dim
    EXPECT_FALSE(DeserializeGradArena(blob, &g).ok());
  }
}

}  // namespace
}  // namespace pkgm::core
