// Tests for the pluggable triple-query scorers (TransE / DistMult /
// ComplEx): closed-form score checks, query-vector/tail-distance
// consistency, finite-difference gradient verification of the joint hinge
// for every family, training convergence, link prediction, and checkpoint
// round-trips.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/gradients.h"
#include "core/link_prediction.h"
#include "core/pkgm_model.h"
#include "core/trainer.h"
#include "kg/triple_store.h"
#include "tensor/ops.h"

namespace pkgm::core {
namespace {

PkgmModelOptions Options(TripleScorerKind scorer, uint32_t dim = 8,
                         bool rel_module = true) {
  PkgmModelOptions opt;
  opt.num_entities = 20;
  opt.num_relations = 4;
  opt.dim = dim;
  opt.scorer = scorer;
  opt.use_relation_module = rel_module;
  opt.seed = 31;
  return opt;
}

kg::TripleStore SmallKg() {
  kg::TripleStore store;
  for (uint32_t i = 0; i < 10; ++i) {
    store.Add(i, 0, 10 + i % 5);
    store.Add(i, 1, 15 + i % 3);
    if (i % 2 == 0) store.Add(i, 2, 18);
  }
  return store;
}

// ----------------------------------------------------- closed-form scores --

TEST(ScorerTest, DistMultMatchesManualTrilinear) {
  PkgmModel model(Options(TripleScorerKind::kDistMult, 4));
  kg::Triple t{1, 2, 3};
  float expected = 0;
  for (uint32_t i = 0; i < 4; ++i) {
    expected += model.entity(1)[i] * model.relation(2)[i] * model.entity(3)[i];
  }
  EXPECT_NEAR(model.TripleScore(t), -expected, 1e-5);
}

TEST(ScorerTest, ComplExMatchesManualComplexProduct) {
  PkgmModel model(Options(TripleScorerKind::kComplEx, 6));
  kg::Triple t{0, 1, 2};
  const float* h = model.entity(0);
  const float* r = model.relation(1);
  const float* tl = model.entity(2);
  // Re<h, r, conj(t)> with halves [re; im].
  float expected = 0;
  for (uint32_t i = 0; i < 3; ++i) {
    const float hr_re = h[i] * r[i] - h[3 + i] * r[3 + i];
    const float hr_im = h[i] * r[3 + i] + h[3 + i] * r[i];
    expected += hr_re * tl[i] + hr_im * tl[3 + i];
  }
  EXPECT_NEAR(model.TripleScore(t), -expected, 1e-5);
}

TEST(ScorerTest, ComplExRequiresEvenDim) {
  EXPECT_DEATH(PkgmModel model(Options(TripleScorerKind::kComplEx, 7)),
               "even dimension");
}

// ---------------------------------- query vector / tail distance identity --

class ScorerSweep : public ::testing::TestWithParam<TripleScorerKind> {};

TEST_P(ScorerSweep, QueryVectorDistanceEqualsTripleScore) {
  PkgmModel model(Options(GetParam(), 8));
  std::vector<float> q(8);
  for (kg::EntityId h = 0; h < 5; ++h) {
    for (kg::RelationId r = 0; r < 4; ++r) {
      model.TripleQueryVector(h, r, q.data());
      for (kg::EntityId t = 10; t < 15; ++t) {
        EXPECT_NEAR(model.TailDistance(r, q.data(), model.entity(t)),
                    model.TripleScore({h, r, t}), 1e-4);
      }
    }
  }
}

TEST_P(ScorerSweep, TripleServiceAliasesQueryVector) {
  PkgmModel model(Options(GetParam(), 8));
  std::vector<float> a(8), b(8);
  model.TripleService(3, 2, a.data());
  model.TripleQueryVector(3, 2, b.data());
  for (uint32_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

// -------------------------------------------------- gradient verification --

TEST_P(ScorerSweep, HingeGradientsMatchFiniteDifference) {
  PkgmModel model(Options(GetParam(), 6));
  kg::Triple pos{0, 0, 1};
  kg::Triple neg{0, 0, 2};
  const float margin = 50.0f;  // keep the hinge active

  SparseGrad grad;
  float hinge = AccumulateHingeGradients(model, pos, neg, margin, &grad);
  ASSERT_GT(hinge, 0.0f);

  auto loss = [&] {
    return static_cast<double>(
        AccumulateHingeGradients(model, pos, neg, margin, nullptr));
  };
  const double eps = 1e-3;
  auto check_span = [&](float* values, const std::vector<float>& g) {
    for (size_t i = 0; i < g.size(); ++i) {
      const float saved = values[i];
      values[i] = saved + static_cast<float>(eps);
      const double plus = loss();
      values[i] = saved - static_cast<float>(eps);
      const double minus = loss();
      values[i] = saved;
      EXPECT_NEAR((plus - minus) / (2 * eps), g[i], 5e-2);
    }
  };
  for (const auto& [id, g] : grad.entities()) check_span(model.entity(id), g);
  for (const auto& [id, g] : grad.relations()) {
    check_span(model.relation(id), g);
  }
  for (const auto& [id, g] : grad.transfers()) {
    check_span(model.transfer(id), g);
  }
  for (const auto& [id, g] : grad.hyperplanes()) {
    check_span(model.hyperplane(id), g);
  }
}

// ----------------------------------------------------------- end-to-end ----

TEST_P(ScorerSweep, TrainingReducesHinge) {
  kg::TripleStore store = SmallKg();
  PkgmModelOptions opt = Options(GetParam(), 16);
  PkgmModel model(opt);
  TrainerOptions topt;
  topt.learning_rate = 0.02f;
  topt.margin = 1.0f;
  topt.batch_size = 8;
  topt.seed = 5;
  Trainer trainer(&model, &store, topt);
  EpochStats first = trainer.RunEpoch();
  EpochStats last = trainer.Train(40);
  EXPECT_LT(last.mean_hinge, first.mean_hinge);
}

TEST_P(ScorerSweep, TrainedModelRanksTrueTailsWell) {
  kg::TripleStore store = SmallKg();
  PkgmModelOptions opt = Options(GetParam(), 16);
  PkgmModel model(opt);
  TrainerOptions topt;
  topt.learning_rate = 0.02f;
  topt.margin = 1.0f;
  topt.batch_size = 8;
  topt.seed = 7;
  Trainer trainer(&model, &store, topt);
  trainer.Train(80);

  LinkPredictionEvaluator::Options eval_opt;
  eval_opt.filtered = true;
  LinkPredictionEvaluator eval(&model, &store, eval_opt);
  auto result = eval.EvaluateTails(store.triples());
  // 20 entities: chance filtered MRR is well under 0.3; trained models
  // should rank the true (observed) tails near the top.
  EXPECT_GT(result.mrr, 0.5) << "scorer " << static_cast<int>(GetParam());
}

TEST_P(ScorerSweep, CheckpointRoundTripPreservesScorer) {
  PkgmModel model(Options(GetParam(), 8));
  const std::string path = ::testing::TempDir() + "/scorer_ckpt.bin";
  ASSERT_TRUE(model.SaveToFile(path).ok());
  auto loaded = PkgmModel::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->scorer(), GetParam());
  kg::Triple t{2, 1, 9};
  EXPECT_FLOAT_EQ(loaded->Score(t), model.Score(t));
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllScorers, ScorerSweep,
                         ::testing::Values(TripleScorerKind::kTransE,
                                           TripleScorerKind::kDistMult,
                                           TripleScorerKind::kComplEx,
                                           TripleScorerKind::kTransH));

// --------------------------------------------------------- TransH extras --

TEST(TransHTest, HyperplanesStayUnitNormDuringTraining) {
  kg::TripleStore store = SmallKg();
  PkgmModelOptions opt = Options(TripleScorerKind::kTransH, 8);
  PkgmModel model(opt);
  TrainerOptions topt;
  topt.learning_rate = 0.05f;
  topt.batch_size = 8;
  topt.seed = 3;
  Trainer trainer(&model, &store, topt);
  trainer.Train(10);
  for (uint32_t r = 0; r < model.num_relations(); ++r) {
    EXPECT_NEAR(L2Norm(model.dim(), model.hyperplane(r)), 1.0f, 1e-4);
  }
}

TEST(TransHTest, ProjectionReducesToTransEWhenOrthogonal) {
  // If w is orthogonal to h, r and t, TransH == TransE on that triple.
  PkgmModelOptions opt = Options(TripleScorerKind::kTransH, 4);
  PkgmModel model(opt);
  // h, t, r live in dims 0..2; w = e3.
  float* h = model.entity(0);
  float* tl = model.entity(1);
  float* r = model.relation(0);
  float* w = model.hyperplane(0);
  const float hv[4] = {0.3f, -0.2f, 0.5f, 0.0f};
  const float tv[4] = {0.1f, 0.4f, -0.3f, 0.0f};
  const float rv[4] = {-0.2f, 0.6f, 0.1f, 0.0f};
  const float wv[4] = {0.0f, 0.0f, 0.0f, 1.0f};
  for (int i = 0; i < 4; ++i) {
    h[i] = hv[i];
    tl[i] = tv[i];
    r[i] = rv[i];
    w[i] = wv[i];
  }
  float expected = 0;
  for (int i = 0; i < 4; ++i) expected += std::fabs(hv[i] + rv[i] - tv[i]);
  EXPECT_NEAR(model.TripleScore({0, 0, 1}), expected, 1e-5);
}

}  // namespace
}  // namespace pkgm::core
