#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "util/histogram.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace pkgm {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing entity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing entity");
  EXPECT_EQ(s.ToString(), "NotFound: missing entity");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::AlreadyExists("").code(),   Status::OutOfRange("").code(),
      Status::FailedPrecondition("").code(), Status::IoError("").code(),
      Status::Corruption("").code(),      Status::Unimplemented("").code(),
      Status::Internal("").code()};
  EXPECT_EQ(codes.size(), 9u);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::IoError("disk on fire"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kIoError);
}

Status FailsThenPropagates() {
  PKGM_RETURN_IF_ERROR(Status::Corruption("inner"));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = FailsThenPropagates();
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformFloatBounds) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    float f = rng.UniformFloat();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  auto s = rng.SampleWithoutReplacement(100, 30);
  std::set<uint64_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 30u);
  for (uint64_t x : s) EXPECT_LT(x, 100u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(31);
  auto s = rng.SampleWithoutReplacement(10, 10);
  std::set<uint64_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 10u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(37);
  Rng child = a.Fork();
  // Parent and child should not be producing identical sequences.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == child.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(ZipfSamplerTest, Exponent0IsUniformish) {
  Rng rng(41);
  ZipfSampler sampler(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(&rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02);
  }
}

TEST(ZipfSamplerTest, SkewFavorsHead) {
  Rng rng(43);
  ZipfSampler sampler(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[sampler.Sample(&rng)];
  EXPECT_GT(counts[0], counts[50] * 5);
  EXPECT_GT(counts[0], counts[10]);
}

TEST(ZipfSamplerTest, AliasSampleMatchesInverseCdfShape) {
  // Sample() is the O(1) alias-table path; SampleInverseCdf() is the old
  // binary-search oracle. They consume randomness differently, so compare
  // empirical rank frequencies, not draw-for-draw equality.
  const uint64_t n_ranks = 50;
  ZipfSampler sampler(n_ranks, 1.1);
  const int draws = 100000;
  std::vector<double> alias_freq(n_ranks, 0.0), cdf_freq(n_ranks, 0.0);
  {
    Rng rng(97);
    for (int i = 0; i < draws; ++i) ++alias_freq[sampler.Sample(&rng)];
  }
  {
    Rng rng(98);
    for (int i = 0; i < draws; ++i) ++cdf_freq[sampler.SampleInverseCdf(&rng)];
  }
  for (uint64_t r = 0; r < n_ranks; ++r) {
    alias_freq[r] /= draws;
    cdf_freq[r] /= draws;
  }
  // Head ranks carry enough mass for tight relative agreement; the tail
  // gets an absolute tolerance.
  for (uint64_t r = 0; r < 5; ++r) {
    EXPECT_NEAR(alias_freq[r], cdf_freq[r], cdf_freq[r] * 0.1 + 1e-3)
        << "rank " << r;
  }
  double total_variation = 0.0;
  for (uint64_t r = 0; r < n_ranks; ++r) {
    total_variation += std::abs(alias_freq[r] - cdf_freq[r]);
  }
  EXPECT_LT(0.5 * total_variation, 0.02);
}

TEST(AliasSamplerTest, MatchesWeights) {
  Rng rng(47);
  AliasSampler sampler({1.0, 2.0, 4.0, 1.0});
  std::vector<int> counts(4, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(&rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.125, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.25, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.5, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.125, 0.01);
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  Rng rng(53);
  AliasSampler sampler({0.0, 1.0, 0.0});
  for (int i = 0; i < 5000; ++i) EXPECT_EQ(sampler.Sample(&rng), 1u);
}

// Property sweep: Uniform(n) is unbiased for various n (chi-square-lite).
class RngUniformSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngUniformSweep, RoughlyUniform) {
  const uint64_t n = GetParam();
  Rng rng(1000 + n);
  std::vector<uint64_t> counts(n, 0);
  const uint64_t draws = 20000;
  for (uint64_t i = 0; i < draws; ++i) ++counts[rng.Uniform(n)];
  const double expected = static_cast<double>(draws) / static_cast<double>(n);
  for (uint64_t c : counts) {
    EXPECT_GT(static_cast<double>(c), expected * 0.6);
    EXPECT_LT(static_cast<double>(c), expected * 1.4);
  }
}

INSTANTIATE_TEST_SUITE_P(Ns, RngUniformSweep,
                         ::testing::Values(2, 3, 7, 16, 33));

// ----------------------------------------------------------- string_util --

TEST(StringUtilTest, SplitBasic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringUtilTest, SplitPreservesEmpty) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, SplitWhitespaceSkipsRuns) {
  EXPECT_EQ(SplitWhitespace("  foo \t bar\nbaz  "),
            (std::vector<std::string>{"foo", "bar", "baz"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n"), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(StringUtilTest, ThousandsSeparators) {
  EXPECT_EQ(WithThousandsSeparators(0), "0");
  EXPECT_EQ(WithThousandsSeparators(999), "999");
  EXPECT_EQ(WithThousandsSeparators(1000), "1,000");
  EXPECT_EQ(WithThousandsSeparators(1234567), "1,234,567");
  EXPECT_EQ(WithThousandsSeparators(1366109966ull), "1,366,109,966");
}

TEST(StringUtilTest, ToLower) { EXPECT_EQ(ToLower("AbC9"), "abc9"); }

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ParallelForCoversIndexSpace) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmpty) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ParallelForUnderContention) {
  // n ≫ threads: every index lands exactly once in its own slot, and the
  // ParallelFor return (built on Wait()) really drains all in-flight work —
  // summing afterwards would race otherwise.
  ThreadPool pool(3);
  constexpr size_t kN = 20000;
  std::vector<uint64_t> slots(kN, 0);
  pool.ParallelFor(kN, [&](size_t i) { slots[i] += i + 1; });
  uint64_t sum = 0;
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(slots[i], i + 1) << "slot " << i;
    sum += slots[i];
  }
  EXPECT_EQ(sum, kN * (kN + 1) / 2);

  // The pool stays usable for a second contended round and for n == 0.
  pool.ParallelFor(kN, [&](size_t i) { slots[i] += 1; });
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(slots[i], i + 2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, WaitDrainsManyConcurrentProducers) {
  // MPMC submission: 4 external producer threads race Submit against the
  // workers; one Wait() must observe every task.
  ThreadPool pool(2);
  std::atomic<uint64_t> counter{0};
  constexpr int kProducers = 4;
  constexpr int kTasksPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.Wait();
  EXPECT_EQ(counter.load(),
            static_cast<uint64_t>(kProducers * kTasksPerProducer));
}

// ------------------------------------------------------------- Histogram --

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.Record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_NEAR(h.Stddev(), std::sqrt(2.5), 1e-9);
}

TEST(HistogramTest, Percentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i);
  EXPECT_NEAR(h.Percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(h.Percentile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(h.Percentile(0.5), 50.5, 1e-9);
}

TEST(HistogramTest, RecordAfterPercentileStillCorrect) {
  Histogram h;
  h.Record(10);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 10.0);
  h.Record(20);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 20.0);
}

TEST(HistogramTest, BucketedTracksExactOracle) {
  // The log-linear bucket layout promises ~3% relative error per value;
  // feed both modes a heavy-tailed latency-like stream and compare the
  // quantiles that matter for the tail-latency gate.
  Histogram exact(HistogramMode::kExact);
  Histogram bucketed(HistogramMode::kBucketed);
  Rng rng(1234);
  for (int i = 0; i < 20000; ++i) {
    // Lognormal-ish: most mass near 100, a long tail into the 10000s.
    const double v = 100.0 * std::exp(rng.Normal() * 1.2);
    exact.Record(v);
    bucketed.Record(v);
  }
  EXPECT_EQ(bucketed.count(), exact.count());
  EXPECT_DOUBLE_EQ(bucketed.min(), exact.min());
  EXPECT_DOUBLE_EQ(bucketed.max(), exact.max());
  EXPECT_NEAR(bucketed.Mean(), exact.Mean(), exact.Mean() * 1e-9);
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const double want = exact.Percentile(q);
    EXPECT_NEAR(bucketed.Percentile(q), want, want * 0.04)
        << "quantile " << q;
  }
}

TEST(HistogramTest, BucketedSubUnitValuesLandInBucketZero) {
  Histogram h(HistogramMode::kBucketed);
  h.Record(0.0);
  h.Record(0.5);
  h.Record(2.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 2.0);
  // Interpolation is clamped to the observed range.
  EXPECT_GE(h.Percentile(0.0), 0.0);
  EXPECT_LE(h.Percentile(1.0), 2.0);
}

TEST(HistogramTest, BucketedMergeMatchesSingleStream) {
  Histogram a(HistogramMode::kBucketed);
  Histogram b(HistogramMode::kBucketed);
  Histogram whole(HistogramMode::kBucketed);
  Rng rng(77);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.UniformDouble() * 1e6;
    (i % 2 == 0 ? a : b).Record(v);
    whole.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
  for (double q : {0.5, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(a.Percentile(q), whole.Percentile(q));
  }
}

TEST(HistogramTest, ConcurrentReadsOfConstHistogramAreSafe) {
  // Percentile/Summary on a const exact-mode histogram used to sort the
  // sample buffer in place (a data race between concurrent readers); they
  // now work on a copy. Hammer concurrent reads and check every thread
  // sees the same answer.
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(i);
  const double want = h.Percentile(0.5);
  std::vector<std::thread> readers;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&h, want, &mismatches] {
      for (int i = 0; i < 200; ++i) {
        if (h.Percentile(0.5) != want) ++mismatches;
        if (h.Summary().empty()) ++mismatches;
      }
    });
  }
  for (auto& r : readers) r.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ---------------------------------------------------------- TablePrinter --

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"Method", "Hit@1"});
  t.AddRow({"BERT", "71.03"});
  t.AddRow({"BERT_PKGM-all", "71.64"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("BERT_PKGM-all"), std::string::npos);
  EXPECT_NE(s.find("| Method"), std::string::npos);
  // Every rendered line has equal width.
  auto lines = Split(s, '\n');
  size_t width = lines[0].size();
  for (const auto& line : lines) {
    if (!line.empty()) EXPECT_EQ(line.size(), width);
  }
}

TEST(TablePrinterTest, NumericRowFormatting) {
  TablePrinter t({"m", "a", "b"});
  t.AddRow("x", {1.234, 5.0}, 2);
  std::string s = t.ToString();
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("5.00"), std::string::npos);
}

}  // namespace
}  // namespace pkgm
