#include <gtest/gtest.h>

#include <cmath>

#include "core/link_prediction.h"
#include "data/alignment_dataset.h"
#include "data/classification_dataset.h"
#include "data/interaction_dataset.h"
#include "tasks/item_alignment.h"
#include "tasks/item_classification.h"
#include "tasks/pipeline.h"
#include "tasks/recommendation.h"
#include "tensor/ops.h"
#include "text/title_generator.h"

namespace pkgm::tasks {
namespace {

/// One shared pre-trained pipeline for all integration tests (built once;
/// pre-training a PKGM per test would be wasteful).
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PipelineOptions opt;
    opt.pkg.seed = 77;
    opt.pkg.num_categories = 6;
    opt.pkg.items_per_category = 80;
    opt.pkg.properties_per_category = 6;
    opt.pkg.shared_property_pool = 8;
    opt.pkg.values_per_property = 12;
    opt.pkg.products_per_category = 12;
    opt.pkg.identity_properties = 2;
    opt.pkg.etl_min_occurrence = 5;
    opt.dim = 16;
    opt.trainer.learning_rate = 0.05f;
    opt.trainer.margin = 2.0f;
    opt.trainer.batch_size = 256;
    opt.pretrain_epochs = 60;
    opt.service_k = 4;
    pipeline_ = new PretrainedPkgm(BuildAndPretrain(opt));
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }

  static PretrainedPkgm* pipeline_;
};

PretrainedPkgm* PipelineTest::pipeline_ = nullptr;

TEST_F(PipelineTest, PretrainingConverged) {
  // The hinge should be mostly satisfied after 25 epochs on a small graph.
  EXPECT_LT(pipeline_->last_epoch.mean_hinge, 1.0);
  EXPECT_LT(static_cast<double>(pipeline_->last_epoch.active_pairs),
            0.5 * static_cast<double>(pipeline_->last_epoch.total_pairs));
}

TEST_F(PipelineTest, ServiceProviderShapes) {
  const auto& services = *pipeline_->services;
  EXPECT_EQ(services.num_items(), pipeline_->pkg.items.size());
  EXPECT_EQ(services.dim(), 16u);
  EXPECT_EQ(services.NumKeyRelations(0), 4u);
  EXPECT_EQ(services.Sequence(0, core::ServiceMode::kAll).size(), 8u);
  EXPECT_EQ(services.Condensed(0, core::ServiceMode::kAll).size(), 32u);
}

// The paper's central §II-D2 claim: S_R(h,r) ~ 0 iff h has or SHOULD have
// relation r — including held-out (unfilled) relations, i.e. relation-level
// completion.
TEST_F(PipelineTest, RelationServiceSeparatesOwnedFromForeign) {
  const auto& pkg = pipeline_->pkg;
  const auto& model = *pipeline_->model;

  double owned = 0, foreign = 0;
  int n_owned = 0, n_foreign = 0;
  for (uint32_t i = 0; i < pkg.items.size(); i += 7) {
    const auto& item = pkg.items[i];
    for (kg::RelationId r = 0; r < pkg.relations.size(); ++r) {
      // Skip non-property relations (similarTo, noise).
      bool is_property = false;
      for (kg::RelationId p : pkg.property_relations) {
        if (p == r) {
          is_property = true;
          break;
        }
      }
      if (!is_property) continue;
      if (pkg.ItemShouldHaveRelation(i, r)) {
        owned += model.RelationScore(item.entity, r);
        ++n_owned;
      } else {
        foreign += model.RelationScore(item.entity, r);
        ++n_foreign;
      }
    }
  }
  ASSERT_GT(n_owned, 0);
  ASSERT_GT(n_foreign, 0);
  owned /= n_owned;
  foreign /= n_foreign;
  EXPECT_LT(owned, foreign * 0.8)
      << "owned relations must score clearly lower (owned=" << owned
      << " foreign=" << foreign << ")";
}

// Completion capability (§II-D1): held-out attribute triples — never seen
// in training — rank far better than chance against the relation's value
// universe.
TEST_F(PipelineTest, CompletesHeldOutTriples) {
  const auto& pkg = pipeline_->pkg;
  core::LinkPredictionEvaluator::Options opt;
  opt.filtered = true;
  core::LinkPredictionEvaluator eval(pipeline_->model.get(), &pkg.observed,
                                     opt);

  std::vector<kg::Triple> test(pkg.held_out.begin(),
                               pkg.held_out.begin() +
                                   std::min<size_t>(pkg.held_out.size(), 200));
  auto result = eval.EvaluateTails(test, &pkg.property_values);
  // Chance MRR against ~12 candidates is ~0.26; require clearly better.
  // Non-identity attribute values are i.i.d. Zipf draws, so the
  // popularity prior bounds what any model can do; uniform chance over ~12
  // candidates is MRR ~0.26. Require clear signal above chance.
  EXPECT_GT(result.mrr, 0.32) << "mean_rank=" << result.mean_rank;
  EXPECT_GT(result.hits[1], 0.12);
}

TEST_F(PipelineTest, TripleServiceApproximatesObservedTails) {
  // For observed triples, S_T(h, r) must be closer (L1) to the true tail
  // than to a random entity.
  const auto& pkg = pipeline_->pkg;
  const auto& model = *pipeline_->model;
  const uint32_t d = model.dim();
  Rng rng(5);
  int wins = 0, total = 0;
  std::vector<float> s(d);
  for (size_t i = 0; i < pkg.observed.triples().size(); i += 17) {
    const kg::Triple& t = pkg.observed.triples()[i];
    model.TripleService(t.head, t.relation, s.data());
    float to_true = 0, to_rand = 0;
    const float* true_emb = model.entity(t.tail);
    const kg::EntityId r_ent =
        static_cast<kg::EntityId>(rng.Uniform(model.num_entities()));
    const float* rand_emb = model.entity(r_ent);
    for (uint32_t j = 0; j < d; ++j) {
      to_true += std::fabs(s[j] - true_emb[j]);
      to_rand += std::fabs(s[j] - rand_emb[j]);
    }
    wins += to_true < to_rand;
    ++total;
  }
  EXPECT_GT(static_cast<double>(wins) / total, 0.9);
}

// ------------------------------------------------------- downstream tasks --

data::ClassificationDataset SmallClassificationData(
    const kg::SyntheticPkg& pkg) {
  text::TitleGenerator titles(&pkg, text::TitleGeneratorOptions{});
  data::ClassificationDatasetOptions opt;
  opt.max_per_category = 40;
  opt.seed = 5;
  return BuildClassificationDataset(pkg, titles, opt);
}

TEST_F(PipelineTest, ClassificationBeatsChanceAndPkgmHelps) {
  data::ClassificationDataset ds = SmallClassificationData(pipeline_->pkg);
  ItemClassificationOptions opt;
  opt.max_len = 20;
  opt.bert_layers = 1;
  opt.bert_heads = 2;
  opt.bert_ff = 32;
  opt.epochs = 4;
  opt.mlm_pretrain_epochs = 1;
  opt.seed = 3;
  ItemClassificationTask task(&ds, pipeline_->services.get(), opt);

  ClassificationMetrics base = task.Run(PkgmVariant::kBase);
  const double chance = 1.0 / ds.num_classes;
  EXPECT_GT(base.accuracy, 2 * chance);
  EXPECT_GT(base.hits[1], chance);
  EXPECT_GE(base.hits[3], base.hits[1]);
  EXPECT_GE(base.hits[10], base.hits[3]);

  ClassificationMetrics all = task.Run(PkgmVariant::kPkgmAll);
  EXPECT_GT(all.accuracy, 2 * chance);
  // On synthetic data with complete knowledge the PKGM variant should be at
  // least competitive with (usually better than) the base model.
  EXPECT_GT(all.accuracy, base.accuracy - 0.1);
}

TEST_F(PipelineTest, AlignmentTaskRunsAndBeatsChance) {
  text::TitleGenerator titles(&pipeline_->pkg, text::TitleGeneratorOptions{});
  data::AlignmentDatasetOptions opt;
  opt.pairs_per_category = 800;
  opt.ranking_cases = 10;
  opt.ranking_negatives = 19;
  opt.seed = 7;
  auto datasets =
      BuildAlignmentDatasets(pipeline_->pkg, titles, {0, 1, 2}, opt);
  ASSERT_FALSE(datasets.empty());

  ItemAlignmentOptions task_opt;
  task_opt.max_len = 48;
  task_opt.bert_layers = 2;
  task_opt.bert_heads = 4;
  task_opt.bert_ff = 32;
  task_opt.epochs = 10;
  task_opt.mlm_pretrain_epochs = 2;
  task_opt.seed = 9;
  ItemAlignmentTask task(&datasets[0], pipeline_->services.get(), task_opt);

  AlignmentMetrics base = task.Run(PkgmVariant::kBase);
  EXPECT_GT(base.accuracy, 0.6);  // balanced task, chance = 0.5
  // Hit@k vs 19 negatives: chance Hit@10 = 0.5.
  EXPECT_GE(base.hits[10], base.hits[3]);

  AlignmentMetrics all = task.Run(PkgmVariant::kPkgmAll);
  // Clearly above the 0.5 chance line. The paper itself reports mixed
  // per-category orderings for alignment (Table VI category-1), so no
  // ordering assertion here — the bench reports the full comparison.
  EXPECT_GT(all.accuracy, 0.55);
}

TEST_F(PipelineTest, RecommendationBeatsChanceAndPkgmHelps) {
  data::InteractionDatasetOptions data_opt;
  data_opt.num_users = 250;
  data_opt.preference_strength = 5.0;
  data_opt.popularity_weight = 6.0;
  data_opt.seed = 11;
  data::InteractionDataset ds =
      BuildInteractionDataset(pipeline_->pkg, data_opt);

  RecommendationOptions opt;
  opt.epochs = 25;
  opt.seed = 13;
  RecommendationTask task(&ds, pipeline_->services.get(), opt);

  RecommendationMetrics base = task.Run(PkgmVariant::kBase);
  // Chance HR@10 with 100 negatives is ~0.099.
  EXPECT_GT(base.hr[10], 0.12);
  EXPECT_GE(base.hr[30], base.hr[10]);
  EXPECT_GE(base.ndcg[30], base.ndcg[10]);

  RecommendationMetrics all = task.Run(PkgmVariant::kPkgmAll);
  EXPECT_GT(all.hr[10], 0.12);
}

TEST(ShardedPipelineTest, ShardedTrainingProducesUsableServices) {
  PipelineOptions opt;
  opt.pkg.seed = 99;
  opt.pkg.num_categories = 3;
  opt.pkg.items_per_category = 40;
  opt.pkg.properties_per_category = 5;
  opt.pkg.values_per_property = 8;
  opt.pkg.products_per_category = 8;
  opt.pkg.etl_min_occurrence = 3;
  opt.dim = 12;
  opt.use_sharded_trainer = true;
  opt.sharded.num_workers = 3;
  opt.sharded.num_shards = 4;
  opt.sharded.learning_rate = 0.1f;
  // The pipelined trainer draws negatives from a producer-owned stream, so
  // the trajectory differs from the seed implementation; a few extra epochs
  // keep the same convergence bar on this tiny KG.
  opt.pretrain_epochs = 30;
  opt.service_k = 3;
  PretrainedPkgm p = BuildAndPretrain(opt);
  EXPECT_LT(p.last_epoch.mean_hinge, 1.8);
  Vec s = p.services->Condensed(0, core::ServiceMode::kAll);
  EXPECT_EQ(s.size(), 24u);
}

TEST(AblationTest, RelationModuleImprovesRelationSeparation) {
  // TransE-only ablation: without M_r the model cannot encode relation
  // ownership, so the owned/foreign gap must be weaker than full PKGM's.
  auto build = [&](bool use_relation_module) {
    PipelineOptions opt;
    opt.pkg.seed = 55;
    opt.pkg.num_categories = 4;
    opt.pkg.items_per_category = 50;
    opt.pkg.properties_per_category = 5;
    opt.pkg.values_per_property = 8;
    opt.pkg.products_per_category = 8;
    opt.pkg.etl_min_occurrence = 3;
    opt.dim = 12;
    opt.use_relation_module = use_relation_module;
    opt.trainer.learning_rate = 0.05f;
    opt.pretrain_epochs = 20;
    opt.service_k = 3;
    return BuildAndPretrain(opt);
  };
  PretrainedPkgm full = build(true);

  // For the full model, relation-service norms distinguish owned vs
  // foreign relations.
  const auto& pkg = full.pkg;
  double owned = 0, foreign = 0;
  int n_owned = 0, n_foreign = 0;
  for (uint32_t i = 0; i < pkg.items.size(); i += 5) {
    for (kg::RelationId r : pkg.property_relations) {
      const double score =
          full.model->RelationScore(pkg.items[i].entity, r);
      if (pkg.ItemShouldHaveRelation(i, r)) {
        owned += score;
        ++n_owned;
      } else {
        foreign += score;
        ++n_foreign;
      }
    }
  }
  EXPECT_LT(owned / n_owned, foreign / n_foreign);

  // The ablated model reports 0 for every relation score by construction.
  PretrainedPkgm ablated = build(false);
  EXPECT_FLOAT_EQ(ablated.model->RelationScore(pkg.items[0].entity, 0), 0.0f);
}

}  // namespace
}  // namespace pkgm::tasks
