// End-to-end tests for the network serving subsystem: NetServer + NetClient
// over loopback against a real KnowledgeServer. The core acceptance
// property is parity — vectors served over the socket are bit-identical to
// direct KnowledgeServer::Submit — including across a registry hot swap
// mid-stream. Every case runs as a backend matrix over both I/O backends
// (epoll and io_uring); the uring leg skips cleanly on kernels without
// io_uring, and both legs must behave identically.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/pkgm_model.h"
#include "core/service.h"
#include "net/io_backend.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "net/socket_util.h"
#include "net/wire.h"
#include "serve/knowledge_server.h"
#include "serve/request.h"
#include "store/model_registry.h"

namespace pkgm::net {
namespace {

using serve::KnowledgeServer;
using serve::KnowledgeServerOptions;
using serve::ResponseCode;
using serve::ServeClock;
using serve::ServiceForm;
using serve::ServiceRequest;
using serve::ServiceResponse;

// Same deterministic provider shape as serve_test: items 0..9 over a
// 20-entity model; item 7 has no key relations.
struct Fixture {
  Fixture() {
    core::PkgmModelOptions mopt;
    mopt.num_entities = 20;
    mopt.num_relations = 5;
    mopt.dim = 8;
    mopt.seed = 17;
    model = std::make_shared<core::PkgmModel>(mopt);
    provider = MakeProvider();
  }

  std::shared_ptr<core::ServiceVectorProvider> MakeProvider() const {
    std::vector<kg::EntityId> entities;
    std::vector<std::vector<kg::RelationId>> rels;
    for (uint32_t i = 0; i < 10; ++i) {
      entities.push_back(i);
      std::vector<kg::RelationId> r;
      if (i != 7) {
        for (uint32_t j = 0; j <= i % 4; ++j) r.push_back((i + j) % 5);
      }
      rels.push_back(std::move(r));
    }
    return std::make_shared<core::ServiceVectorProvider>(
        model.get(), std::move(entities), std::move(rels));
  }

  std::shared_ptr<core::PkgmModel> model;
  std::shared_ptr<core::ServiceVectorProvider> provider;
};

ServiceRequest MakeRequest(uint32_t item, ServiceForm form,
                           core::ServiceMode mode = core::ServiceMode::kAll) {
  ServiceRequest request;
  request.item = item;
  request.mode = mode;
  request.form = form;
  return request;
}

void ExpectSameResponse(const ServiceResponse& net,
                        const ServiceResponse& direct) {
  ASSERT_EQ(net.code, direct.code);
  ASSERT_EQ(net.vectors.size(), direct.vectors.size());
  for (size_t v = 0; v < direct.vectors.size(); ++v) {
    ASSERT_EQ(net.vectors[v].size(), direct.vectors[v].size());
    EXPECT_EQ(std::memcmp(net.vectors[v].data(), direct.vectors[v].data(),
                          direct.vectors[v].size() * sizeof(float)),
              0);
  }
}

/// Blocking raw-socket helpers for protocol-level tests that a well-behaved
/// NetClient cannot express.
bool RawSend(int fd, const std::string& bytes) {
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + written,
                             bytes.size() - written, MSG_NOSIGNAL);
    if (n <= 0) return false;
    written += static_cast<size_t>(n);
  }
  return true;
}

/// Reads until one full frame decodes or the peer closes; false on close.
bool RawReadFrame(int fd, FrameDecoder* decoder, Frame* frame) {
  std::string error;
  char buf[4096];
  while (true) {
    switch (decoder->Next(frame, &error)) {
      case FrameDecoder::Result::kFrame: return true;
      case FrameDecoder::Result::kError: return false;
      case FrameDecoder::Result::kNeedMore: break;
    }
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) return false;
    decoder->Feed(buf, static_cast<size_t>(n));
  }
}

/// Waits until `condition` holds, polling; false on timeout.
template <typename F>
bool WaitFor(F condition, int timeout_ms = 5000) {
  const auto deadline =
      ServeClock::now() + std::chrono::milliseconds(timeout_ms);
  while (!condition()) {
    if (ServeClock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

/// Backend-matrix base: the parameter ("epoll" / "uring") pins both the
/// server's and the client's I/O backend; the uring leg skips where the
/// kernel has no io_uring.
class BackendTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    if (std::string(GetParam()) == "uring" && !UringAvailable()) {
      GTEST_SKIP() << "io_uring unavailable on this kernel";
    }
  }

  NetServerOptions ServerOptions() const {
    NetServerOptions options;
    options.io_backend = GetParam();
    return options;
  }

  NetClientOptions ClientOptions() const {
    NetClientOptions options;
    options.io_backend = GetParam();
    return options;
  }
};

class NetServerTest : public BackendTest {};
class NetClientTest : public BackendTest {};

INSTANTIATE_TEST_SUITE_P(Backends, NetServerTest,
                         ::testing::Values("epoll", "uring"));
INSTANTIATE_TEST_SUITE_P(Backends, NetClientTest,
                         ::testing::Values("epoll", "uring"));

TEST_P(NetServerTest, EndToEndParityWithDirectSubmit) {
  Fixture fx;
  KnowledgeServer server(fx.provider.get());
  server.Start();
  NetServer net(&server, ServerOptions());
  ASSERT_TRUE(net.Start().ok());

  NetClientOptions copt = ClientOptions();
  copt.num_connections = 2;
  auto client = NetClient::Connect("127.0.0.1", net.port(), copt);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // Every item (incl. the empty-key item 7 and the invalid 9999), both
  // forms, all modes — served over the socket and directly, compared
  // bit for bit.
  std::vector<ServiceRequest> requests;
  for (uint32_t item : {0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 9999u}) {
    for (ServiceForm form : {ServiceForm::kCondensed, ServiceForm::kSequence}) {
      for (core::ServiceMode mode :
           {core::ServiceMode::kTripleOnly, core::ServiceMode::kRelationOnly,
            core::ServiceMode::kAll}) {
        requests.push_back(MakeRequest(item, form, mode));
      }
    }
  }

  auto net_futures = client.value()->SubmitBatch(requests);
  ASSERT_EQ(net_futures.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ServiceResponse over_wire = net_futures[i].get();
    ServiceResponse direct = server.Submit(requests[i]).get();
    ExpectSameResponse(over_wire, direct);
    if (requests[i].item == 9999u) {
      EXPECT_EQ(over_wire.code, ResponseCode::kInvalidItem);
    } else {
      EXPECT_EQ(over_wire.code, ResponseCode::kOk);
    }
  }

  client.value().reset();
  net.Stop();
  server.Stop();
}

TEST_P(NetServerTest, ParityAcrossRegistryHotSwapMidStream) {
  Fixture fx;
  store::ModelRegistry registry;
  registry.Publish(fx.model, fx.provider, store::StoreBackendInfo{});

  KnowledgeServer server(&registry);
  server.Start();
  NetServer net(&server, ServerOptions());
  ASSERT_TRUE(net.Start().ok());
  auto client = NetClient::Connect("127.0.0.1", net.port(), ClientOptions());
  ASSERT_TRUE(client.ok());

  // Stream batches while publishing fresh generations (new provider
  // instances over the same model, so served bytes must stay identical).
  std::atomic<bool> done{false};
  std::thread swapper([&] {
    while (!done.load()) {
      registry.Publish(fx.model, fx.MakeProvider(),
                       store::StoreBackendInfo{});
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  const uint64_t gen_before = registry.generation();
  for (int round = 0; round < 50; ++round) {
    std::vector<ServiceRequest> batch;
    for (uint32_t item = 0; item < 10; ++item) {
      batch.push_back(MakeRequest(
          item, round % 2 == 0 ? ServiceForm::kCondensed
                               : ServiceForm::kSequence));
    }
    auto futures = client.value()->SubmitBatch(batch);
    for (size_t i = 0; i < batch.size(); ++i) {
      ServiceResponse over_wire = futures[i].get();
      ServiceResponse direct = server.Submit(batch[i]).get();
      ASSERT_EQ(over_wire.code, ResponseCode::kOk)
          << "round " << round << " item " << i;
      ExpectSameResponse(over_wire, direct);
    }
  }
  done.store(true);
  swapper.join();
  EXPECT_GT(registry.generation(), gen_before);  // swaps really happened

  client.value().reset();
  net.Stop();
  server.Stop();
}

TEST_P(NetServerTest, DeadlineExpiresAcrossTheWire) {
  Fixture fx;
  // Workers not started yet: accepted requests sit queued until Start(),
  // so a short relative deadline deterministically expires in the queue.
  KnowledgeServer server(fx.provider.get());
  NetServer net(&server, ServerOptions());
  ASSERT_TRUE(net.Start().ok());
  auto client = NetClient::Connect("127.0.0.1", net.port(), ClientOptions());
  ASSERT_TRUE(client.ok());

  ServiceRequest request = MakeRequest(1, ServiceForm::kCondensed);
  request.deadline = ServeClock::now() + std::chrono::milliseconds(5);
  auto future = client.value()->Submit(request);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.Start();
  EXPECT_EQ(future.get().code, ResponseCode::kDeadlineExceeded);

  client.value().reset();
  net.Stop();
  server.Stop();
}

TEST_P(NetServerTest, AdmissionRejectionPropagatesOverWire) {
  Fixture fx;
  KnowledgeServerOptions sopt;
  sopt.queue_capacity = 1;  // one batch fits, the second is rejected
  KnowledgeServer server(fx.provider.get(), sopt);
  NetServer net(&server, ServerOptions());
  ASSERT_TRUE(net.Start().ok());
  auto client = NetClient::Connect("127.0.0.1", net.port(), ClientOptions());
  ASSERT_TRUE(client.ok());

  std::vector<ServiceRequest> first(4, MakeRequest(1, ServiceForm::kCondensed));
  auto first_futures = client.value()->SubmitBatch(first);
  // The first batch occupies the whole queue (workers are not running);
  // wait until the server has actually accepted it.
  ASSERT_TRUE(WaitFor([&] { return server.queue_depth() == 4; }));

  std::vector<ServiceRequest> second(2,
                                     MakeRequest(2, ServiceForm::kCondensed));
  auto second_futures = client.value()->SubmitBatch(second);
  for (auto& future : second_futures) {
    EXPECT_EQ(future.get().code, ResponseCode::kRejected);
  }

  server.Start();  // drain the accepted batch
  for (auto& future : first_futures) {
    EXPECT_EQ(future.get().code, ResponseCode::kOk);
  }

  client.value().reset();
  net.Stop();
  server.Stop();
}

TEST_P(NetServerTest, MalformedFrameClosesOnlyTheOffendingConnection) {
  Fixture fx;
  KnowledgeServer server(fx.provider.get());
  server.Start();
  NetServer net(&server, ServerOptions());
  ASSERT_TRUE(net.Start().ok());

  auto client = NetClient::Connect("127.0.0.1", net.port(), ClientOptions());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value()->Ping().ok());

  auto raw = ConnectTcp("127.0.0.1", net.port(), 5000);
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(RawSend(raw.value().get(), "this is not a pkgm frame...."));
  // The server must close the poisoned connection…
  char buf[64];
  ASSERT_TRUE(WaitFor([&] {
    const ssize_t n = ::recv(raw.value().get(), buf, sizeof(buf), MSG_DONTWAIT);
    return n == 0;
  }));
  EXPECT_GE(net.net_counters().protocol_errors, 1u);
  // …while the healthy connection keeps serving.
  auto future = client.value()->Submit(MakeRequest(3, ServiceForm::kCondensed));
  EXPECT_EQ(future.get().code, ResponseCode::kOk);

  client.value().reset();
  net.Stop();
  server.Stop();
}

TEST_P(NetServerTest, UnknownFrameTypeAnsweredWithErrorConnectionSurvives) {
  Fixture fx;
  KnowledgeServer server(fx.provider.get());
  server.Start();
  NetServer net(&server, ServerOptions());
  ASSERT_TRUE(net.Start().ok());

  auto raw = ConnectTcp("127.0.0.1", net.port(), 5000);
  ASSERT_TRUE(raw.ok());
  const int fd = raw.value().get();

  // A validly framed (magic/CRC ok) frame of an unknown type: forward
  // compatibility says answer kError and keep the stream.
  std::string unknown;
  AppendFrame(static_cast<FrameType>(42), /*correlation_id=*/7, "payload",
              &unknown);
  ASSERT_TRUE(RawSend(fd, unknown));

  FrameDecoder decoder;
  Frame frame;
  ASSERT_TRUE(RawReadFrame(fd, &decoder, &frame));
  EXPECT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(frame.correlation_id, 7u);
  WireCode code;
  std::string message;
  ASSERT_TRUE(DecodeError(frame.payload, &code, &message).ok());
  EXPECT_EQ(code, WireCode::kUnsupported);

  // Still alive: a ping on the same connection answers.
  ASSERT_TRUE(RawSend(fd, EncodeControl(FrameType::kPing, 8)));
  ASSERT_TRUE(RawReadFrame(fd, &decoder, &frame));
  EXPECT_EQ(frame.type, FrameType::kPong);
  EXPECT_EQ(frame.correlation_id, 8u);

  net.Stop();
  server.Stop();
}

TEST_P(NetServerTest, SlowReaderIsDisconnectedByBackpressure) {
  Fixture fx;
  KnowledgeServer server(fx.provider.get());
  server.Start();
  NetServerOptions nopt = ServerOptions();
  nopt.max_outbox_bytes = 16 * 1024;  // tight bound
  nopt.so_sndbuf_bytes = 4 * 1024;    // tiny kernel buffer → outbox fills
  NetServer net(&server, nopt);
  ASSERT_TRUE(net.Start().ok());

  auto raw = ConnectTcp("127.0.0.1", net.port(), 5000);
  ASSERT_TRUE(raw.ok());
  const int fd = raw.value().get();

  // Pump request frames producing fat sequence responses and never read a
  // byte back. The outbox bound must disconnect us, not buffer forever.
  std::vector<ServiceRequest> batch(
      32, MakeRequest(6, ServiceForm::kSequence));
  bool disconnected = false;
  for (uint64_t correlation = 1; correlation <= 4096; ++correlation) {
    if (!RawSend(fd,
                 EncodeGetVectors(correlation, batch, ServeClock::now()))) {
      disconnected = true;  // EPIPE/ECONNRESET once the server dropped us
      break;
    }
  }
  if (!disconnected) {
    // Writes may all have landed in kernel buffers; the disconnect still
    // must arrive.
    char buf[64];
    disconnected = WaitFor([&] {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
      return n == 0 || (n < 0 && errno == ECONNRESET);
    });
  }
  EXPECT_TRUE(disconnected);
  EXPECT_TRUE(
      WaitFor([&] { return net.net_counters().backpressure_disconnects >= 1; }));

  net.Stop();
  server.Stop();
}

TEST_P(NetServerTest, GracefulDrainCompletesAcceptedRequests) {
  Fixture fx;
  KnowledgeServer server(fx.provider.get());
  server.Start();
  NetServer net(&server, ServerOptions());
  ASSERT_TRUE(net.Start().ok());
  auto client = NetClient::Connect("127.0.0.1", net.port(), ClientOptions());
  ASSERT_TRUE(client.ok());

  std::vector<std::future<ServiceResponse>> futures;
  for (int round = 0; round < 20; ++round) {
    std::vector<ServiceRequest> batch(
        8, MakeRequest(static_cast<uint32_t>(round % 10),
                       ServiceForm::kSequence));
    for (auto& future : client.value()->SubmitBatch(batch)) {
      futures.push_back(std::move(future));
    }
  }
  // Wait until the server has decoded every request, then drain while the
  // responses are (possibly) still in flight: all of them must arrive.
  ASSERT_TRUE(WaitFor(
      [&] { return net.net_counters().requests_in >= futures.size(); }));
  net.Stop();
  for (auto& future : futures) {
    EXPECT_EQ(future.get().code, ResponseCode::kOk);
  }
  EXPECT_EQ(client.value()->network_errors(), 0u);

  client.value().reset();
  server.Stop();
}

TEST_P(NetServerTest, IdleConnectionsAreReaped) {
  Fixture fx;
  KnowledgeServer server(fx.provider.get());
  server.Start();
  NetServerOptions nopt = ServerOptions();
  nopt.idle_timeout_ms = 100;
  NetServer net(&server, nopt);
  ASSERT_TRUE(net.Start().ok());

  auto raw = ConnectTcp("127.0.0.1", net.port(), 5000);
  ASSERT_TRUE(raw.ok());
  char buf[16];
  EXPECT_TRUE(WaitFor([&] {
    const ssize_t n = ::recv(raw.value().get(), buf, sizeof(buf), MSG_DONTWAIT);
    return n == 0;
  }));
  EXPECT_GE(net.net_counters().idle_disconnects, 1u);

  net.Stop();
  server.Stop();
}

TEST_P(NetServerTest, PingAndStatsProbes) {
  Fixture fx;
  KnowledgeServer server(fx.provider.get());
  server.Start();
  NetServer net(&server, ServerOptions());
  ASSERT_TRUE(net.Start().ok());
  auto client = NetClient::Connect("127.0.0.1", net.port(), ClientOptions());
  ASSERT_TRUE(client.ok());

  EXPECT_TRUE(client.value()->Ping().ok());
  auto future = client.value()->Submit(MakeRequest(2, ServiceForm::kCondensed));
  EXPECT_EQ(future.get().code, ResponseCode::kOk);

  auto stats = client.value()->ServerStatsJson();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats.value().find("\"net\""), std::string::npos);
  EXPECT_NE(stats.value().find("\"accepted\""), std::string::npos);

  // The stats report which I/O backend actually serves the sockets, plus
  // the syscall accounting the bench gate reads.
  const std::string expected_backend = std::string("\"io_backend\":\"") +
      (std::string(GetParam()) == "uring" ? "io_uring" : "epoll") + "\"";
  EXPECT_NE(stats.value().find(expected_backend), std::string::npos)
      << stats.value();
  EXPECT_NE(stats.value().find("\"io_wait_calls\""), std::string::npos);
  EXPECT_NE(stats.value().find("\"frames_per_syscall\""), std::string::npos);
  EXPECT_EQ(net.net_counters().io_backend,
            std::string(GetParam()) == "uring" ? "io_uring" : "epoll");

  client.value().reset();
  net.Stop();
  server.Stop();
}

TEST_P(NetClientTest, ReconnectsAfterServerRestart) {
  Fixture fx;
  KnowledgeServer server(fx.provider.get());
  server.Start();

  auto first = std::make_unique<NetServer>(&server, ServerOptions());
  ASSERT_TRUE(first->Start().ok());
  const uint16_t port = first->port();

  NetClientOptions copt = ClientOptions();
  copt.reconnect_backoff_initial_ms = 10;
  auto client = NetClient::Connect("127.0.0.1", port, copt);
  ASSERT_TRUE(client.ok());
  EXPECT_EQ(client.value()
                ->Submit(MakeRequest(1, ServiceForm::kCondensed))
                .get()
                .code,
            ResponseCode::kOk);

  first->Stop();
  first.reset();

  // With the server gone, submissions fail client-side with kNetworkError.
  EXPECT_EQ(client.value()
                ->Submit(MakeRequest(1, ServiceForm::kCondensed))
                .get()
                .code,
            ResponseCode::kNetworkError);
  EXPECT_GE(client.value()->network_errors(), 1u);

  // Restart on the same port; the client must recover via reconnect.
  NetServerOptions nopt = ServerOptions();
  nopt.port = port;
  NetServer second(&server, nopt);
  ASSERT_TRUE(second.Start().ok());
  ASSERT_TRUE(WaitFor([&] {
    return client.value()
               ->Submit(MakeRequest(1, ServiceForm::kCondensed))
               .get()
               .code == ResponseCode::kOk;
  }));

  client.value().reset();
  second.Stop();
  server.Stop();
}

// ---------------------------------------------------------------------------
// CallFrame (the v2 parameter-server request path)
// ---------------------------------------------------------------------------

// Parks every kPushGrads respond and flushes them in REVERSE arrival order
// when a kBarrier frame arrives — so a pipelined client must match replies
// by correlation id, not by ordering.
class ReversingPushHandler : public FrameHandler {
 public:
  bool HandleFrame(const Frame& frame, Respond respond) override {
    if (frame.type == FrameType::kPushGrads) {
      float scale = 0.0f;
      uint32_t epoch = 0;
      std::string_view blob;
      if (!DecodePushGrads(frame.payload, &scale, &epoch, &blob).ok()) {
        return false;
      }
      std::lock_guard<std::mutex> lock(mu_);
      parked_.push_back({frame.correlation_id, epoch, std::move(respond)});
      return true;
    }
    if (frame.type == FrameType::kBarrier) {
      std::vector<Parked> parked;
      {
        std::lock_guard<std::mutex> lock(mu_);
        parked.swap(parked_);
      }
      for (auto it = parked.rbegin(); it != parked.rend(); ++it) {
        // Echo the pushed epoch back as rows_applied so the test can prove
        // each future resolved with ITS reply.
        it->respond(EncodePushAck(it->correlation_id, it->epoch));
      }
      uint32_t epoch = 0, workers = 0;
      if (!DecodeBarrier(frame.payload, &epoch, &workers).ok()) return false;
      respond(EncodeBarrierReply(frame.correlation_id, epoch, workers));
      return true;
    }
    return false;
  }

  /// Drops parked responds without invoking them (the connections are
  /// gone); must run before the server is destroyed.
  void Abandon() {
    std::lock_guard<std::mutex> lock(mu_);
    parked_.clear();
  }

  size_t parked() {
    std::lock_guard<std::mutex> lock(mu_);
    return parked_.size();
  }

 private:
  struct Parked {
    uint64_t correlation_id;
    uint32_t epoch;
    Respond respond;
  };
  std::mutex mu_;
  std::vector<Parked> parked_;
};

TEST_P(NetClientTest, ManyInFlightCallsResolveOutOfOrder) {
  ReversingPushHandler handler;
  NetServer server(&handler, ServerOptions());
  ASSERT_TRUE(server.Start().ok());

  auto client = NetClient::Connect("127.0.0.1", server.port(), ClientOptions());
  ASSERT_TRUE(client.ok());

  constexpr uint32_t kInFlight = 64;
  std::vector<std::future<StatusOr<Frame>>> pushes;
  for (uint32_t i = 0; i < kInFlight; ++i) {
    const uint64_t cid = client.value()->NextCorrelationId();
    pushes.push_back(client.value()->CallFrame(
        cid, EncodePushGrads(cid, 1.0f, /*epoch=*/i, "blob")));
  }
  // All 64 are in flight (none answered) until the barrier flushes them in
  // reverse order.
  ASSERT_TRUE(WaitFor([&] { return handler.parked() == kInFlight; }));
  const uint64_t barrier_cid = client.value()->NextCorrelationId();
  auto barrier = client.value()->CallFrame(
      barrier_cid, EncodeBarrier(barrier_cid, 1, 1));

  StatusOr<Frame> barrier_reply = barrier.get();
  ASSERT_TRUE(barrier_reply.ok());
  EXPECT_EQ(barrier_reply->type, FrameType::kBarrierReply);

  for (uint32_t i = 0; i < kInFlight; ++i) {
    StatusOr<Frame> reply = pushes[i].get();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->type, FrameType::kPushAck);
    uint32_t rows = 0;
    ASSERT_TRUE(DecodePushAck(reply->payload, &rows).ok());
    EXPECT_EQ(rows, i);  // the i-th future got the i-th push's reply
  }

  client.value().reset();
  server.Stop();
}

TEST_P(NetClientTest, CorrelationIdWraparound) {
  ReversingPushHandler handler;
  NetServer server(&handler, ServerOptions());
  ASSERT_TRUE(server.Start().ok());

  // Pin the counter so the ids cross UINT64_MAX -> 0 mid-test.
  NetClientOptions copt = ClientOptions();
  copt.start_correlation_id = std::numeric_limits<uint64_t>::max() - 3;
  auto client = NetClient::Connect("127.0.0.1", server.port(), copt);
  ASSERT_TRUE(client.ok());

  constexpr uint32_t kCalls = 16;
  std::vector<std::future<StatusOr<Frame>>> pushes;
  bool wrapped = false;
  uint64_t prev = 0;
  for (uint32_t i = 0; i < kCalls; ++i) {
    const uint64_t cid = client.value()->NextCorrelationId();
    if (i > 0 && cid < prev) wrapped = true;
    prev = cid;
    pushes.push_back(client.value()->CallFrame(
        cid, EncodePushGrads(cid, 1.0f, i, "x")));
  }
  EXPECT_TRUE(wrapped);  // the test premise: ids really did wrap past 0

  ASSERT_TRUE(WaitFor([&] { return handler.parked() == kCalls; }));
  const uint64_t barrier_cid = client.value()->NextCorrelationId();
  ASSERT_TRUE(client.value()
                  ->CallFrame(barrier_cid, EncodeBarrier(barrier_cid, 1, 1))
                  .get()
                  .ok());
  for (uint32_t i = 0; i < kCalls; ++i) {
    StatusOr<Frame> reply = pushes[i].get();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    uint32_t rows = 0;
    ASSERT_TRUE(DecodePushAck(reply->payload, &rows).ok());
    EXPECT_EQ(rows, i);
  }

  client.value().reset();
  server.Stop();
}

TEST_P(NetClientTest, ReconnectDuringPendingPush) {
  ReversingPushHandler handler;
  NetServerOptions nopt = ServerOptions();
  nopt.drain_timeout_ms = 50;  // force-close the parked push quickly
  auto first = std::make_unique<NetServer>(&handler, nopt);
  ASSERT_TRUE(first->Start().ok());
  const uint16_t port = first->port();

  NetClientOptions copt = ClientOptions();
  copt.reconnect_backoff_initial_ms = 10;
  auto client = NetClient::Connect("127.0.0.1", port, copt);
  ASSERT_TRUE(client.ok());

  // A push the handler parks forever: in flight when the server dies.
  const uint64_t cid = client.value()->NextCorrelationId();
  auto pending = client.value()->CallFrame(
      cid, EncodePushGrads(cid, 1.0f, 7, "pending"));
  ASSERT_TRUE(WaitFor([&] { return handler.parked() == 1u; }));

  // Abandon drops the parked respond without invoking it: the frame
  // completes with no reply, so Stop()'s outstanding-frame wait must not
  // wedge, and the drain force-closes the connection at the deadline.
  handler.Abandon();
  first->Stop();
  first.reset();

  // At-most-once: the pending push resolves with an error, never a replay.
  StatusOr<Frame> failed = pending.get();
  EXPECT_FALSE(failed.ok());

  // Restart on the same port; the client must reconnect and the next push
  // must complete (the handler answers it at the next barrier).
  NetServerOptions nopt2 = ServerOptions();
  nopt2.port = port;
  NetServer second(&handler, nopt2);
  ASSERT_TRUE(second.Start().ok());

  ASSERT_TRUE(WaitFor([&] {
    const uint64_t retry_cid = client.value()->NextCorrelationId();
    auto retry = client.value()->CallFrame(
        retry_cid, EncodePushGrads(retry_cid, 1.0f, 9, "retry"));
    if (!WaitFor([&] { return handler.parked() >= 1u; }, 1000)) {
      return false;
    }
    const uint64_t barrier_cid = client.value()->NextCorrelationId();
    auto barrier = client.value()->CallFrame(
        barrier_cid, EncodeBarrier(barrier_cid, 2, 1));
    StatusOr<Frame> reply = retry.get();
    if (!barrier.get().ok() || !reply.ok()) return false;
    uint32_t rows = 0;
    return DecodePushAck(reply->payload, &rows).ok() && rows == 9u;
  }));

  client.value().reset();
  second.Stop();
}

/// Pins the uring-availability probe for a scope; restores the real probe
/// on destruction so later tests see the actual kernel.
struct ProbeOverrideGuard {
  explicit ProbeOverrideGuard(int forced) {
    SetUringProbeOverrideForTesting(forced);
  }
  ~ProbeOverrideGuard() { SetUringProbeOverrideForTesting(-1); }
};

// Not part of the backend matrix: these pin the probe rather than the
// backend, so they run once.
TEST(IoBackendSelectionTest, UringRequestFallsBackToEpollWhenUnavailable) {
  ProbeOverrideGuard guard(0);  // pretend the kernel has no io_uring

  Fixture fx;
  KnowledgeServer server(fx.provider.get());
  server.Start();
  NetServerOptions nopt;
  nopt.io_backend = "uring";
  NetServer net(&server, nopt);
  // Start must succeed anyway — the selection logs once and degrades.
  ASSERT_TRUE(net.Start().ok());
  EXPECT_EQ(net.net_counters().io_backend, "epoll");

  // And the degraded server still serves traffic.
  auto client = NetClient::Connect("127.0.0.1", net.port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client.value()->Ping().ok());
  ServiceResponse over_wire =
      client.value()->Submit(MakeRequest(3, ServiceForm::kCondensed)).get();
  ServiceResponse direct =
      server.Submit(MakeRequest(3, ServiceForm::kCondensed)).get();
  ExpectSameResponse(over_wire, direct);

  client.value().reset();
  net.Stop();
  server.Stop();
}

TEST(IoBackendSelectionTest, EnvPinRespectedAndExplicitEpollNeverProbes) {
  // The selection reads PKGM_NET_IO when no explicit override is given, so
  // take the env over for the duration (CI runs this suite under a pin).
  const char* saved = std::getenv("PKGM_NET_IO");
  const std::string saved_value = saved != nullptr ? saved : "";
  ::unsetenv("PKGM_NET_IO");

  // An explicit "epoll" request must select epoll even when the probe
  // reports uring available.
  ProbeOverrideGuard guard(1);
  EXPECT_EQ(SelectIoBackend("epoll"), IoBackendKind::kEpoll);
  EXPECT_EQ(SelectIoBackend("uring"), IoBackendKind::kUring);
  // Default selection follows the (overridden) probe.
  EXPECT_EQ(SelectIoBackend(""), IoBackendKind::kUring);
  // The env pin fills in when no explicit override is given, and the
  // explicit override wins over the env.
  ::setenv("PKGM_NET_IO", "epoll", 1);
  EXPECT_EQ(SelectIoBackend(""), IoBackendKind::kEpoll);
  EXPECT_EQ(SelectIoBackend("uring"), IoBackendKind::kUring);
  ::unsetenv("PKGM_NET_IO");

  SetUringProbeOverrideForTesting(0);
  EXPECT_EQ(SelectIoBackend(""), IoBackendKind::kEpoll);
  // "uring" with no uring support degrades instead of failing.
  EXPECT_EQ(SelectIoBackend("uring"), IoBackendKind::kEpoll);

  if (!saved_value.empty()) ::setenv("PKGM_NET_IO", saved_value.c_str(), 1);
}

}  // namespace
}  // namespace pkgm::net
