// Edge-case coverage across modules that the per-module suites leave
// implicit: single-element samplers, trainer evaluation helpers, NCF
// batching consistency, pair-input length sweeps, and vocabulary limits.

#include <gtest/gtest.h>

#include <cmath>

#include "core/trainer.h"
#include "kg/triple_store.h"
#include "nn/optimizer.h"
#include "rec/ncf.h"
#include "text/tokenizer.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace pkgm {
namespace {

// ---------------------------------------------------------------- samplers --

TEST(SamplerEdge, ZipfSingleElement) {
  Rng rng(1);
  ZipfSampler sampler(1, 1.0);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sampler.Sample(&rng), 0u);
}

TEST(SamplerEdge, AliasSingleElement) {
  Rng rng(2);
  AliasSampler sampler({3.5});
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sampler.Sample(&rng), 0u);
}

TEST(SamplerEdge, UniformOfOne) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(SamplerEdge, SampleWithoutReplacementZero) {
  Rng rng(4);
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
}

TEST(SamplerEdge, ShuffleSingleAndEmpty) {
  Rng rng(5);
  std::vector<int> one = {7};
  rng.Shuffle(&one);
  EXPECT_EQ(one[0], 7);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
}

// --------------------------------------------------------------- histogram --

TEST(HistogramEdge, EmptySummaryAndMean) {
  Histogram h;
  EXPECT_EQ(h.Summary(), "count=0");
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Stddev(), 0.0);
}

TEST(HistogramEdge, SingleSample) {
  Histogram h;
  h.Record(3.5);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 3.5);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 3.5);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 3.5);
  EXPECT_DOUBLE_EQ(h.Stddev(), 0.0);
}

// ----------------------------------------------------------------- trainer --

TEST(TrainerEdge, EvaluateMeanHingeNonNegativeAndDropsWithTraining) {
  kg::TripleStore store;
  for (uint32_t i = 0; i < 8; ++i) store.Add(i, 0, 8 + i % 4);

  core::PkgmModelOptions mopt;
  mopt.num_entities = 12;
  mopt.num_relations = 1;
  mopt.dim = 8;
  core::PkgmModel model(mopt);

  core::TrainerOptions topt;
  topt.learning_rate = 0.05f;
  topt.batch_size = 4;
  topt.seed = 5;
  core::Trainer trainer(&model, &store, topt);

  const double before = trainer.EvaluateMeanHinge(store.triples());
  EXPECT_GE(before, 0.0);
  trainer.Train(40);
  const double after = trainer.EvaluateMeanHinge(store.triples());
  EXPECT_GE(after, 0.0);
  EXPECT_LT(after, before);
}

TEST(TrainerEdge, EvaluateMeanHingeEmptyListIsZero) {
  kg::TripleStore store;
  store.Add(0, 0, 1);
  core::PkgmModelOptions mopt;
  mopt.num_entities = 2;
  mopt.num_relations = 1;
  mopt.dim = 4;
  core::PkgmModel model(mopt);
  core::Trainer trainer(&model, &store, core::TrainerOptions{});
  EXPECT_DOUBLE_EQ(trainer.EvaluateMeanHinge({}), 0.0);
}

// --------------------------------------------------------------------- NCF --

TEST(NcfEdge, BatchForwardMatchesSinglePredictions) {
  rec::NcfConfig cfg;
  cfg.num_users = 6;
  cfg.num_items = 9;
  cfg.gmf_dim = 4;
  cfg.mlp_dim = 6;
  cfg.mlp_hidden = {6, 3};
  cfg.seed = 9;
  rec::NcfModel model(cfg);

  std::vector<uint32_t> users = {0, 3, 5};
  std::vector<uint32_t> items = {2, 8, 1};
  Mat logits;
  model.Forward(users, items, nullptr, &logits);
  for (size_t i = 0; i < users.size(); ++i) {
    const float p_batch = 1.0f / (1.0f + std::exp(-logits(i, 0)));
    const float p_single = model.Predict(users[i], items[i], nullptr);
    EXPECT_NEAR(p_batch, p_single, 1e-5);
  }
}

TEST(NcfEdge, ParamCountMatchesArchitecture) {
  rec::NcfConfig cfg;
  cfg.num_users = 4;
  cfg.num_items = 5;
  cfg.gmf_dim = 2;
  cfg.mlp_dim = 3;
  cfg.mlp_hidden = {4};
  cfg.pkgm_dim = 2;
  cfg.seed = 11;
  rec::NcfModel model(cfg);
  // 4 embedding tables + (W,b) per hidden layer + (W,b) output layer.
  auto params = model.Params();
  EXPECT_EQ(params.size(), 4u + 2u + 2u);
  // The first MLP layer consumes 2*mlp_dim + pkgm_dim inputs.
  size_t total = 0;
  for (auto* p : params) total += p->size();
  const size_t expected = 4 * 2 + 5 * 2 + 4 * 3 + 5 * 3     // embeddings
                          + (2 * 3 + 2) * 4 + 4              // mlp0 W+b
                          + (2 + 4) * 1 + 1;                 // out W+b
  EXPECT_EQ(total, expected);
}

// --------------------------------------------------------------- tokenizer --

class PairInputLengthSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(PairInputLengthSweep, AlwaysFitsAndTerminatesWithSep) {
  const size_t max_len = GetParam();
  std::vector<uint32_t> a(40, 8), b(40, 9);
  size_t valid = 0;
  std::vector<uint32_t> segs;
  auto ids = text::BuildPairInput(a, b, max_len, &valid, &segs);
  EXPECT_EQ(ids.size(), max_len);
  EXPECT_EQ(segs.size(), max_len);
  EXPECT_LE(valid, max_len);
  EXPECT_EQ(ids[0], text::kClsId);
  EXPECT_EQ(ids[valid - 1], text::kSepId);
  // Segments are monotone 0 -> 1 over the valid prefix.
  bool seen_one = false;
  for (size_t i = 0; i < valid; ++i) {
    if (segs[i] == 1) seen_one = true;
    if (seen_one) EXPECT_EQ(segs[i], 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, PairInputLengthSweep,
                         ::testing::Values(5, 8, 16, 33, 100));

TEST(TokenizerEdge, EncodeEmptyString) {
  text::Tokenizer tok;
  tok.CountCorpusLine("a");
  tok.BuildVocab(1);
  EXPECT_TRUE(tok.Encode("").empty());
  EXPECT_TRUE(tok.Encode("   \t ").empty());
}

// ------------------------------------------------------------- adam extras --

TEST(AdamEdge, HandlesZeroGradientSteps) {
  nn::Parameter p("p", 2, 2);
  p.value.Fill(1.0f);
  nn::AdamOptimizer::Options cfg;
  cfg.lr = 0.1f;
  nn::AdamOptimizer opt({&p}, cfg);
  for (int i = 0; i < 5; ++i) opt.Step();  // all-zero grads
  for (size_t i = 0; i < p.size(); ++i) {
    EXPECT_FLOAT_EQ(p.value.data()[i], 1.0f);
  }
}

}  // namespace
}  // namespace pkgm
