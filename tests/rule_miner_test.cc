#include <gtest/gtest.h>

#include "kg/rule_miner.h"
#include "kg/synthetic_pkg.h"

namespace pkgm::kg {
namespace {

// Builds a store where brand=Apple (1,0,100) perfectly implies os=iOS
// (relation 1, value 200), and brand=Banana implies os=Android (201),
// except one noisy item.
struct FixtureResult {
  TripleStore store;
  std::vector<EntityId> items;
};

FixtureResult MakeFixture() {
  FixtureResult f;
  // items 0..9: Apple + iOS. items 10..19: Banana + Android.
  for (EntityId i = 0; i < 10; ++i) {
    f.store.Add(i, 0, 100);
    f.store.Add(i, 1, 200);
    f.items.push_back(i);
  }
  for (EntityId i = 10; i < 20; ++i) {
    f.store.Add(i, 0, 101);
    f.store.Add(i, 1, 201);
    f.items.push_back(i);
  }
  // one contrarian: Apple but Android.
  f.store.Add(20, 0, 100);
  f.store.Add(20, 1, 201);
  f.items.push_back(20);
  return f;
}

TEST(RuleMinerTest, FindsHighConfidenceAssociations) {
  FixtureResult f = MakeFixture();
  RuleMinerOptions opt;
  opt.min_support = 3;
  opt.min_confidence = 0.5;
  std::vector<Rule> rules = MineRules(f.store, f.items, opt);
  ASSERT_FALSE(rules.empty());

  // (brand=Apple) => (os=iOS) should exist with confidence 10/11.
  bool found = false;
  for (const Rule& r : rules) {
    if (r.body_relation == 0 && r.body_value == 100 && r.head_relation == 1 &&
        r.head_value == 200) {
      found = true;
      EXPECT_EQ(r.support, 10u);
      EXPECT_NEAR(r.confidence, 10.0 / 11.0, 1e-9);
    }
    // No same-relation tautologies.
    EXPECT_NE(r.body_relation, r.head_relation);
  }
  EXPECT_TRUE(found);
}

TEST(RuleMinerTest, MinConfidenceFilters) {
  FixtureResult f = MakeFixture();
  RuleMinerOptions opt;
  opt.min_support = 1;
  opt.min_confidence = 0.95;  // Apple=>iOS is 10/11 ~ 0.909 < 0.95
  std::vector<Rule> rules = MineRules(f.store, f.items, opt);
  for (const Rule& r : rules) {
    EXPECT_GE(r.confidence, 0.95);
  }
}

TEST(RuleMinerTest, MinSupportFilters) {
  FixtureResult f = MakeFixture();
  RuleMinerOptions opt;
  opt.min_support = 11;  // nothing co-occurs 11 times
  opt.min_confidence = 0.0;
  EXPECT_TRUE(MineRules(f.store, f.items, opt).empty());
}

TEST(RuleMinerTest, RulesSortedByConfidence) {
  FixtureResult f = MakeFixture();
  RuleMinerOptions opt;
  opt.min_support = 3;
  opt.min_confidence = 0.1;
  std::vector<Rule> rules = MineRules(f.store, f.items, opt);
  for (size_t i = 1; i < rules.size(); ++i) {
    EXPECT_GE(rules[i - 1].confidence, rules[i].confidence);
  }
}

TEST(RuleInferencerTest, PredictsImpliedTail) {
  FixtureResult f = MakeFixture();
  RuleMinerOptions opt;
  opt.min_support = 3;
  opt.min_confidence = 0.5;
  RuleInferencer inferencer(MineRules(f.store, f.items, opt));
  ASSERT_GT(inferencer.num_rules(), 0u);

  // A new Apple item with no observed os: rules should predict iOS first.
  f.store.Add(30, 0, 100);
  auto predicted = inferencer.PredictTails(f.store, 30, 1);
  ASSERT_FALSE(predicted.empty());
  EXPECT_EQ(predicted[0].first, 200u);
  EXPECT_GT(predicted[0].second, 0.5);
}

TEST(RuleInferencerTest, NoMatchingBodyGivesNothing) {
  FixtureResult f = MakeFixture();
  RuleInferencer inferencer(MineRules(f.store, f.items, RuleMinerOptions{}));
  f.store.Add(31, 0, 999);  // unseen brand
  EXPECT_TRUE(inferencer.PredictTails(f.store, 31, 1).empty());
}

TEST(RuleInferencerTest, NoisyOrBoostsMultiRuleAgreement) {
  // Two independent bodies implying the same head must yield higher
  // aggregated confidence than either alone.
  TripleStore store;
  std::vector<EntityId> items;
  for (EntityId i = 0; i < 12; ++i) {
    store.Add(i, 0, 100);  // body A
    store.Add(i, 2, 300);  // body B
    store.Add(i, 1, 200);  // head
    items.push_back(i);
  }
  // Weaken both bodies independently.
  store.Add(20, 0, 100);
  store.Add(20, 1, 201);
  items.push_back(20);
  store.Add(21, 2, 300);
  store.Add(21, 1, 202);
  items.push_back(21);

  RuleMinerOptions opt;
  opt.min_support = 3;
  opt.min_confidence = 0.3;
  RuleInferencer inferencer(MineRules(store, items, opt));

  // Item with only body A.
  store.Add(30, 0, 100);
  double conf_single = inferencer.PredictTails(store, 30, 1)[0].second;
  // Item with both bodies.
  store.Add(31, 0, 100);
  store.Add(31, 2, 300);
  double conf_double = inferencer.PredictTails(store, 31, 1)[0].second;
  EXPECT_GT(conf_double, conf_single);
}

TEST(RuleInferencerTest, EvaluateTailsPerfectRule) {
  FixtureResult f = MakeFixture();
  RuleMinerOptions opt;
  opt.min_support = 3;
  opt.min_confidence = 0.5;
  RuleInferencer inferencer(MineRules(f.store, f.items, opt));

  // Held-out facts consistent with the rules.
  TripleStore query_store = f.store;
  query_store.Add(40, 0, 100);  // Apple, os unknown
  query_store.Add(41, 0, 101);  // Banana, os unknown
  std::vector<Triple> test = {{40, 1, 200}, {41, 1, 201}};
  auto [mrr, hits1] = inferencer.EvaluateTails(query_store, test, 10);
  EXPECT_DOUBLE_EQ(hits1, 1.0);
  EXPECT_DOUBLE_EQ(mrr, 1.0);
}

TEST(RuleInferencerTest, UnpredictedGetsExpectedRank) {
  RuleInferencer inferencer({});  // no rules at all
  TripleStore store;
  store.Add(0, 0, 1);
  std::vector<Triple> test = {{0, 1, 5}};
  auto [mrr, hits1] = inferencer.EvaluateTails(store, test, 9);
  EXPECT_DOUBLE_EQ(hits1, 0.0);
  EXPECT_NEAR(mrr, 1.0 / 5.0, 1e-9);  // expected rank (9+1)/2 = 5
}

TEST(RuleMinerTest, MinesOnSyntheticPkg) {
  // End-to-end sanity: the synthetic generator's product structure must
  // produce minable identity-value associations.
  SyntheticPkgOptions opt;
  opt.seed = 17;
  opt.num_categories = 4;
  opt.items_per_category = 80;
  opt.properties_per_category = 6;
  opt.values_per_property = 8;
  opt.products_per_category = 8;
  opt.identity_properties = 2;
  opt.etl_min_occurrence = 2;
  SyntheticPkg pkg = SyntheticPkgGenerator(opt).Generate();
  std::vector<EntityId> items;
  for (const auto& item : pkg.items) items.push_back(item.entity);

  RuleMinerOptions mopt;
  mopt.min_support = 4;
  mopt.min_confidence = 0.6;
  std::vector<Rule> rules = MineRules(pkg.observed, items, mopt);
  EXPECT_GT(rules.size(), 10u) << "product structure should yield rules";
}

}  // namespace
}  // namespace pkgm::kg
