// Property sweep over the synthetic PKG generator: structural invariants
// that every generated graph must satisfy, across seeds and fill rates.

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "kg/synthetic_pkg.h"

namespace pkgm::kg {
namespace {

struct SweepParam {
  uint64_t seed;
  double fill_rate;
};

class GeneratorInvariantSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  SyntheticPkg Generate() const {
    SyntheticPkgOptions opt;
    opt.seed = GetParam().seed;
    opt.observed_fill_rate = GetParam().fill_rate;
    opt.num_categories = 4;
    opt.items_per_category = 50;
    opt.properties_per_category = 6;
    opt.shared_property_pool = 8;
    opt.values_per_property = 10;
    opt.products_per_category = 8;
    opt.identity_properties = 2;
    opt.noise_properties = 3;
    opt.noise_property_occurrences = 2;
    opt.etl_min_occurrence = 4;
    return SyntheticPkgGenerator(opt).Generate();
  }
};

TEST_P(GeneratorInvariantSweep, ObservedAttributeTriplesComeFromGroundTruth) {
  SyntheticPkg pkg = Generate();
  // Index: item entity -> item index.
  std::unordered_map<EntityId, uint32_t> by_entity;
  for (uint32_t i = 0; i < pkg.items.size(); ++i) {
    by_entity[pkg.items[i].entity] = i;
  }
  std::unordered_set<RelationId> props(pkg.property_relations.begin(),
                                       pkg.property_relations.end());
  for (const Triple& t : pkg.observed.triples()) {
    if (!props.count(t.relation)) continue;  // similarTo etc.
    auto it = by_entity.find(t.head);
    ASSERT_NE(it, by_entity.end()) << "attribute triple with non-item head";
    EXPECT_EQ(pkg.GroundTruthTail(it->second, t.relation), t.tail)
        << "observed attribute must match ground truth";
  }
}

TEST_P(GeneratorInvariantSweep, HeldOutTriplesAreDisjointFromObserved) {
  SyntheticPkg pkg = Generate();
  for (const Triple& t : pkg.held_out) {
    EXPECT_FALSE(pkg.observed.Contains(t));
  }
}

TEST_P(GeneratorInvariantSweep, AttributeValuesComeFromPropertyUniverse) {
  SyntheticPkg pkg = Generate();
  for (const auto& item : pkg.items) {
    for (const auto& [rel, value] : item.attributes) {
      const auto& universe = pkg.property_values.at(rel);
      EXPECT_NE(std::find(universe.begin(), universe.end(), value),
                universe.end());
    }
  }
}

TEST_P(GeneratorInvariantSweep, NoDuplicateRelationPerItem) {
  SyntheticPkg pkg = Generate();
  for (const auto& item : pkg.items) {
    std::set<RelationId> seen;
    for (const auto& [rel, value] : item.attributes) {
      EXPECT_TRUE(seen.insert(rel).second)
          << "item has two values for one property";
    }
  }
}

TEST_P(GeneratorInvariantSweep, EveryItemEntityIsDistinct) {
  SyntheticPkg pkg = Generate();
  std::set<EntityId> entities;
  for (const auto& item : pkg.items) {
    EXPECT_TRUE(entities.insert(item.entity).second);
    EXPECT_LT(item.product, pkg.num_products);
  }
}

TEST_P(GeneratorInvariantSweep, EtlOutputMeetsThreshold) {
  SyntheticPkg pkg = Generate();
  auto freq = pkg.observed.RelationFrequencies(pkg.relations.size());
  for (uint32_t r = 0; r < pkg.relations.size(); ++r) {
    if (freq[r] > 0) {
      EXPECT_GE(freq[r], 4u) << "relation survived ETL below threshold: "
                             << pkg.relations.Name(r);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndFillRates, GeneratorInvariantSweep,
    ::testing::Values(SweepParam{1, 0.75}, SweepParam{2, 0.75},
                      SweepParam{3, 0.5}, SweepParam{4, 1.0},
                      SweepParam{5, 0.25}));

}  // namespace
}  // namespace pkgm::kg
