// End-to-end tests for the downstream-inference subsystem (src/infer/):
// .pkgi round-trips, and the core acceptance property — recommend /
// classify / align answers served through KnowledgeServer + the wire
// protocol are bit-identical (fp32 backend) to the offline task-layer
// forwards, and stay that way across per-task weight hot swaps under
// load. An int8 mmap embedding backend must agree to cosine >= 0.9999.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/service.h"
#include "infer/engine.h"
#include "infer/model_file.h"
#include "infer/pipeline.h"
#include "infer/registry.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "nn/activations.h"
#include "serve/knowledge_server.h"
#include "serve/request.h"
#include "store/embedding_store_writer.h"
#include "store/mmap_embedding_store.h"
#include "store/model_registry.h"
#include "tasks/item_alignment.h"
#include "tasks/item_classification.h"
#include "tasks/pipeline.h"
#include "tasks/variant.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace pkgm::infer {
namespace {

using serve::ResponseCode;
using serve::ServiceRequest;
using serve::ServiceResponse;
using serve::TaskKind;

// Serving-scale pipeline (the pkgm_netd configuration): big enough that
// every dataset the infer pipeline builds is non-empty, small enough to
// train in seconds under sanitizers.
tasks::PipelineOptions TestPipelineOptions(uint64_t seed) {
  tasks::PipelineOptions opt;
  opt.pkg.seed = seed;
  opt.pkg.num_categories = 8;
  opt.pkg.items_per_category = 125;
  opt.dim = 32;
  opt.pretrain_epochs = 3;
  opt.service_k = 10;
  opt.seed = seed;
  return opt;
}

// One pre-training + two identical downstream-training runs: bundle A is
// published for serving, bundle B stays offline as the independent
// expectation. Training is fully seeded, so A and B are bit-identical —
// which the fp32 parity tests implicitly verify.
struct InferFixture {
  InferFixture() {
    pkgm = tasks::BuildAndPretrain(TestPipelineOptions(/*seed=*/2021));
    InferPipelineOptions iopt;
    iopt.seed = 97;
    served = TrainInferModels(pkgm, iopt);
    offline = TrainInferModels(pkgm, iopt);
  }

  tasks::PretrainedPkgm pkgm;
  InferBundle served;
  InferBundle offline;
};

InferFixture& Fixture() {
  static InferFixture* fx = new InferFixture();
  return *fx;
}

// ---- Offline expectation paths (independent of InferenceEngine) ----

// The task models cache per-batch activations inside Forward (which is
// why InferenceEngine serializes batches on a per-generation mutex), so
// the offline oracles must serialize too when tests drive them from
// concurrent threads.
std::mutex& OfflineForwardMutex() {
  static std::mutex mu;
  return mu;
}

float OfflineRecommend(const tasks::TrainedRecommender& m,
                       const core::ServiceVectorProvider& services,
                       core::ServiceMode mode, uint32_t user, uint32_t item) {
  std::lock_guard<std::mutex> lock(OfflineForwardMutex());
  std::vector<uint32_t> users{user}, items{item};
  Mat pkgm_features;
  const Mat* features = nullptr;
  if (m.config.pkgm_dim > 0) {
    pkgm_features = Mat(1, m.config.pkgm_dim);
    const Vec s = services.Condensed(item, mode);
    for (uint32_t j = 0; j < m.config.pkgm_dim; ++j) pkgm_features(0, j) = s[j];
    features = &pkgm_features;
  }
  Mat logits;
  m.model->Forward(users, items, features, &logits);
  return nn::SigmoidScalar(logits(0, 0));
}

void OfflineClassify(const tasks::TrainedClassifier& m,
                     const core::ServiceVectorProvider* services,
                     tasks::PkgmVariant variant, const std::string& title,
                     uint32_t item, uint32_t top_k,
                     std::vector<uint32_t>* class_ids,
                     std::vector<float>* class_probs) {
  std::lock_guard<std::mutex> lock(OfflineForwardMutex());
  data::ClassificationSample sample;
  sample.item_index = item;
  sample.title = title;
  text::EncodedInput input = tasks::EncodeClassificationSample(
      sample, m.tokenizer, services, variant, m.config.max_len);
  Vec cls;
  m.bert->EncodeCls(input, &cls);
  Mat cls_mat(1, m.config.dim);
  for (uint32_t j = 0; j < m.config.dim; ++j) cls_mat(0, j) = cls[j];
  Mat logits;
  m.head->Forward(cls_mat, &logits);
  std::vector<float> probs(logits.Row(0), logits.Row(0) + m.num_classes);
  SoftmaxInplace(m.num_classes, probs.data());
  const uint32_t k = std::min(top_k == 0 ? 1u : top_k, m.num_classes);
  std::vector<uint32_t> order(m.num_classes);
  for (uint32_t j = 0; j < m.num_classes; ++j) order[j] = j;
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](uint32_t a, uint32_t b) {
                      if (probs[a] != probs[b]) return probs[a] > probs[b];
                      return a < b;
                    });
  class_ids->assign(order.begin(), order.begin() + k);
  class_probs->clear();
  for (uint32_t j = 0; j < k; ++j) class_probs->push_back(probs[order[j]]);
}

float OfflineAlign(const tasks::TrainedAligner& m,
                   const core::ServiceVectorProvider* services,
                   tasks::PkgmVariant variant, const std::string& title_a,
                   const std::string& title_b, uint32_t item_a,
                   uint32_t item_b) {
  std::lock_guard<std::mutex> lock(OfflineForwardMutex());
  data::AlignmentPair pair;
  pair.item_a = item_a;
  pair.item_b = item_b;
  pair.title_a = title_a;
  pair.title_b = title_b;
  text::EncodedInput input = tasks::EncodeAlignmentPair(
      pair, m.tokenizer, services, variant, m.config.max_len);
  Vec cls;
  m.bert->EncodeCls(input, &cls);
  Mat cls_mat(1, m.config.dim);
  for (uint32_t j = 0; j < m.config.dim; ++j) cls_mat(0, j) = cls[j];
  Mat logits;
  m.head->Forward(cls_mat, &logits);
  return logits(0, 0);
}

// Deterministic mixed request stream over the fixture's item/user space.
std::vector<ServiceRequest> MakeMixedRequests(const InferFixture& fx,
                                              size_t count, uint64_t seed) {
  const uint32_t num_items =
      static_cast<uint32_t>(fx.served.titles.size());
  std::vector<ServiceRequest> requests(count);
  Rng rng(seed);
  for (size_t i = 0; i < count; ++i) {
    ServiceRequest& r = requests[i];
    r.item = static_cast<uint32_t>(rng.Uniform(num_items));
    switch (i % 3) {
      case 0:
        r.task = TaskKind::kRecommend;
        r.user = static_cast<uint32_t>(rng.Uniform(fx.served.num_users));
        break;
      case 1:
        r.task = TaskKind::kClassify;
        r.top_k = 3;
        break;
      default:
        r.task = TaskKind::kAlign;
        r.item_b = static_cast<uint32_t>(rng.Uniform(num_items));
        break;
    }
  }
  return requests;
}

// Checks one served response against the offline bundle, exactly (fp32).
void ExpectExactParity(const InferFixture& fx, const ServiceRequest& request,
                       const ServiceResponse& response) {
  ASSERT_EQ(response.code, ResponseCode::kOk)
      << "task " << TaskKindName(request.task) << " item " << request.item;
  const core::ServiceVectorProvider& services = *fx.pkgm.services;
  const tasks::PkgmVariant variant = fx.offline.variant;
  switch (request.task) {
    case TaskKind::kRecommend: {
      const float expected = OfflineRecommend(
          fx.offline.recommender, services,
          tasks::VariantServiceMode(variant), request.user, request.item);
      EXPECT_EQ(response.score, expected);
      break;
    }
    case TaskKind::kClassify: {
      std::vector<uint32_t> ids;
      std::vector<float> probs;
      OfflineClassify(fx.offline.classifier, &services, variant,
                      fx.offline.titles[request.item], request.item,
                      request.top_k, &ids, &probs);
      EXPECT_EQ(response.class_ids, ids);
      EXPECT_EQ(response.class_probs, probs);
      break;
    }
    case TaskKind::kAlign: {
      const float expected = OfflineAlign(
          fx.offline.aligner, &services, variant,
          fx.offline.titles[request.item], fx.offline.titles[request.item_b],
          request.item, request.item_b);
      EXPECT_EQ(response.score, expected);
      break;
    }
    case TaskKind::kLookup:
      FAIL() << "lookup in an inference parity stream";
  }
}

// ---- InferModelRegistry ----

TEST(InferRegistryTest, GenerationsAreMonotonicAndPerTask) {
  InferFixture& fx = Fixture();
  InferModelRegistry registry;
  EXPECT_EQ(registry.recommender(), nullptr);
  EXPECT_EQ(registry.classifier(), nullptr);
  EXPECT_EQ(registry.aligner(), nullptr);

  InferPipelineOptions iopt;
  iopt.seed = 97;
  InferBundle a = TrainInferModels(fx.pkgm, iopt);
  InferBundle b = TrainInferModels(fx.pkgm, iopt);
  EXPECT_EQ(registry.PublishRecommender(std::move(a.recommender), a.variant),
            1u);
  EXPECT_EQ(registry.PublishRecommender(std::move(b.recommender), b.variant),
            2u);
  // The classifier slot has its own counter; swapping one task never
  // advances another.
  EXPECT_EQ(registry.PublishClassifier(std::move(a.classifier), a.variant),
            1u);
  ASSERT_NE(registry.recommender(), nullptr);
  EXPECT_EQ(registry.recommender()->generation, 2u);
  EXPECT_EQ(registry.classifier()->generation, 1u);
  EXPECT_EQ(registry.aligner(), nullptr);
}

// ---- Engine edge cases (no model / invalid operands) ----

TEST(InferenceEngineTest, NoPublishedModelShedsBatch) {
  InferFixture& fx = Fixture();
  InferModelRegistry empty;
  InferenceEngine engine(&empty, fx.pkgm.services.get(), fx.served.titles);
  ServiceRequest request;
  request.task = TaskKind::kRecommend;
  std::vector<const ServiceRequest*> batch{&request};
  std::vector<ServiceResponse> responses(1);
  engine.ExecuteBatch(TaskKind::kRecommend, batch, &responses);
  EXPECT_EQ(responses[0].code, ResponseCode::kRejected);
}

TEST(InferenceEngineTest, InvalidOperandsAnsweredPerRequest) {
  InferFixture& fx = Fixture();
  InferPipelineOptions iopt;
  iopt.seed = 97;
  InferBundle bundle = TrainInferModels(fx.pkgm, iopt);
  InferModelRegistry registry;
  registry.PublishRecommender(std::move(bundle.recommender), bundle.variant);
  InferenceEngine engine(&registry, fx.pkgm.services.get(), fx.served.titles);

  ServiceRequest bad_user;
  bad_user.task = TaskKind::kRecommend;
  bad_user.user = fx.served.num_users + 7;
  ServiceRequest bad_item;
  bad_item.task = TaskKind::kRecommend;
  bad_item.item = 1u << 20;
  ServiceRequest good;
  good.task = TaskKind::kRecommend;
  good.user = 0;
  good.item = 1;
  std::vector<const ServiceRequest*> batch{&bad_user, &good, &bad_item};
  std::vector<ServiceResponse> responses(3);
  engine.ExecuteBatch(TaskKind::kRecommend, batch, &responses);
  EXPECT_EQ(responses[0].code, ResponseCode::kInvalidItem);
  EXPECT_EQ(responses[1].code, ResponseCode::kOk);
  EXPECT_EQ(responses[2].code, ResponseCode::kInvalidItem);
  // The invalid neighbors must not perturb the valid row.
  EXPECT_EQ(responses[1].score,
            OfflineRecommend(fx.offline.recommender, *fx.pkgm.services,
                             tasks::VariantServiceMode(fx.offline.variant),
                             good.user, good.item));
}

// ---- .pkgi round-trips ----

TEST(InferModelFileTest, RoundTripPreservesForwardsBitExactly) {
  InferFixture& fx = Fixture();
  InferPipelineOptions iopt;
  iopt.seed = 97;
  InferBundle bundle = TrainInferModels(fx.pkgm, iopt);
  // Per-process names: concurrent invocations of this binary must not
  // tear each other's files.
  const std::string dir = ::testing::TempDir();
  const std::string tag = std::to_string(::getpid());
  const std::string rec_path = dir + "/round." + tag + ".recommend.pkgi";
  const std::string cls_path = dir + "/round." + tag + ".classify.pkgi";
  const std::string aln_path = dir + "/round." + tag + ".align.pkgi";
  ASSERT_TRUE(SaveRecommenderModel(bundle.recommender, bundle.variant,
                                   /*generation=*/7, rec_path)
                  .ok());
  ASSERT_TRUE(SaveClassifierModel(bundle.classifier, bundle.variant,
                                  /*generation=*/7, cls_path)
                  .ok());
  ASSERT_TRUE(
      SaveAlignerModel(bundle.aligner, bundle.variant, /*generation=*/7,
                       aln_path)
          .ok());

  auto rec = LoadInferModel(rec_path);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec.value().task, InferTask::kRecommend);
  EXPECT_EQ(rec.value().generation, 7u);
  EXPECT_EQ(rec.value().variant, bundle.variant);
  auto cls = LoadInferModel(cls_path);
  ASSERT_TRUE(cls.ok()) << cls.status().ToString();
  auto aln = LoadInferModel(aln_path);
  ASSERT_TRUE(aln.ok()) << aln.status().ToString();

  // Loaded weights must reproduce every forward bit for bit.
  const core::ServiceVectorProvider& services = *fx.pkgm.services;
  const core::ServiceMode mode = tasks::VariantServiceMode(bundle.variant);
  for (uint32_t item : {0u, 17u, 500u, 999u}) {
    EXPECT_EQ(OfflineRecommend(rec.value().recommender, services, mode,
                               item % bundle.num_users, item),
              OfflineRecommend(bundle.recommender, services, mode,
                               item % bundle.num_users, item));
    std::vector<uint32_t> ids_a, ids_b;
    std::vector<float> probs_a, probs_b;
    OfflineClassify(cls.value().classifier, &services, bundle.variant,
                    bundle.titles[item], item, 3, &ids_a, &probs_a);
    OfflineClassify(bundle.classifier, &services, bundle.variant,
                    bundle.titles[item], item, 3, &ids_b, &probs_b);
    EXPECT_EQ(ids_a, ids_b);
    EXPECT_EQ(probs_a, probs_b);
    EXPECT_EQ(OfflineAlign(aln.value().aligner, &services, bundle.variant,
                           bundle.titles[item], bundle.titles[999 - item],
                           item, 999 - item),
              OfflineAlign(bundle.aligner, &services, bundle.variant,
                           bundle.titles[item], bundle.titles[999 - item],
                           item, 999 - item));
  }

  auto inspected = InspectInferModel(cls_path);
  ASSERT_TRUE(inspected.ok());
  EXPECT_NE(inspected.value().find("\"task\": \"classify\""),
            std::string::npos);
}

TEST(InferModelFileTest, CorruptionIsRejected) {
  InferFixture& fx = Fixture();
  InferPipelineOptions iopt;
  iopt.seed = 97;
  InferBundle bundle = TrainInferModels(fx.pkgm, iopt);
  const std::string path = ::testing::TempDir() + "/corrupt.align.pkgi";
  ASSERT_TRUE(
      SaveAlignerModel(bundle.aligner, bundle.variant, 1, path).ok());

  // Flip one payload byte: the checksum must catch it.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, sizeof(InferModelHeader) + 123, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadInferModel(path).ok());
  EXPECT_FALSE(InspectInferModel(path).ok());
  EXPECT_FALSE(LoadInferModel(path + ".does-not-exist").ok());
}

// ---- End-to-end parity over the wire (fp32, bit-identical) ----

TEST(InferServingTest, WireParityWithOfflineForwardsFp32) {
  InferFixture& fx = Fixture();
  InferPipelineOptions iopt;
  iopt.seed = 97;
  InferBundle bundle = TrainInferModels(fx.pkgm, iopt);
  InferModelRegistry models;
  models.PublishRecommender(std::move(bundle.recommender), bundle.variant);
  models.PublishClassifier(std::move(bundle.classifier), bundle.variant);
  models.PublishAligner(std::move(bundle.aligner), bundle.variant);
  InferenceEngine engine(&models, fx.pkgm.services.get(), fx.served.titles);

  serve::KnowledgeServer server(fx.pkgm.services.get());
  server.AttachInferExecutor(&engine);
  server.Start();
  net::NetServer net(&server);
  ASSERT_TRUE(net.Start().ok());
  auto client = net::NetClient::Connect("127.0.0.1", net.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  std::vector<ServiceRequest> requests = MakeMixedRequests(fx, 90, 5);
  // A lookup mixed into the same batch must ride its own frame unharmed.
  ServiceRequest lookup;
  lookup.item = 3;
  requests.push_back(lookup);
  auto futures = client.value()->SubmitBatch(requests);
  ASSERT_EQ(futures.size(), requests.size());
  for (size_t i = 0; i + 1 < requests.size(); ++i) {
    ExpectExactParity(fx, requests[i], futures[i].get());
  }
  ServiceResponse lookup_response = futures.back().get();
  EXPECT_EQ(lookup_response.code, ResponseCode::kOk);
  EXPECT_EQ(lookup_response.vectors.size(), 1u);

  auto stats = client.value()->ServerStatsJson();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().find("\"protocol_errors\":0"), std::string::npos)
      << stats.value();
  net.Stop();
  server.Stop();
}

// ---- int8 mmap embedding backend: cosine >= 0.9999 vs offline fp32 ----

TEST(InferServingTest, Int8StoreScoresCosineCloseToFp32) {
  InferFixture& fx = Fixture();
  const std::string path = ::testing::TempDir() + "/infer_int8.pkgs";
  store::StoreWriterOptions wopt;
  wopt.dtype = store::StoreDtype::kInt8;
  wopt.generation = 1;
  ASSERT_TRUE(
      store::EmbeddingStoreWriter(wopt).Write(*fx.pkgm.model, path).ok());
  auto opened = store::MmapEmbeddingStore::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto source =
      std::make_shared<store::MmapEmbeddingStore>(std::move(opened.value()));
  std::vector<kg::EntityId> items;
  std::vector<std::vector<kg::RelationId>> keys;
  for (uint32_t i = 0; i < fx.pkgm.services->num_items(); ++i) {
    items.push_back(fx.pkgm.services->item_entity(i));
    keys.push_back(fx.pkgm.services->key_relations(i));
  }
  auto provider = std::make_shared<core::ServiceVectorProvider>(
      source.get(), std::move(items), std::move(keys));
  store::ModelRegistry registry;
  auto gen = std::make_shared<store::ServingGeneration>();
  gen->source = source;
  gen->provider = provider;
  gen->info.dtype = store::StoreDtype::kInt8;
  registry.Publish(gen->source, gen->provider, gen->info);

  InferPipelineOptions iopt;
  iopt.seed = 97;
  InferBundle bundle = TrainInferModels(fx.pkgm, iopt);
  InferModelRegistry models;
  models.PublishRecommender(std::move(bundle.recommender), bundle.variant);
  models.PublishClassifier(std::move(bundle.classifier), bundle.variant);
  models.PublishAligner(std::move(bundle.aligner), bundle.variant);
  InferenceEngine engine(&models, &registry, fx.served.titles);

  std::vector<ServiceRequest> requests = MakeMixedRequests(fx, 90, 11);
  std::vector<float> served_scores, offline_scores;
  for (const ServiceRequest& request : requests) {
    std::vector<const ServiceRequest*> batch{&request};
    std::vector<ServiceResponse> responses(1);
    engine.ExecuteBatch(request.task, batch, &responses);
    ASSERT_EQ(responses[0].code, ResponseCode::kOk);
    const core::ServiceVectorProvider& services = *fx.pkgm.services;
    const tasks::PkgmVariant variant = fx.offline.variant;
    switch (request.task) {
      case TaskKind::kRecommend:
        served_scores.push_back(responses[0].score);
        offline_scores.push_back(OfflineRecommend(
            fx.offline.recommender, services,
            tasks::VariantServiceMode(variant), request.user, request.item));
        break;
      case TaskKind::kClassify: {
        std::vector<uint32_t> ids;
        std::vector<float> probs;
        OfflineClassify(fx.offline.classifier, &services, variant,
                        fx.offline.titles[request.item], request.item,
                        request.top_k, &ids, &probs);
        for (size_t j = 0; j < probs.size(); ++j) {
          served_scores.push_back(responses[0].class_probs[j]);
          offline_scores.push_back(probs[j]);
        }
        break;
      }
      case TaskKind::kAlign:
        served_scores.push_back(responses[0].score);
        offline_scores.push_back(OfflineAlign(
            fx.offline.aligner, &services, variant,
            fx.offline.titles[request.item],
            fx.offline.titles[request.item_b], request.item, request.item_b));
        break;
      case TaskKind::kLookup:
        break;
    }
  }
  ASSERT_GT(served_scores.size(), 100u);
  double dot = 0.0, norm_a = 0.0, norm_b = 0.0;
  for (size_t i = 0; i < served_scores.size(); ++i) {
    dot += static_cast<double>(served_scores[i]) * offline_scores[i];
    norm_a += static_cast<double>(served_scores[i]) * served_scores[i];
    norm_b += static_cast<double>(offline_scores[i]) * offline_scores[i];
  }
  const double cosine = dot / std::sqrt(norm_a * norm_b);
  EXPECT_GE(cosine, 0.9999) << "int8 embedding backend drifted: " << cosine;
}

// ---- Hot swap under load: parity holds, nothing is shed ----

TEST(InferServingTest, ParityAcrossWeightHotSwapUnderLoad) {
  InferFixture& fx = Fixture();
  InferPipelineOptions iopt;
  iopt.seed = 97;
  InferBundle bundle = TrainInferModels(fx.pkgm, iopt);
  InferModelRegistry models;
  models.PublishRecommender(std::move(bundle.recommender), bundle.variant);
  models.PublishClassifier(std::move(bundle.classifier), bundle.variant);
  models.PublishAligner(std::move(bundle.aligner), bundle.variant);
  InferenceEngine engine(&models, fx.pkgm.services.get(), fx.served.titles);

  serve::KnowledgeServer server(fx.pkgm.services.get());
  server.AttachInferExecutor(&engine);
  server.Start();
  net::NetServer net(&server);
  ASSERT_TRUE(net.Start().ok());
  net::NetClientOptions copt;
  copt.num_connections = 2;
  auto client = net::NetClient::Connect("127.0.0.1", net.port(), copt);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // Swap source: the same weights reloaded from disk (bit-identical), so
  // parity must hold no matter which generation a request lands on.
  const std::string prefix =
      ::testing::TempDir() + "/swap." + std::to_string(::getpid());
  InferBundle swap_source = TrainInferModels(fx.pkgm, iopt);
  ASSERT_TRUE(SaveRecommenderModel(swap_source.recommender,
                                   swap_source.variant, 2,
                                   prefix + ".rec.pkgi")
                  .ok());
  ASSERT_TRUE(SaveClassifierModel(swap_source.classifier, swap_source.variant,
                                  2, prefix + ".cls.pkgi")
                  .ok());
  ASSERT_TRUE(SaveAlignerModel(swap_source.aligner, swap_source.variant, 2,
                               prefix + ".aln.pkgi")
                  .ok());

  constexpr int kThreads = 3;
  constexpr int kBatchesPerThread = 20;
  std::atomic<bool> failed{false};
  std::vector<std::thread> drivers;
  for (int t = 0; t < kThreads; ++t) {
    drivers.emplace_back([&, t] {
      for (int b = 0; b < kBatchesPerThread; ++b) {
        std::vector<ServiceRequest> requests =
            MakeMixedRequests(fx, 12, 1000 + t * 100 + b);
        auto futures = client.value()->SubmitBatch(requests);
        for (size_t i = 0; i < requests.size(); ++i) {
          ServiceResponse response = futures[i].get();
          ExpectExactParity(fx, requests[i], response);
          if (response.code != ResponseCode::kOk) failed = true;
        }
      }
    });
  }
  // Mid-traffic: republish every task once from the reloaded files.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (const char* name : {".rec.pkgi", ".cls.pkgi", ".aln.pkgi"}) {
    auto loaded = LoadInferModel(prefix + name);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    switch (loaded.value().task) {
      case InferTask::kRecommend:
        EXPECT_EQ(models.PublishRecommender(
                      std::move(loaded.value().recommender),
                      loaded.value().variant),
                  2u);
        break;
      case InferTask::kClassify:
        EXPECT_EQ(models.PublishClassifier(
                      std::move(loaded.value().classifier),
                      loaded.value().variant),
                  2u);
        break;
      case InferTask::kAlign:
        EXPECT_EQ(
            models.PublishAligner(std::move(loaded.value().aligner),
                                  loaded.value().variant),
            2u);
        break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (auto& d : drivers) d.join();
  EXPECT_FALSE(failed.load());

  auto stats = client.value()->ServerStatsJson();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().find("\"protocol_errors\":0"), std::string::npos)
      << stats.value();
  EXPECT_NE(stats.value().find("\"exec_rejected\":0"), std::string::npos)
      << stats.value();
  net.Stop();
  server.Stop();
}

}  // namespace
}  // namespace pkgm::infer
