// Storage study for the on-disk triple index (src/kg/*.pkgt*): build
// throughput, point-lookup and conjunctive-join latency, and resident
// memory for the two TripleSource backends —
//
//   mem-store   the in-memory TripleStore (hash maps; the pre-index
//               baseline every consumer used before)
//   mmap-index  a .pkgt index served zero-copy out of a file mapping by
//               binary search over sorted permutation runs
//
// plus answer-parity spot checks between the backends while measuring.
//
//   bench_kg_index [--smoke] [--json out.json]
//
// --smoke shrinks the graph so the bench finishes in seconds (the CI
// configuration); --json writes the headline numbers for artifact upload.

#include <malloc.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "kg/indexed_query_engine.h"
#include "kg/mmap_triple_index.h"
#include "kg/synthetic_pkg.h"
#include "kg/triple_index_writer.h"
#include "kg/triple_store.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace pkgm {
namespace {

struct BenchConfig {
  uint32_t num_categories = 40;
  uint32_t items_per_category = 2000;
  uint32_t point_lookups = 200000;
  uint32_t join_queries = 400;
};

BenchConfig SmokeConfig() {
  BenchConfig c;
  c.num_categories = 8;
  c.items_per_category = 150;
  c.point_lookups = 20000;
  c.join_queries = 60;
  return c;
}

/// VmRSS from /proc/self/status, in bytes (0 if unavailable).
uint64_t ResidentBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %llu kB",
                    reinterpret_cast<unsigned long long*>(&kb)) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

struct BackendResult {
  std::string name;
  uint64_t rss_delta = 0;  // resident growth attributable to the backend
  double contains_p50_us = 0.0;
  double tails_p50_us = 0.0;
  double heads_p50_us = 0.0;
  double relations_p50_us = 0.0;
};

/// Mixed point-lookup loop over one TripleSource: Contains / Tails / Heads
/// / RelationsOf, half hits (sampled stored triples) and half likely
/// misses (perturbed ids), identical probe sequence for every backend.
uint64_t DrivePointLookups(const kg::TripleSource& source,
                           const std::vector<kg::Triple>& probes,
                           BackendResult* out) {
  Histogram contains, tails, heads, relations;
  uint64_t sink = 0;
  for (const kg::Triple& p : probes) {
    Stopwatch sw;
    sink += source.Contains(p.head, p.relation, p.tail) ? 1 : 0;
    contains.Record(sw.ElapsedSeconds() * 1e6);
    sw.Reset();
    sink += source.Tails(p.head, p.relation).size();
    tails.Record(sw.ElapsedSeconds() * 1e6);
    sw.Reset();
    sink += source.Heads(p.relation, p.tail).size();
    heads.Record(sw.ElapsedSeconds() * 1e6);
    sw.Reset();
    sink += source.RelationsOf(p.head).size();
    relations.Record(sw.ElapsedSeconds() * 1e6);
  }
  out->contains_p50_us = contains.Percentile(0.5);
  out->tails_p50_us = tails.Percentile(0.5);
  out->heads_p50_us = heads.Percentile(0.5);
  out->relations_p50_us = relations.Percentile(0.5);
  return sink;
}

std::vector<kg::Triple> MakeProbes(const std::vector<kg::Triple>& triples,
                                   uint32_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<kg::Triple> probes;
  probes.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    kg::Triple p = triples[rng.Uniform(static_cast<uint32_t>(triples.size()))];
    if (i % 2 == 1) p.tail += 1 + static_cast<uint32_t>(rng.Uniform(7));
    probes.push_back(p);
  }
  return probes;
}

int Run(bool smoke, const std::string& json_path) {
  const BenchConfig c = smoke ? SmokeConfig() : BenchConfig{};
  std::printf("\n==== KG triple index: build / lookup / join / memory ====\n\n");

  // The synthetic product KG. Only the flat triple list is kept; the
  // backends under test are built from it inside measured scopes.
  std::vector<kg::Triple> triples;
  {
    kg::SyntheticPkgOptions opt;
    opt.seed = 2022;
    opt.num_categories = c.num_categories;
    opt.items_per_category = c.items_per_category;
    kg::SyntheticPkg pkg = kg::SyntheticPkgGenerator(opt).Generate();
    triples = pkg.observed.triples();
  }
  std::printf("%s triples (%u categories x %u items)%s\n\n",
              WithThousandsSeparators(triples.size()).c_str(),
              c.num_categories, c.items_per_category, smoke ? " (smoke)" : "");
  const std::vector<kg::Triple> probes =
      MakeProbes(triples, c.point_lookups / 4, /*seed=*/2022);

  const std::string index_path = "/tmp/bench_kg_index.pkgt";
  BackendResult mem{"mem-store"};
  BackendResult idx{"mmap-index"};
  kg::TripleIndexBuildStats build;
  uint64_t mem_sink = 0, idx_sink = 0;

  // Phase 1: in-memory store — measure resident growth of the hash-map
  // tier, drive the probe mix, build the index from it, then free it so
  // the mmap backend is measured without the store resident. malloc_trim
  // returns the generator's freed pages to the OS first; otherwise the
  // store builds inside recycled pages and its growth is invisible to RSS.
  {
    ::malloc_trim(0);
    const uint64_t rss0 = ResidentBytes();
    kg::TripleStore store;
    for (const kg::Triple& t : triples) store.Add(t);
    mem.rss_delta = ResidentBytes() - rss0;
    mem_sink = DrivePointLookups(store, probes, &mem);

    auto stats = kg::TripleIndexWriter().Write(store, index_path);
    PKGM_CHECK(stats.ok()) << stats.status().message();
    build = stats.value();
  }

  // Phase 2: mmap index. The rss baseline is read before Open() because
  // the checksum pass at open already faults every page of the mapping in.
  ::malloc_trim(0);
  const uint64_t idx_rss0 = ResidentBytes();
  auto opened = kg::MmapTripleIndex::Open(index_path);
  PKGM_CHECK(opened.ok()) << opened.status().message();
  const kg::MmapTripleIndex& index = opened.value();
  idx.rss_delta = ResidentBytes() - idx_rss0;
  idx_sink = DrivePointLookups(index, probes, &idx);
  PKGM_CHECK_EQ(mem_sink, idx_sink);  // identical answers along the way

  // Phase 3: conjunctive joins through the IndexedQueryEngine — the
  // canonical audit "items with (r1, t) missing r2" plus a two-positive
  // intersection, anchored on sampled stored triples.
  kg::IndexedQueryEngine engine(&index);
  Histogram join_us;
  uint64_t join_results = 0;
  {
    Rng rng(4242);
    using Atom = kg::IndexedQueryEngine::Atom;
    for (uint32_t i = 0; i < c.join_queries; ++i) {
      const kg::Triple& a =
          triples[rng.Uniform(static_cast<uint32_t>(triples.size()))];
      const kg::Triple& b =
          triples[rng.Uniform(static_cast<uint32_t>(triples.size()))];
      std::vector<Atom> atoms = {Atom::HasTail(a.relation, a.tail)};
      if (i % 2 == 0) {
        atoms.push_back(Atom::MissingRelation(b.relation));
      } else {
        atoms.push_back(Atom::HasRelation(b.relation));
      }
      Stopwatch sw;
      join_results += engine.ConjunctiveQuery(atoms).size();
      join_us.Record(sw.ElapsedSeconds() * 1e6);
    }
  }

  TablePrinter t({"backend", "rss delta", "contains p50", "tails p50",
                  "heads p50", "relationsof p50"});
  for (const BackendResult* r : {&mem, &idx}) {
    t.AddRow({r->name, WithThousandsSeparators(r->rss_delta),
              StrFormat("%.3f us", r->contains_p50_us),
              StrFormat("%.3f us", r->tails_p50_us),
              StrFormat("%.3f us", r->heads_p50_us),
              StrFormat("%.3f us", r->relations_p50_us)});
  }
  std::printf("%s\n", t.ToString().c_str());

  std::printf("index build: %s triples in %.2fs (%.0f triples/s), "
              "%s bytes on disk\n",
              WithThousandsSeparators(build.num_triples).c_str(),
              build.seconds,
              static_cast<double>(build.num_triples) / build.seconds,
              WithThousandsSeparators(build.file_bytes).c_str());
  std::printf("joins: %u conjunctive queries, p50 %.1f us, p95 %.1f us, "
              "%s result rows\n",
              c.join_queries, join_us.Percentile(0.5),
              join_us.Percentile(0.95),
              WithThousandsSeparators(join_results).c_str());

  const double rss_ratio = mem.rss_delta == 0
                               ? 0.0
                               : static_cast<double>(idx.rss_delta) /
                                     static_cast<double>(mem.rss_delta);
  std::printf("mmap-index RSS is %.1f%% of the in-memory store "
              "(target <= ~60%%)\n",
              100.0 * rss_ratio);
  const bool pass = idx.rss_delta < mem.rss_delta && rss_ratio <= 0.6;
  std::printf("acceptance: %s\n", pass ? "PASS" : "FAIL");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f,
                 "  \"config\": {\"triples\": %llu, \"categories\": %u, "
                 "\"items_per_category\": %u, \"point_lookups\": %u, "
                 "\"join_queries\": %u},\n",
                 static_cast<unsigned long long>(triples.size()),
                 c.num_categories, c.items_per_category, c.point_lookups,
                 c.join_queries);
    std::fprintf(f,
                 "  \"build\": {\"triples_per_second\": %.0f, "
                 "\"file_bytes\": %llu, \"spo_runs\": %llu, "
                 "\"pos_runs\": %llu, \"osp_runs\": %llu},\n",
                 static_cast<double>(build.num_triples) / build.seconds,
                 static_cast<unsigned long long>(build.file_bytes),
                 static_cast<unsigned long long>(build.spo_runs),
                 static_cast<unsigned long long>(build.pos_runs),
                 static_cast<unsigned long long>(build.osp_runs));
    std::fprintf(f, "  \"backends\": [\n");
    const BackendResult* rs[] = {&mem, &idx};
    for (int i = 0; i < 2; ++i) {
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"rss_delta_bytes\": %llu, "
                   "\"contains_p50_us\": %.3f, \"tails_p50_us\": %.3f, "
                   "\"heads_p50_us\": %.3f, \"relationsof_p50_us\": %.3f}%s\n",
                   rs[i]->name.c_str(),
                   static_cast<unsigned long long>(rs[i]->rss_delta),
                   rs[i]->contains_p50_us, rs[i]->tails_p50_us,
                   rs[i]->heads_p50_us, rs[i]->relations_p50_us,
                   i + 1 < 2 ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"join\": {\"queries\": %u, \"p50_us\": %.3f, "
                 "\"p95_us\": %.3f, \"result_rows\": %llu},\n",
                 c.join_queries, join_us.Percentile(0.5),
                 join_us.Percentile(0.95),
                 static_cast<unsigned long long>(join_results));
    std::fprintf(f, "  \"rss_ratio\": %.4f,\n", rss_ratio);
    std::fprintf(f, "  \"pass\": %s\n}\n", pass ? "true" : "false");
    std::fclose(f);
    std::printf("json written to %s\n", json_path.c_str());
  }
  std::remove(index_path.c_str());
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace pkgm

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_kg_index [--smoke] [--json out.json]\n");
      return 2;
    }
  }
  return pkgm::Run(smoke, json_path);
}
