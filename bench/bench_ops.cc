// Google-benchmark microbenchmarks for the hot paths: PKGM scoring and
// service functions, negative sampling, gradient accumulation, the tensor
// kernels behind them, tokenization, and attention forward.

#include <benchmark/benchmark.h>

#include "core/gradients.h"
#include "core/negative_sampler.h"
#include "core/pkgm_model.h"
#include "kg/synthetic_pkg.h"
#include "nn/attention.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace pkgm {
namespace {

// ------------------------------------------------------------ tensor ops --

void BM_Dot(benchmark::State& state) {
  const size_t n = state.range(0);
  Rng rng(1);
  std::vector<float> x(n), y(n);
  UniformInit(n, -1, 1, &rng, x.data());
  UniformInit(n, -1, 1, &rng, y.data());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dot(n, x.data(), y.data()));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Dot)->Arg(64)->Arg(256)->Arg(1024);

void BM_GemvRaw(benchmark::State& state) {
  const size_t d = state.range(0);
  Rng rng(2);
  std::vector<float> m(d * d), x(d), y(d);
  UniformInit(m.size(), -1, 1, &rng, m.data());
  UniformInit(d, -1, 1, &rng, x.data());
  for (auto _ : state) {
    GemvRaw(d, d, m.data(), x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * d * d);
}
BENCHMARK(BM_GemvRaw)->Arg(32)->Arg(64)->Arg(128);

void BM_Gemm(benchmark::State& state) {
  const size_t n = state.range(0);
  Rng rng(3);
  Mat a(n, n), b(n, n), c(n, n);
  UniformInit(a.size(), -1, 1, &rng, a.data());
  UniformInit(b.size(), -1, 1, &rng, b.data());
  for (auto _ : state) {
    Gemm(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128);

// ------------------------------------------------------------ PKGM model --

core::PkgmModel& BenchModel(uint32_t dim) {
  static core::PkgmModel* model = nullptr;
  static uint32_t model_dim = 0;
  if (model == nullptr || model_dim != dim) {
    delete model;
    core::PkgmModelOptions opt;
    opt.num_entities = 10000;
    opt.num_relations = 64;
    opt.dim = dim;
    model = new core::PkgmModel(opt);
    model_dim = dim;
  }
  return *model;
}

void BM_TripleScore(benchmark::State& state) {
  core::PkgmModel& model = BenchModel(state.range(0));
  Rng rng(5);
  for (auto _ : state) {
    kg::Triple t{static_cast<kg::EntityId>(rng.Uniform(10000)),
                 static_cast<kg::RelationId>(rng.Uniform(64)),
                 static_cast<kg::EntityId>(rng.Uniform(10000))};
    benchmark::DoNotOptimize(model.TripleScore(t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TripleScore)->Arg(32)->Arg(64)->Arg(128);

void BM_RelationScore(benchmark::State& state) {
  core::PkgmModel& model = BenchModel(state.range(0));
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.RelationScore(
        static_cast<kg::EntityId>(rng.Uniform(10000)),
        static_cast<kg::RelationId>(rng.Uniform(64))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RelationScore)->Arg(32)->Arg(64)->Arg(128);

void BM_TripleService(benchmark::State& state) {
  core::PkgmModel& model = BenchModel(state.range(0));
  Rng rng(9);
  std::vector<float> out(model.dim());
  for (auto _ : state) {
    model.TripleService(static_cast<kg::EntityId>(rng.Uniform(10000)),
                        static_cast<kg::RelationId>(rng.Uniform(64)),
                        out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TripleService)->Arg(32)->Arg(64)->Arg(128);

void BM_RelationService(benchmark::State& state) {
  core::PkgmModel& model = BenchModel(state.range(0));
  Rng rng(11);
  std::vector<float> out(model.dim());
  for (auto _ : state) {
    model.RelationService(static_cast<kg::EntityId>(rng.Uniform(10000)),
                          static_cast<kg::RelationId>(rng.Uniform(64)),
                          out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RelationService)->Arg(32)->Arg(64)->Arg(128);

void BM_HingeGradients(benchmark::State& state) {
  core::PkgmModel& model = BenchModel(64);
  Rng rng(13);
  core::SparseGrad grad;
  for (auto _ : state) {
    kg::Triple pos{static_cast<kg::EntityId>(rng.Uniform(10000)),
                   static_cast<kg::RelationId>(rng.Uniform(64)),
                   static_cast<kg::EntityId>(rng.Uniform(10000))};
    kg::Triple neg = pos;
    neg.tail = static_cast<kg::EntityId>(rng.Uniform(10000));
    grad.Clear();
    benchmark::DoNotOptimize(
        core::AccumulateHingeGradients(model, pos, neg, 10.0f, &grad));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HingeGradients);

// --------------------------------------------------------------- sampling --

void BM_NegativeSampling(benchmark::State& state) {
  kg::TripleStore store;
  Rng seed_rng(15);
  for (int i = 0; i < 20000; ++i) {
    store.Add(static_cast<kg::EntityId>(seed_rng.Uniform(5000)),
              static_cast<kg::RelationId>(seed_rng.Uniform(32)),
              static_cast<kg::EntityId>(seed_rng.Uniform(5000)));
  }
  core::NegativeSampler::Options opt;
  opt.num_entities = 5000;
  opt.num_relations = 32;
  core::NegativeSampler sampler(opt, &store);
  Rng rng(17);
  const auto& triples = store.triples();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sampler.Sample(triples[rng.Uniform(triples.size())], &rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NegativeSampling);

// -------------------------------------------------------------- tokenizer --

void BM_TokenizerEncode(benchmark::State& state) {
  text::Tokenizer tok;
  Rng rng(19);
  for (int i = 0; i < 200; ++i) {
    tok.CountCorpusLine("brand_v1 color_v2 size_v3 promo_1 catword_2_3");
  }
  tok.BuildVocab(1);
  const std::string title =
      "brand_v1 color_v2 size_v3 promo_1 catword_2_3 unknown_word";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tok.Encode(title));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TokenizerEncode);

// -------------------------------------------------------------- attention --

void BM_AttentionForward(benchmark::State& state) {
  const size_t t = state.range(0);
  Rng rng(21);
  nn::MultiHeadSelfAttention attn(64, 4, &rng, "bm");
  Mat x(t, 64), y;
  UniformInit(x.size(), -1, 1, &rng, x.data());
  for (auto _ : state) {
    attn.Forward(x, t, &y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * t);
}
BENCHMARK(BM_AttentionForward)->Arg(16)->Arg(32)->Arg(64);

}  // namespace
}  // namespace pkgm

BENCHMARK_MAIN();
