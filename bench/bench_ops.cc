// Google-benchmark microbenchmarks for the hot paths: PKGM scoring and
// service functions, negative sampling, gradient accumulation, the tensor
// kernels behind them, tokenization, and attention forward.
//
// `bench_ops --json <path>` skips the google-benchmark suite and instead
// writes a machine-readable report comparing the scalar kernel table with
// the runtime-dispatched one (ns/op, GB/s, speedup per op at d=64) plus
// end-to-end EvaluateTails triples/sec on the reference per-candidate path
// vs the blocked batch path. CI uploads this file as an artifact.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/gradients.h"
#include "core/link_prediction.h"
#include "core/negative_sampler.h"
#include "core/pkgm_model.h"
#include "kg/synthetic_pkg.h"
#include "kg/triple_store.h"
#include "nn/attention.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/simd/kernel_bench.h"
#include "tensor/simd/kernel_dispatch.h"
#include "text/tokenizer.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace pkgm {
namespace {

// ------------------------------------------------------------ tensor ops --

void BM_Dot(benchmark::State& state) {
  const size_t n = state.range(0);
  Rng rng(1);
  std::vector<float> x(n), y(n);
  UniformInit(n, -1, 1, &rng, x.data());
  UniformInit(n, -1, 1, &rng, y.data());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dot(n, x.data(), y.data()));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Dot)->Arg(64)->Arg(256)->Arg(1024);

void BM_GemvRaw(benchmark::State& state) {
  const size_t d = state.range(0);
  Rng rng(2);
  std::vector<float> m(d * d), x(d), y(d);
  UniformInit(m.size(), -1, 1, &rng, m.data());
  UniformInit(d, -1, 1, &rng, x.data());
  for (auto _ : state) {
    GemvRaw(d, d, m.data(), x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * d * d);
}
BENCHMARK(BM_GemvRaw)->Arg(32)->Arg(64)->Arg(128);

void BM_Gemm(benchmark::State& state) {
  const size_t n = state.range(0);
  Rng rng(3);
  Mat a(n, n), b(n, n), c(n, n);
  UniformInit(a.size(), -1, 1, &rng, a.data());
  UniformInit(b.size(), -1, 1, &rng, b.data());
  for (auto _ : state) {
    Gemm(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128);

// ------------------------------------------------------------ PKGM model --

core::PkgmModel& BenchModel(uint32_t dim) {
  static core::PkgmModel* model = nullptr;
  static uint32_t model_dim = 0;
  if (model == nullptr || model_dim != dim) {
    delete model;
    core::PkgmModelOptions opt;
    opt.num_entities = 10000;
    opt.num_relations = 64;
    opt.dim = dim;
    model = new core::PkgmModel(opt);
    model_dim = dim;
  }
  return *model;
}

void BM_TripleScore(benchmark::State& state) {
  core::PkgmModel& model = BenchModel(state.range(0));
  Rng rng(5);
  for (auto _ : state) {
    kg::Triple t{static_cast<kg::EntityId>(rng.Uniform(10000)),
                 static_cast<kg::RelationId>(rng.Uniform(64)),
                 static_cast<kg::EntityId>(rng.Uniform(10000))};
    benchmark::DoNotOptimize(model.TripleScore(t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TripleScore)->Arg(32)->Arg(64)->Arg(128);

void BM_RelationScore(benchmark::State& state) {
  core::PkgmModel& model = BenchModel(state.range(0));
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.RelationScore(
        static_cast<kg::EntityId>(rng.Uniform(10000)),
        static_cast<kg::RelationId>(rng.Uniform(64))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RelationScore)->Arg(32)->Arg(64)->Arg(128);

void BM_TripleService(benchmark::State& state) {
  core::PkgmModel& model = BenchModel(state.range(0));
  Rng rng(9);
  std::vector<float> out(model.dim());
  for (auto _ : state) {
    model.TripleService(static_cast<kg::EntityId>(rng.Uniform(10000)),
                        static_cast<kg::RelationId>(rng.Uniform(64)),
                        out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TripleService)->Arg(32)->Arg(64)->Arg(128);

void BM_RelationService(benchmark::State& state) {
  core::PkgmModel& model = BenchModel(state.range(0));
  Rng rng(11);
  std::vector<float> out(model.dim());
  for (auto _ : state) {
    model.RelationService(static_cast<kg::EntityId>(rng.Uniform(10000)),
                          static_cast<kg::RelationId>(rng.Uniform(64)),
                          out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RelationService)->Arg(32)->Arg(64)->Arg(128);

void BM_HingeGradients(benchmark::State& state) {
  core::PkgmModel& model = BenchModel(64);
  Rng rng(13);
  core::SparseGrad grad;
  for (auto _ : state) {
    kg::Triple pos{static_cast<kg::EntityId>(rng.Uniform(10000)),
                   static_cast<kg::RelationId>(rng.Uniform(64)),
                   static_cast<kg::EntityId>(rng.Uniform(10000))};
    kg::Triple neg = pos;
    neg.tail = static_cast<kg::EntityId>(rng.Uniform(10000));
    grad.Clear();
    benchmark::DoNotOptimize(
        core::AccumulateHingeGradients(model, pos, neg, 10.0f, &grad));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HingeGradients);

// --------------------------------------------------------------- sampling --

void BM_NegativeSampling(benchmark::State& state) {
  kg::TripleStore store;
  Rng seed_rng(15);
  for (int i = 0; i < 20000; ++i) {
    store.Add(static_cast<kg::EntityId>(seed_rng.Uniform(5000)),
              static_cast<kg::RelationId>(seed_rng.Uniform(32)),
              static_cast<kg::EntityId>(seed_rng.Uniform(5000)));
  }
  core::NegativeSampler::Options opt;
  opt.num_entities = 5000;
  opt.num_relations = 32;
  core::NegativeSampler sampler(opt, &store);
  Rng rng(17);
  const auto& triples = store.triples();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sampler.Sample(triples[rng.Uniform(triples.size())], &rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NegativeSampling);

// -------------------------------------------------------------- tokenizer --

void BM_TokenizerEncode(benchmark::State& state) {
  text::Tokenizer tok;
  Rng rng(19);
  for (int i = 0; i < 200; ++i) {
    tok.CountCorpusLine("brand_v1 color_v2 size_v3 promo_1 catword_2_3");
  }
  tok.BuildVocab(1);
  const std::string title =
      "brand_v1 color_v2 size_v3 promo_1 catword_2_3 unknown_word";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tok.Encode(title));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TokenizerEncode);

// -------------------------------------------------------------- attention --

void BM_AttentionForward(benchmark::State& state) {
  const size_t t = state.range(0);
  Rng rng(21);
  nn::MultiHeadSelfAttention attn(64, 4, &rng, "bm");
  Mat x(t, 64), y;
  UniformInit(x.size(), -1, 1, &rng, x.data());
  for (auto _ : state) {
    attn.Forward(x, t, &y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * t);
}
BENCHMARK(BM_AttentionForward)->Arg(16)->Arg(32)->Arg(64);

// ------------------------------------------------------------ json report --

// EvaluateTails throughput (triples/sec) on a TransE model at d=64, with a
// single evaluation thread so the number isolates the scoring path.
double EvalTailsTriplesPerSec(bool batched) {
  core::PkgmModelOptions opt;
  opt.num_entities = 2000;
  opt.num_relations = 16;
  opt.dim = 64;
  opt.use_relation_module = false;
  opt.seed = 23;
  core::PkgmModel model(opt);

  kg::TripleStore known;
  Rng rng(29);
  std::vector<kg::Triple> test;
  for (int i = 0; i < 48; ++i) {
    kg::Triple t{static_cast<kg::EntityId>(rng.Uniform(opt.num_entities)),
                 static_cast<kg::RelationId>(rng.Uniform(opt.num_relations)),
                 static_cast<kg::EntityId>(rng.Uniform(opt.num_entities))};
    known.Add(t.head, t.relation, t.tail);
    test.push_back(t);
  }

  core::LinkPredictionEvaluator::Options eval_opt;
  eval_opt.filtered = true;
  eval_opt.num_threads = 1;
  eval_opt.use_batched_scoring = batched;
  core::LinkPredictionEvaluator eval(&model, &known, eval_opt);
  eval.EvaluateTails(test);  // warm-up
  Stopwatch sw;
  eval.EvaluateTails(test);
  return static_cast<double>(test.size()) / sw.ElapsedSeconds();
}

// Measures the seed-era baseline — per-candidate scoring on scalar
// kernels — by re-running this binary with PKGM_KERNEL=scalar. The kernel
// table is selected once per process and never mutated, so the scalar
// configuration needs its own process. Returns 0.0 if the child fails.
double SeedBaselineTps(const char* argv0, const char* json_path) {
  const std::string tmp = std::string(json_path) + ".tps";
  const std::string cmd = std::string("PKGM_KERNEL=scalar '") + argv0 +
                          "' --eval-tails-tps reference > '" + tmp + "'";
  double tps = 0.0;
  if (std::system(cmd.c_str()) == 0) {
    if (std::FILE* f = std::fopen(tmp.c_str(), "r")) {
      if (std::fscanf(f, "%lf", &tps) != 1) tps = 0.0;
      std::fclose(f);
    }
  }
  std::remove(tmp.c_str());
  return tps;
}

int WriteJsonReport(const char* argv0, const char* path) {
  constexpr size_t kDim = 64;
  const simd::KernelTable& scalar = simd::ScalarKernels();
  const simd::KernelTable& active = simd::Active();
  const auto scalar_results = simd::RunKernelBench(scalar, kDim);
  const auto active_results = simd::RunKernelBench(active, kDim);

  const double seed_tps = SeedBaselineTps(argv0, path);
  const double ref_tps = EvalTailsTriplesPerSec(/*batched=*/false);
  const double batch_tps = EvalTailsTriplesPerSec(/*batched=*/true);

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_ops: cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"kernel_isa\": \"%s\",\n  \"dim\": %zu,\n",
               simd::ActiveIsaName(), kDim);
  std::fprintf(f, "  \"ops\": {\n");
  for (size_t i = 0; i < scalar_results.size(); ++i) {
    const auto& s = scalar_results[i];
    const auto& a = active_results[i];
    std::fprintf(f,
                 "    \"%s\": {\"scalar_ns_per_op\": %.2f, "
                 "\"dispatched_ns_per_op\": %.2f, \"scalar_gbps\": %.3f, "
                 "\"dispatched_gbps\": %.3f, \"speedup\": %.2f}%s\n",
                 s.op, s.ns_per_op, a.ns_per_op, s.gbps, a.gbps,
                 s.ns_per_op / a.ns_per_op,
                 i + 1 < scalar_results.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f,
               "  \"evaluate_tails\": {\"seed_baseline_triples_per_sec\": "
               "%.1f, \"reference_triples_per_sec\": %.1f, "
               "\"batched_triples_per_sec\": %.1f, \"speedup_vs_reference\": "
               "%.2f, \"speedup_vs_seed_baseline\": %.2f}\n}\n",
               seed_tps, ref_tps, batch_tps, batch_tps / ref_tps,
               seed_tps > 0.0 ? batch_tps / seed_tps : 0.0);
  std::fclose(f);
  std::printf("bench_ops: wrote %s (kernels=%s)\n", path,
              simd::ActiveIsaName());
  return 0;
}

}  // namespace
}  // namespace pkgm

int main(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      return pkgm::WriteJsonReport(argv[0], argv[i + 1]);
    }
    // Internal: print EvaluateTails triples/sec for one scoring path, used
    // by --json to measure the scalar baseline in a child process.
    if (std::strcmp(argv[i], "--eval-tails-tps") == 0) {
      const bool batched = std::strcmp(argv[i + 1], "batched") == 0;
      std::printf("%.3f\n", pkgm::EvalTailsTriplesPerSec(batched));
      return 0;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
