// Serving-path bench for §II-D's deployment claims: latency of answering
// triple / relation queries from the symbolic store vs producing the
// equivalent PKGM service vectors, plus batch service-vector throughput
// (sequence and condensed forms).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "kg/query_engine.h"
#include "util/histogram.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace pkgm {
namespace {

void Run() {
  bench::PrintHeader("Service latency: symbolic queries vs vector services");

  tasks::PipelineOptions opt = bench::BenchPipelineOptions();
  opt.pretrain_epochs = 5;  // serving latency does not depend on quality
  std::printf("building pipeline (short pre-train; latency only) ...\n");
  tasks::PretrainedPkgm p = tasks::BuildAndPretrain(opt);
  const kg::SyntheticPkg& pkg = p.pkg;

  const uint32_t rounds = 20000;
  Rng rng(3);

  // Draws an item that has at least one key relation: the provider
  // explicitly allows empty key lists, and indexing rels[Uniform(0)] would
  // be UB. Also keeps the item and its relation list consistent (both loops
  // previously sampled them independently).
  auto sample_item = [&](Rng* r) {
    for (;;) {
      const uint32_t item =
          static_cast<uint32_t>(r->Uniform(p.services->num_items()));
      if (p.services->NumKeyRelations(item) > 0) return item;
    }
  };

  // --- symbolic path -------------------------------------------------------
  kg::QueryEngine engine(&pkg.observed);
  Histogram symbolic_triple_us, symbolic_relation_us;
  {
    Stopwatch sw;
    uint64_t sink = 0;
    for (uint32_t i = 0; i < rounds; ++i) {
      const uint32_t idx = sample_item(&rng);
      const auto& item = pkg.items[idx];
      const auto& rels = p.services->key_relations(idx);
      kg::RelationId r = rels[rng.Uniform(rels.size())];
      Stopwatch q;
      sink += engine.TripleQuery(item.entity, r).size();
      symbolic_triple_us.Record(q.ElapsedSeconds() * 1e6);
      q.Reset();
      sink += engine.RelationQuery(item.entity).size();
      symbolic_relation_us.Record(q.ElapsedSeconds() * 1e6);
    }
    std::printf("symbolic: %u triple + %u relation queries in %.2fs (sink %llu)\n",
                rounds, rounds, sw.ElapsedSeconds(),
                static_cast<unsigned long long>(sink));
  }

  // --- vector path ---------------------------------------------------------
  Histogram vector_triple_us, vector_relation_us;
  {
    std::vector<float> out(p.model->dim());
    for (uint32_t i = 0; i < rounds; ++i) {
      const uint32_t idx = sample_item(&rng);
      const auto& item = pkg.items[idx];
      const auto& rels = p.services->key_relations(idx);
      kg::RelationId r = rels[rng.Uniform(rels.size())];
      Stopwatch q;
      p.model->TripleService(item.entity, r, out.data());
      vector_triple_us.Record(q.ElapsedSeconds() * 1e6);
      q.Reset();
      p.model->RelationService(item.entity, r, out.data());
      vector_relation_us.Record(q.ElapsedSeconds() * 1e6);
    }
  }

  TablePrinter t({"Path", "query", "p50 us", "p95 us", "p99 us", "mean us"});
  auto add = [&](const char* path, const char* q, const Histogram& h) {
    t.AddRow({path, q, StrFormat("%.3f", h.Percentile(0.5)),
              StrFormat("%.3f", h.Percentile(0.95)),
              StrFormat("%.3f", h.Percentile(0.99)),
              StrFormat("%.3f", h.Mean())});
  };
  add("symbolic store", "(h, r, ?t)", symbolic_triple_us);
  add("symbolic store", "(h, ?r)", symbolic_relation_us);
  add("PKGM vectors", "S_T(h,r) = h + r", vector_triple_us);
  add("PKGM vectors", "S_R(h,r) = M_r h - r", vector_relation_us);
  std::printf("\nper-query latency (d=%u):\n%s", p.model->dim(),
              t.ToString().c_str());

  // --- batch service-vector throughput -------------------------------------
  {
    Stopwatch sw;
    uint64_t vectors = 0;
    for (uint32_t i = 0; i < p.services->num_items(); ++i) {
      vectors += p.services->Sequence(i, core::ServiceMode::kAll).size();
    }
    const double seq_s = sw.ElapsedSeconds();
    sw.Reset();
    uint64_t condensed = 0;
    for (uint32_t i = 0; i < p.services->num_items(); ++i) {
      condensed += p.services->Condensed(i, core::ServiceMode::kAll).size();
    }
    const double cond_s = sw.ElapsedSeconds();
    std::printf(
        "\nbatch serving all %u items (k=%u key relations):\n"
        "  sequence form : %s vectors in %.3fs (%.0f vectors/s)\n"
        "  condensed form: %u items in %.3fs (%.0f items/s)\n",
        p.services->num_items(), p.services->NumKeyRelations(0),
        WithThousandsSeparators(vectors).c_str(), seq_s,
        static_cast<double>(vectors) / seq_s, p.services->num_items(), cond_s,
        p.services->num_items() / cond_s);
    (void)condensed;
  }

  std::printf(
      "\nthe vector path additionally answers queries the symbolic path\n"
      "cannot: see bench_link_prediction for completion quality.\n");
}

}  // namespace
}  // namespace pkgm

int main() {
  pkgm::Run();
  return 0;
}
