// Ablation bench for the completion claims of §II-D: how well does the
// pre-trained PKGM complete (a) missing tail entities and (b) missing
// relations, compared against (i) the symbolic query engine (which by
// construction cannot answer queries about unfilled attributes) and
// (ii) a TransE-only ablation without the relation query module.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/link_prediction.h"
#include "kg/query_engine.h"
#include "kg/rule_miner.h"
#include "tensor/simd/kernel_dispatch.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace pkgm {
namespace {

struct RelationCompletionResult {
  double owned_mean = 0.0;    // mean ||S_R|| for should-have relations
  double foreign_mean = 0.0;  // mean ||S_R|| for foreign relations
  double auc = 0.0;           // ranking AUC of foreign over owned
};

/// Measures how well ||S_R(h,r)|| separates relations an item should have
/// (including held-out ones) from relations it should not.
RelationCompletionResult EvaluateRelationCompletion(
    const tasks::PretrainedPkgm& p) {
  const kg::SyntheticPkg& pkg = p.pkg;
  std::vector<double> owned, foreign;
  for (uint32_t i = 0; i < pkg.items.size(); i += 3) {
    const auto& item = pkg.items[i];
    for (kg::RelationId r : pkg.property_relations) {
      const double score = p.model->RelationScore(item.entity, r);
      if (pkg.ItemShouldHaveRelation(i, r)) {
        owned.push_back(score);
      } else {
        foreign.push_back(score);
      }
    }
  }
  RelationCompletionResult result;
  for (double s : owned) result.owned_mean += s;
  result.owned_mean /= owned.size();
  for (double s : foreign) result.foreign_mean += s;
  result.foreign_mean /= foreign.size();

  // AUC via pairwise comparison on a subsample.
  uint64_t wins = 0, total = 0;
  for (size_t i = 0; i < owned.size(); i += 7) {
    for (size_t j = 0; j < foreign.size(); j += 23) {
      wins += owned[i] < foreign[j];
      ++total;
    }
  }
  result.auc = total > 0 ? static_cast<double>(wins) / total : 0.0;
  return result;
}

void Run() {
  bench::PrintHeader(
      "Completion ablation (paper SSII-D): PKGM vs TransE-only vs symbolic");
  bench::PrintScaleNote();

  // Full PKGM and the TransE-only ablation on the same KG.
  tasks::PipelineOptions opt = bench::BenchPipelineOptions();
  std::printf("\npre-training full PKGM ...\n");
  tasks::PretrainedPkgm full = tasks::BuildAndPretrain(opt);

  tasks::PipelineOptions ablated_opt = opt;
  ablated_opt.use_relation_module = false;
  std::printf("pre-training TransE-only ablation ...\n");
  tasks::PretrainedPkgm ablated = tasks::BuildAndPretrain(ablated_opt);

  const kg::SyntheticPkg& pkg = full.pkg;
  std::printf(
      "\nKG: %s observed triples, %s held-out (true but unfilled) triples\n",
      WithThousandsSeparators(pkg.observed.size()).c_str(),
      WithThousandsSeparators(pkg.held_out.size()).c_str());

  // ---- (a) triple completion: rank held-out tails -------------------------
  std::vector<kg::Triple> test(
      pkg.held_out.begin(),
      pkg.held_out.begin() + std::min<size_t>(pkg.held_out.size(), 2000));

  core::LinkPredictionEvaluator::Options eval_opt;
  eval_opt.filtered = true;
  core::LinkPredictionEvaluator full_eval(full.model.get(), &pkg.observed,
                                          eval_opt);
  core::LinkPredictionEvaluator ablated_eval(ablated.model.get(),
                                             &pkg.observed, eval_opt);

  Stopwatch sw;
  auto full_result = full_eval.EvaluateTails(test, &pkg.property_values);
  const double full_seconds = sw.ElapsedSeconds();
  sw.Reset();
  auto ablated_result = ablated_eval.EvaluateTails(test, &pkg.property_values);
  const double ablated_seconds = sw.ElapsedSeconds();

  // The symbolic engine answers (h, r, ?t) from stored triples only; every
  // held-out triple is unfilled, so its recall is structurally zero — the
  // incompleteness disadvantage PKGM's vector services overcome.
  kg::QueryEngine symbolic(&pkg.observed);
  uint64_t symbolic_answered = 0;
  for (const kg::Triple& t : test) {
    const auto& tails = symbolic.TripleQuery(t.head, t.relation);
    for (kg::EntityId e : tails) {
      if (e == t.tail) {
        ++symbolic_answered;
        break;
      }
    }
  }

  TablePrinter t({"Model", "MRR", "Hits@1", "Hits@3", "Hits@10", "MeanRank",
                  "eval s"});
  t.AddRow({"PKGM (full)", StrFormat("%.4f", full_result.mrr),
            StrFormat("%.4f", full_result.hits[1]),
            StrFormat("%.4f", full_result.hits[3]),
            StrFormat("%.4f", full_result.hits[10]),
            StrFormat("%.2f", full_result.mean_rank),
            StrFormat("%.2f", full_seconds)});
  t.AddRow({"TransE-only", StrFormat("%.4f", ablated_result.mrr),
            StrFormat("%.4f", ablated_result.hits[1]),
            StrFormat("%.4f", ablated_result.hits[3]),
            StrFormat("%.4f", ablated_result.hits[10]),
            StrFormat("%.2f", ablated_result.mean_rank),
            StrFormat("%.2f", ablated_seconds)});
  t.AddRow({"symbolic query",
            StrFormat("%.4f", static_cast<double>(symbolic_answered) /
                                  test.size()),
            "-", "-", "-", "-", "-"});

  // Rule-based baseline (the production KG's "3+ million rules"): mine
  // attribute-association rules from the observed KG, then answer the same
  // held-out queries by forward chaining.
  {
    std::vector<kg::EntityId> item_entities;
    for (const auto& item : pkg.items) item_entities.push_back(item.entity);
    kg::RuleMinerOptions mopt;
    mopt.min_support = 10;
    mopt.min_confidence = 0.3;
    Stopwatch mine_sw;
    kg::RuleInferencer rules(
        kg::MineRules(pkg.observed, item_entities, mopt));
    const double mine_s = mine_sw.ElapsedSeconds();
    mine_sw.Reset();
    auto [rule_mrr, rule_hits1] =
        rules.EvaluateTails(pkg.observed, test, opt.pkg.values_per_property);
    t.AddRow({StrFormat("rules (%zu mined)", rules.num_rules()),
              StrFormat("%.4f", rule_mrr), StrFormat("%.4f", rule_hits1), "-",
              "-", "-", StrFormat("%.2f", mine_sw.ElapsedSeconds())});
    std::printf("rule mining took %.2fs\n", mine_s);
  }
  std::printf(
      "\n(a) tail completion of %zu held-out attribute triples, candidates\n"
      "    restricted to each property's value universe, filtered protocol:\n%s",
      test.size(), t.ToString().c_str());

  // ---- (a'') full-sweep ranking throughput --------------------------------
  // Ranks against every entity (no candidate restriction) — the evaluator
  // hot path — comparing the blocked batch scorer with the per-candidate
  // reference path. Metrics must be identical; only triples/sec may differ.
  {
    std::vector<kg::Triple> sweep(
        test.begin(), test.begin() + std::min<size_t>(test.size(), 200));
    core::LinkPredictionEvaluator::Options sweep_opt = eval_opt;
    sweep_opt.num_threads = 1;
    const auto timed = [&](bool batched) {
      sweep_opt.use_batched_scoring = batched;
      core::LinkPredictionEvaluator eval(full.model.get(), &pkg.observed,
                                         sweep_opt);
      eval.EvaluateTails(sweep);  // warm-up
      Stopwatch sweep_sw;
      auto r = eval.EvaluateTails(sweep);
      return std::make_pair(sweep.size() / sweep_sw.ElapsedSeconds(), r);
    };
    const auto [ref_tps, ref_result] = timed(false);
    const auto [batch_tps, batch_result] = timed(true);
    std::printf(
        "\n(a'') full-sweep ranking of %zu triples over %s entities "
        "(kernels=%s):\n"
        "    per-candidate reference  %10.1f triples/s   (MRR %.4f)\n"
        "    blocked batch scoring    %10.1f triples/s   (MRR %.4f)\n"
        "    speedup %.2fx, metrics %s\n",
        sweep.size(),
        WithThousandsSeparators(full.model->num_entities()).c_str(),
        simd::ActiveIsaName(), ref_tps, ref_result.mrr, batch_tps,
        batch_result.mrr, batch_tps / ref_tps,
        ref_result.mrr == batch_result.mrr &&
                ref_result.mean_rank == batch_result.mean_rank
            ? "identical"
            : "DIVERGED (bug)");
  }

  // ---- (a') triple-scorer family comparison --------------------------------
  // The paper picks TransE "for its simplicity and effectiveness" (§II-A)
  // and cites DistMult / ComplEx as alternatives (§IV-A); the triple query
  // module is pluggable, so compare them on the same completion task.
  {
    TablePrinter ts({"Triple scorer", "MRR", "Hits@1", "Hits@10",
                     "MeanRank"});
    const struct {
      core::TripleScorerKind kind;
      const char* name;
    } scorers[] = {
        {core::TripleScorerKind::kTransE, "TransE (paper)"},
        {core::TripleScorerKind::kDistMult, "DistMult"},
        {core::TripleScorerKind::kComplEx, "ComplEx"},
        {core::TripleScorerKind::kTransH, "TransH"},
    };
    for (const auto& s : scorers) {
      core::PkgmModelOptions model_opt;
      model_opt.num_entities = pkg.entities.size();
      model_opt.num_relations = pkg.relations.size();
      model_opt.dim = opt.dim;
      model_opt.scorer = s.kind;
      model_opt.seed = opt.seed;
      core::PkgmModel model(model_opt);
      core::Trainer trainer(&model, &pkg.observed, opt.trainer);
      trainer.Train(opt.pretrain_epochs);
      core::LinkPredictionEvaluator eval(&model, &pkg.observed, eval_opt);
      auto r = eval.EvaluateTails(test, &pkg.property_values);
      ts.AddRow({s.name, StrFormat("%.4f", r.mrr),
                 StrFormat("%.4f", r.hits[1]), StrFormat("%.4f", r.hits[10]),
                 StrFormat("%.2f", r.mean_rank)});
    }
    std::printf("\n(a') triple-scorer families on the same completion task:\n%s",
                ts.ToString().c_str());
  }

  // ---- (b) relation completion: ||S_R|| separates owned vs foreign --------
  RelationCompletionResult full_rel = EvaluateRelationCompletion(full);
  TablePrinter t2({"Model", "mean ||S_R|| owned", "mean ||S_R|| foreign",
                   "AUC(owned < foreign)"});
  t2.AddRow({"PKGM (full)", StrFormat("%.3f", full_rel.owned_mean),
             StrFormat("%.3f", full_rel.foreign_mean),
             StrFormat("%.4f", full_rel.auc)});
  t2.AddRow({"TransE-only", "0 (module disabled)", "0 (module disabled)",
             "0.5 (no signal)"});
  std::printf(
      "\n(b) relation completion: does ||S_R(h,r)|| ~ 0 iff h should have r\n"
      "    (owned includes held-out, never-observed relations)?\n%s",
      t2.ToString().c_str());
}

}  // namespace
}  // namespace pkgm

int main() {
  pkgm::Run();
  return 0;
}
