// Tail-latency regression gate for the serving subsystem: measures p999
// under honest open-loop load and asserts the three properties this stack
// is engineered for —
//
//   1. hot-key coalescing shields the parameter backend: a thundering herd
//      on one item costs one backend fetch, not one per concurrent miss;
//   2. per-tenant quotas + deadlines keep p999 inside the SLO even when
//      the offered load exceeds what the server admits;
//   3. open-loop measurement is honest: at the same offered rate, latency
//      measured from the *intended* send time (open loop) is never lower
//      than the closed-loop number that coordinated omission produces;
//   4. the io_uring network backend earns its keep: at the same offered
//      rate over loopback it moves the same frames in materially fewer
//      syscalls than epoll (batched SQE submission), with p999 no worse.
//      The leg skips (reported, not failed) on kernels without io_uring.
//
//   bench_tail_latency [--smoke] [--json PATH]
//
//   --smoke shrinks request volumes for CI; the assertions run in both
//   modes (this bench is a gate, not just a report). --json writes the
//   measured numbers as a machine-readable artifact, with the server's own
//   StatsJson() blob embedded so stage-level p999s land in CI artifacts.
//
// Full mode additionally sweeps offered load through saturation
// ({0.5, 0.8, 1.0, 1.2} x measured capacity) to locate the knee.

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/embedding_source.h"
#include "core/service.h"
#include "net/io_backend.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "serve/knowledge_server.h"
#include "serve/load_gen.h"
#include "tasks/pipeline.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace pkgm {
namespace {

/// EmbeddingSource decorator that sleeps on every entity-row access,
/// modeling an expensive parameter backend (page fault into a cold mmap
/// region, or a remote parameter-server round trip). Condensed() touches
/// the item's entity row exactly once, so the delay is per backend fetch —
/// the cost hot-key coalescing exists to deduplicate.
class ThrottledSource : public core::EmbeddingSource {
 public:
  ThrottledSource(const core::EmbeddingSource* inner,
                  std::chrono::microseconds delay)
      : inner_(inner), delay_(delay) {}

  uint32_t num_entities() const override { return inner_->num_entities(); }
  uint32_t num_relations() const override { return inner_->num_relations(); }
  uint32_t dim() const override { return inner_->dim(); }
  core::TripleScorerKind scorer() const override { return inner_->scorer(); }
  bool has_relation_module() const override {
    return inner_->has_relation_module();
  }

  const float* EntityRow(uint32_t e, float* scratch) const override {
    std::this_thread::sleep_for(delay_);
    return inner_->EntityRow(e, scratch);
  }
  const float* RelationRow(uint32_t r, float* scratch) const override {
    return inner_->RelationRow(r, scratch);
  }
  const float* TransferRow(uint32_t r, float* scratch) const override {
    return inner_->TransferRow(r, scratch);
  }
  const float* HyperplaneRow(uint32_t r, float* scratch) const override {
    return inner_->HyperplaneRow(r, scratch);
  }

 private:
  const core::EmbeddingSource* inner_;
  std::chrono::microseconds delay_;
};

/// Rebuilds a provider with the same item -> (entity, key relations)
/// mapping as `ref` but reading embeddings through `source`.
core::ServiceVectorProvider CloneProviderOver(
    const core::EmbeddingSource* source,
    const core::ServiceVectorProvider& ref) {
  std::vector<kg::EntityId> items;
  std::vector<std::vector<kg::RelationId>> keys;
  items.reserve(ref.num_items());
  keys.reserve(ref.num_items());
  for (uint32_t i = 0; i < ref.num_items(); ++i) {
    items.push_back(ref.item_entity(i));
    keys.push_back(ref.key_relations(i));
  }
  return core::ServiceVectorProvider(source, std::move(items),
                                     std::move(keys));
}

serve::AsyncSubmitFn InProcess(serve::KnowledgeServer* server) {
  return [server](std::vector<serve::ServiceRequest> batch,
                  std::function<void(size_t, serve::ServiceResponse)> done) {
    server->SubmitBatchAsync(std::move(batch), std::move(done));
  };
}

// ---------------------------------------------------------------------------
// Phase 1: capacity. Closed-loop, unpaced, batched — the server's maximum
// sustainable throughput, used to scale every later phase's offered rate so
// the gate self-calibrates to the host (and to sanitizer overhead in CI).

double MeasureCapacity(const core::ServiceVectorProvider* provider,
                       uint32_t requests) {
  serve::KnowledgeServerOptions sopt;
  sopt.num_workers = 4;
  sopt.enable_cache = true;
  serve::KnowledgeServer server(provider, sopt);
  server.Start();

  constexpr uint32_t kThreads = 4;
  const uint32_t per_thread = requests / kThreads;
  Stopwatch sw;
  std::vector<std::thread> drivers;
  for (uint32_t t = 0; t < kThreads; ++t) {
    drivers.emplace_back([&server, provider, per_thread, t] {
      ZipfSampler zipf(provider->num_items(), 0.99);
      Rng rng(100 + t);
      uint32_t sent = 0;
      while (sent < per_thread) {
        const uint32_t n = std::min(32u, per_thread - sent);
        std::vector<serve::ServiceRequest> batch(n);
        for (auto& request : batch) {
          request.item = static_cast<uint32_t>(zipf.Sample(&rng));
        }
        for (auto& future : server.SubmitBatch(std::move(batch))) {
          future.get();
        }
        sent += n;
      }
    });
  }
  for (auto& d : drivers) d.join();
  const double capacity = (per_thread * kThreads) / sw.ElapsedSeconds();
  server.Stop();
  return capacity;
}

// ---------------------------------------------------------------------------
// Phase 2: thundering herd vs coalescing. Every arrival in an epoch wants
// the item that just went on sale, and each epoch starts with the cache
// invalidated (a model refresh). Without coalescing each concurrently-
// executing miss pays its own backend fetch; with it one leader fetches
// while the rest join the flight.

struct HerdResult {
  uint64_t backend_fetches = 0;
  uint64_t leaders = 0;
  uint64_t joined = 0;
  double elapsed_s = 0.0;
};

HerdResult RunHerd(const core::ServiceVectorProvider* slow_provider,
                   bool coalesce, uint32_t epochs, uint32_t herd_size) {
  serve::KnowledgeServerOptions sopt;
  sopt.num_workers = 4;
  sopt.enable_cache = true;
  sopt.enable_coalescing = coalesce;
  serve::KnowledgeServer server(slow_provider, sopt);
  server.Start();

  Stopwatch sw;
  std::vector<std::future<serve::ServiceResponse>> futures;
  futures.reserve(herd_size);
  for (uint32_t epoch = 0; epoch < epochs; ++epoch) {
    server.InvalidateCache();  // the model refresh that cold-starts the key
    const uint32_t item = epoch % slow_provider->num_items();
    futures.clear();
    for (uint32_t i = 0; i < herd_size; ++i) {
      serve::ServiceRequest request;
      request.item = item;
      futures.push_back(server.Submit(request));
    }
    for (auto& future : futures) {
      PKGM_CHECK(future.get().code == serve::ResponseCode::kOk);
    }
  }

  HerdResult result;
  result.backend_fetches = server.stats().backend_fetches();
  if (server.coalescer() != nullptr) {
    const serve::CoalescerStats cs = server.coalescer()->stats();
    result.leaders = cs.leaders;
    result.joined = cs.joined;
  }
  result.elapsed_s = sw.ElapsedSeconds();
  server.Stop();
  return result;
}

// ---------------------------------------------------------------------------
// Phase: network I/O backends over loopback. The same open-loop load runs
// through a real NetServer/NetClient pair once per backend; the measured
// quantity is syscalls per served frame — waits + per-chunk recvs + sends,
// the numbers batched SQE submission exists to shrink.

/// Adapts the future-returning NetClient::SubmitBatch to the load
/// generator's callback seam (same shape as pkgm_serve's drain): a
/// collector thread resolves futures in submit order and fires the
/// completion callbacks, so no generator thread parks on a future.
class FutureDrain {
 public:
  explicit FutureDrain(net::NetClient* client)
      : client_(client), worker_([this] { Loop(); }) {}

  ~FutureDrain() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }

  void Submit(std::vector<serve::ServiceRequest> requests,
              std::function<void(size_t, serve::ServiceResponse)> done) {
    Item item;
    item.futures = client_->SubmitBatch(std::move(requests));
    item.done = std::move(done);
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

 private:
  struct Item {
    std::vector<std::future<serve::ServiceResponse>> futures;
    std::function<void(size_t, serve::ServiceResponse)> done;
  };

  void Loop() {
    for (;;) {
      Item item;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
        if (queue_.empty()) return;  // closed and drained
        item = std::move(queue_.front());
        queue_.pop_front();
      }
      for (size_t i = 0; i < item.futures.size(); ++i) {
        item.done(i, item.futures[i].get());
      }
    }
  }

  net::NetClient* client_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Item> queue_;
  bool closed_ = false;
  std::thread worker_;
};

struct NetIoLeg {
  bool ran = false;
  serve::LoadGenReport report;
  serve::NetCounters net;
  /// (io_wait_calls + io_recv_syscalls + io_send_syscalls) per frame moved.
  double syscalls_per_frame = 0.0;
};

NetIoLeg RunNetIoLeg(const core::ServiceVectorProvider* provider,
                     const char* backend, double offered_qps,
                     uint64_t requests) {
  serve::KnowledgeServerOptions sopt;
  sopt.num_workers = 4;
  sopt.enable_cache = true;
  sopt.enable_coalescing = true;
  serve::KnowledgeServer server(provider, sopt);
  server.Start();

  net::NetServerOptions nopt;
  nopt.io_backend = backend;
  // One event-loop thread: the measured quantity is syscalls per frame on
  // one core under fan-in, so concentrate the fan-in instead of diluting
  // events across loops that then mostly sleep.
  nopt.num_io_threads = 1;
  net::NetServer net_server(&server, nopt);
  PKGM_CHECK_OK(net_server.Start());

  net::NetClientOptions copt;
  copt.io_backend = backend;
  // Enough connections that the event-loop thread multiplexes many — the
  // fan-in shape the backends are built for, and the one where their
  // syscall structure diverges (per-conn syscalls vs shared submissions).
  copt.num_connections = 16;
  auto client = net::NetClient::Connect("127.0.0.1", net_server.port(), copt);
  PKGM_CHECK(client.ok());

  NetIoLeg leg;
  {
    FutureDrain drain(client.value().get());
    serve::LoadGenOptions lopt;
    lopt.rate_qps = offered_qps;
    lopt.total_requests = requests;
    lopt.threads = 8;
    lopt.arrival = serve::ArrivalProcess::kPoisson;
    lopt.num_items = provider->num_items();
    lopt.seed = 23;
    leg.report = serve::RunLoadGen(
        lopt,
        [&drain](std::vector<serve::ServiceRequest> batch,
                 std::function<void(size_t, serve::ServiceResponse)> done) {
          drain.Submit(std::move(batch), std::move(done));
        });
  }  // drain joins: every frame is on the wire and answered

  PKGM_CHECK_EQ(client.value()->network_errors(), 0u);
  leg.net = net_server.net_counters();
  const uint64_t frames = leg.net.frames_in + leg.net.frames_out;
  const uint64_t syscalls = leg.net.io_wait_calls + leg.net.io_recv_syscalls +
                            leg.net.io_send_syscalls;
  leg.syscalls_per_frame = static_cast<double>(syscalls) /
                           static_cast<double>(frames > 0 ? frames : 1);
  leg.ran = true;

  client.value().reset();
  net_server.Stop();
  server.Stop();
  return leg;
}

// ---------------------------------------------------------------------------
// JSON helpers (the artifact is flat enough for fprintf).

void JsonLoadGenFields(std::FILE* f, const serve::LoadGenReport& r) {
  std::fprintf(
      f,
      "\"offered_qps\":%.1f,\"achieved_qps\":%.1f,\"submitted\":%llu,"
      "\"ok\":%llu,\"rejected\":%llu,\"quota_rejected\":%llu,"
      "\"deadline_exceeded\":%llu,\"p50_us\":%.1f,\"p99_us\":%.1f,"
      "\"p999_us\":%.1f,\"server_ok_p999_us\":%.1f",
      r.offered_qps, r.achieved_qps,
      static_cast<unsigned long long>(r.submitted),
      static_cast<unsigned long long>(r.ok),
      static_cast<unsigned long long>(r.rejected),
      static_cast<unsigned long long>(r.quota_rejected),
      static_cast<unsigned long long>(r.deadline_exceeded),
      r.latency_us.Percentile(0.5), r.latency_us.Percentile(0.99),
      r.latency_us.Percentile(0.999), r.server_ok_us.Percentile(0.999));
}

void PrintLoadGenRow(TablePrinter* table, const std::string& name,
                     const serve::LoadGenReport& r) {
  table->AddRow({name, StrFormat("%.0f", r.offered_qps),
                 StrFormat("%.0f", r.achieved_qps),
                 StrFormat("%.0f", r.latency_us.Percentile(0.5)),
                 StrFormat("%.0f", r.latency_us.Percentile(0.99)),
                 StrFormat("%.0f", r.latency_us.Percentile(0.999)),
                 StrFormat("%.0f", r.server_ok_us.Percentile(0.999)),
                 WithThousandsSeparators(r.quota_rejected),
                 WithThousandsSeparators(r.deadline_exceeded)});
}

void Run(bool smoke, const std::string& json_path) {
  bench::PrintHeader("Tail latency: coalescing, quotas, and honest load");

  tasks::PipelineOptions opt = bench::BenchPipelineOptions();
  opt.pkg.num_categories = 8;
  opt.pkg.items_per_category = 125;  // 1000 items: serving, not quality
  opt.pretrain_epochs = 3;
  std::printf("building pipeline (short pre-train; latency only) ...\n");
  tasks::PretrainedPkgm p = tasks::BuildAndPretrain(opt);
  const core::ServiceVectorProvider* provider = p.services.get();
  const uint32_t num_items = provider->num_items();

  // ---- Phase 1: capacity.
  const uint32_t capacity_requests = smoke ? 24000 : 120000;
  const double capacity = MeasureCapacity(provider, capacity_requests);
  std::printf("closed-loop capacity: %.0f requests/s (%u items, %s mode)\n\n",
              capacity, num_items, smoke ? "smoke" : "full");

  // ---- Phase 2: herd.
  ThrottledSource slow_source(p.services->source(),
                              std::chrono::microseconds(500));
  core::ServiceVectorProvider slow_provider =
      CloneProviderOver(&slow_source, *provider);
  const uint32_t herd_epochs = smoke ? 40 : 150;
  const uint32_t herd_size = 64;
  const HerdResult herd_off =
      RunHerd(&slow_provider, /*coalesce=*/false, herd_epochs, herd_size);
  const HerdResult herd_on =
      RunHerd(&slow_provider, /*coalesce=*/true, herd_epochs, herd_size);
  const double fetch_ratio =
      static_cast<double>(herd_on.backend_fetches) /
      static_cast<double>(herd_off.backend_fetches);
  {
    TablePrinter table({"coalescing", "backend fetches", "leaders", "joined",
                        "wall s"});
    table.AddRow({"off", WithThousandsSeparators(herd_off.backend_fetches),
                  "-", "-", StrFormat("%.2f", herd_off.elapsed_s)});
    table.AddRow({"on", WithThousandsSeparators(herd_on.backend_fetches),
                  WithThousandsSeparators(herd_on.leaders),
                  WithThousandsSeparators(herd_on.joined),
                  StrFormat("%.2f", herd_on.elapsed_s)});
    std::printf(
        "thundering herd (%u epochs x %u requests on one cold key, 500us "
        "backend):\n%s"
        "coalesced fetches / uncoalesced fetches: %.2f\n\n",
        herd_epochs, herd_size, table.ToString().c_str(), fetch_ratio);
  }
  // The gate: one flight per (key, invalidation) means the coalesced run
  // must do materially fewer backend fetches than the herd of misses.
  PKGM_CHECK_LT(fetch_ratio, 0.8);
  PKGM_CHECK_GT(herd_on.joined, 0u);

  // ---- Phase 3: SLO under overload with quotas + deadlines.
  const double slo_us = 50000.0;
  serve::LoadGenReport slo_report;
  std::string slo_server_json;
  {
    serve::KnowledgeServerOptions sopt;
    sopt.num_workers = 4;
    sopt.enable_cache = true;
    sopt.enable_coalescing = true;
    const double offered = std::min(0.3 * capacity, smoke ? 4000.0 : 8000.0);
    const uint16_t tenants = 4;
    // Each tenant offers offered/tenants; quotas admit half of that, so the
    // run sheds aggressively while the admitted load stays comfortable.
    sopt.tenant_rate = offered / (tenants * 2.0);
    sopt.tenant_burst = 50.0;
    serve::KnowledgeServer server(provider, sopt);
    server.Start();

    serve::LoadGenOptions lopt;
    lopt.rate_qps = offered;
    lopt.total_requests = static_cast<uint64_t>(offered * (smoke ? 1.5 : 4.0));
    lopt.threads = 4;
    lopt.arrival = serve::ArrivalProcess::kPoisson;
    lopt.num_items = num_items;
    lopt.num_tenants = tenants;
    lopt.deadline_us = static_cast<uint32_t>(slo_us);
    lopt.seed = 2021;
    slo_report = serve::RunLoadGen(lopt, InProcess(&server));
    slo_server_json = server.StatsJson();
    server.Stop();
  }
  // ---- Phase 4: open-loop vs closed-loop honesty at one offered rate.
  serve::LoadGenReport open_report;
  serve::LoadGenReport closed_report;
  {
    serve::KnowledgeServerOptions sopt;
    sopt.num_workers = 4;
    sopt.enable_cache = true;
    sopt.enable_coalescing = true;
    serve::KnowledgeServer server(provider, sopt);
    server.Start();

    serve::LoadGenOptions lopt;
    lopt.rate_qps = std::min(0.5 * capacity, smoke ? 5000.0 : 10000.0);
    lopt.total_requests =
        static_cast<uint64_t>(lopt.rate_qps * (smoke ? 1.0 : 2.0));
    lopt.threads = 4;
    lopt.arrival = serve::ArrivalProcess::kPoisson;
    lopt.num_items = num_items;
    lopt.seed = 7;
    lopt.open_loop = false;  // run the flawed methodology first (warms cache)
    closed_report = serve::RunLoadGen(lopt, InProcess(&server));
    lopt.open_loop = true;
    open_report = serve::RunLoadGen(lopt, InProcess(&server));
    server.Stop();
  }

  {
    TablePrinter table({"phase", "offered/s", "achieved/s", "p50 us",
                        "p99 us", "p999 us", "srv ok p999", "quota shed",
                        "deadline"});
    PrintLoadGenRow(&table, "slo (quotas + deadline)", slo_report);
    PrintLoadGenRow(&table, "honesty, closed loop", closed_report);
    PrintLoadGenRow(&table, "honesty, open loop", open_report);
    std::printf("open-loop load phases:\n%s\n", table.ToString().c_str());
  }

  const double open_p999 = open_report.latency_us.Percentile(0.999);
  const double closed_p999 = closed_report.latency_us.Percentile(0.999);
  const double slo_server_p999 = slo_report.server_ok_us.Percentile(0.999);
  std::printf(
      "p999: slo-phase served %.0f us inside the server (SLO %.0f us, "
      "client-observed %.0f us) | open %.0f us vs closed %.0f us at the "
      "same offered rate\n\n",
      slo_server_p999, slo_us, slo_report.latency_us.Percentile(0.999),
      open_p999, closed_p999);

  // The gates. The SLO is asserted on the server-side (queue + compute)
  // p999 of served requests — the quantity deadline + quota shedding
  // bound: anything the server could not answer inside its deadline was
  // shed, not served late. The client-observed open-loop p999 is reported
  // but not gated; on a small CI host it is dominated by generator
  // scheduling lateness that open-loop measurement honestly charges. The
  // honesty gate: at the same offered rate the open-loop p999 is never
  // below the closed-loop number (coordinated omission can only hide
  // latency, not add it).
  PKGM_CHECK_LE(slo_server_p999, slo_us);
  PKGM_CHECK_GT(slo_report.quota_rejected, 0u);
  PKGM_CHECK_GT(slo_report.ok, 0u);
  PKGM_CHECK_GE(open_p999, 0.95 * closed_p999);

  // ---- Phase 5: net I/O backends over loopback at the same offered rate.
  const bool uring_available = net::UringAvailable();
  // The rate is deliberately high (batching is the property under test —
  // it only exists when events are dense enough to share a submission),
  // but still below capacity so the achieved rate tracks the offered one.
  const double net_offered = std::min(0.6 * capacity, smoke ? 8000.0 : 11000.0);
  const uint64_t net_requests =
      static_cast<uint64_t>(net_offered * (smoke ? 2.5 : 3.0));
  const NetIoLeg epoll_leg =
      RunNetIoLeg(provider, "epoll", net_offered, net_requests);
  NetIoLeg uring_leg;
  if (uring_available) {
    uring_leg = RunNetIoLeg(provider, "uring", net_offered, net_requests);
  } else {
    std::printf(
        "net i/o: io_uring unavailable on this kernel; epoll leg only\n");
  }
  {
    TablePrinter table({"backend", "offered/s", "achieved/s", "p999 us",
                        "frames", "waits", "recv sys", "send sys",
                        "submits", "sys/frame"});
    const auto add_leg = [&table](const NetIoLeg& leg) {
      table.AddRow(
          {leg.net.io_backend, StrFormat("%.0f", leg.report.offered_qps),
           StrFormat("%.0f", leg.report.achieved_qps),
           StrFormat("%.0f", leg.report.latency_us.Percentile(0.999)),
           WithThousandsSeparators(leg.net.frames_in + leg.net.frames_out),
           WithThousandsSeparators(leg.net.io_wait_calls),
           WithThousandsSeparators(leg.net.io_recv_syscalls),
           WithThousandsSeparators(leg.net.io_send_syscalls),
           WithThousandsSeparators(leg.net.io_recv_submissions +
                                   leg.net.io_send_submissions),
           StrFormat("%.3f", leg.syscalls_per_frame)});
    };
    add_leg(epoll_leg);
    if (uring_leg.ran) add_leg(uring_leg);
    std::printf("net i/o backends over loopback (%llu requests at %.0f/s):\n%s",
                static_cast<unsigned long long>(net_requests), net_offered,
                table.ToString().c_str());
  }
  if (uring_leg.ran) {
    const double syscall_ratio =
        uring_leg.syscalls_per_frame / epoll_leg.syscalls_per_frame;
    const double epoll_net_p999 =
        epoll_leg.report.latency_us.Percentile(0.999);
    const double uring_net_p999 =
        uring_leg.report.latency_us.Percentile(0.999);
    std::printf("uring/epoll syscalls per frame: %.3f (gate < 0.5), p999 %.0f "
                "vs %.0f us\n\n",
                syscall_ratio, uring_net_p999, epoll_net_p999);
    // The batching gate: the ring must at least halve the syscalls behind
    // the same frame stream. The p999 gate allows generous slack — on a
    // small CI host the tail is scheduler noise — but catches a backend
    // that stalls or serializes.
    PKGM_CHECK_EQ(uring_leg.net.io_backend, std::string("io_uring"));
    PKGM_CHECK_LT(syscall_ratio, 0.5);
    PKGM_CHECK_LE(uring_net_p999,
                  std::max(2.0 * epoll_net_p999, epoll_net_p999 + 20000.0));
  } else {
    std::printf("\n");
  }

  // ---- Phase 6 (full mode): sweep offered load through saturation.
  std::vector<serve::LoadGenReport> sweep;
  if (!smoke) {
    serve::KnowledgeServerOptions sopt;
    sopt.num_workers = 4;
    sopt.enable_cache = true;
    sopt.enable_coalescing = true;
    serve::KnowledgeServer server(provider, sopt);
    server.Start();
    TablePrinter table({"phase", "offered/s", "achieved/s", "p50 us",
                        "p99 us", "p999 us", "srv ok p999", "quota shed",
                        "deadline"});
    for (double frac : {0.5, 0.8, 1.0, 1.2}) {
      serve::LoadGenOptions lopt;
      lopt.rate_qps = std::min(frac * capacity, 25000.0);
      lopt.total_requests = static_cast<uint64_t>(lopt.rate_qps * 2.0);
      lopt.threads = 8;
      lopt.arrival = serve::ArrivalProcess::kPoisson;
      lopt.num_items = num_items;
      lopt.deadline_us = 200000;
      lopt.seed = 11;
      sweep.push_back(serve::RunLoadGen(lopt, InProcess(&server)));
      PrintLoadGenRow(&table, StrFormat("sweep %.1fx capacity", frac),
                      sweep.back());
    }
    std::printf("offered-load sweep:\n%s\n", table.ToString().c_str());
    server.Stop();
  }

  std::printf("tail-latency gate passed: coalescing ratio %.2f < 0.8, "
              "p999 inside SLO with shedding, open >= closed p999%s.\n",
              fetch_ratio,
              uring_leg.ran ? ", uring halves syscalls per frame"
                            : " (uring leg skipped)");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    PKGM_CHECK(f != nullptr);
    std::fprintf(f, "{\"smoke\":%s,\"capacity_qps\":%.1f,",
                 smoke ? "true" : "false", capacity);
    std::fprintf(
        f,
        "\"coalescing\":{\"herd_epochs\":%u,\"herd_size\":%u,"
        "\"backend_fetches_off\":%llu,\"backend_fetches_on\":%llu,"
        "\"fetch_ratio\":%.3f,\"leaders\":%llu,\"joined\":%llu},",
        herd_epochs, herd_size,
        static_cast<unsigned long long>(herd_off.backend_fetches),
        static_cast<unsigned long long>(herd_on.backend_fetches), fetch_ratio,
        static_cast<unsigned long long>(herd_on.leaders),
        static_cast<unsigned long long>(herd_on.joined));
    std::fprintf(f, "\"slo\":{\"slo_us\":%.0f,", slo_us);
    JsonLoadGenFields(f, slo_report);
    std::fprintf(f, ",\"server\":%s},", slo_server_json.c_str());
    std::fprintf(f, "\"honesty\":{\"open\":{");
    JsonLoadGenFields(f, open_report);
    std::fprintf(f, "},\"closed\":{");
    JsonLoadGenFields(f, closed_report);
    const auto json_net_leg = [f](const NetIoLeg& leg) {
      JsonLoadGenFields(f, leg.report);
      std::fprintf(
          f,
          ",\"io_backend\":\"%s\",\"frames\":%llu,\"io_wait_calls\":%llu,"
          "\"io_recv_syscalls\":%llu,\"io_send_syscalls\":%llu,"
          "\"io_recv_submissions\":%llu,\"io_send_submissions\":%llu,"
          "\"syscalls_per_frame\":%.4f",
          leg.net.io_backend.c_str(),
          static_cast<unsigned long long>(leg.net.frames_in +
                                          leg.net.frames_out),
          static_cast<unsigned long long>(leg.net.io_wait_calls),
          static_cast<unsigned long long>(leg.net.io_recv_syscalls),
          static_cast<unsigned long long>(leg.net.io_send_syscalls),
          static_cast<unsigned long long>(leg.net.io_recv_submissions),
          static_cast<unsigned long long>(leg.net.io_send_submissions),
          leg.syscalls_per_frame);
    };
    std::fprintf(f, "}},\"net_io\":{\"uring_available\":%s,\"epoll\":{",
                 uring_available ? "true" : "false");
    json_net_leg(epoll_leg);
    std::fprintf(f, "}");
    if (uring_leg.ran) {
      std::fprintf(f, ",\"io_uring\":{");
      json_net_leg(uring_leg);
      std::fprintf(f, "},\"syscalls_per_frame_ratio\":%.4f",
                   uring_leg.syscalls_per_frame / epoll_leg.syscalls_per_frame);
    }
    std::fprintf(f, "},\"sweep\":[");
    for (size_t i = 0; i < sweep.size(); ++i) {
      std::fprintf(f, "%s{", i == 0 ? "" : ",");
      JsonLoadGenFields(f, sweep[i]);
      std::fprintf(f, "}");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("json artifact written to %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace pkgm

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_tail_latency [--smoke] [--json PATH]\n");
      return 2;
    }
  }
  pkgm::Run(smoke, json_path);
  return 0;
}
