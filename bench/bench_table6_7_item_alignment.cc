// Reproduces Table V (alignment dataset statistics), Table VI (Hit@k vs
// 99 sampled negatives, BERT vs BERT_PKGM-all, 3 categories) and Table VII
// (accuracy for all four variants, 3 categories).

#include <cstdio>

#include "bench/bench_common.h"
#include "data/alignment_dataset.h"
#include "tasks/item_alignment.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace pkgm {
namespace {

void Run() {
  bench::PrintHeader("Tables V, VI & VII: product alignment");
  bench::PrintScaleNote();

  Stopwatch total_sw;
  tasks::PipelineOptions opt = bench::BenchPipelineOptions();
  // The paper appends 2k = 20 service vectors per item to 128-token inputs
  // holding ~60-word titles; our synthetic titles are ~10 words in 64-token
  // inputs, so k is scaled down proportionally to keep the same
  // service-to-title ratio (otherwise the vectors displace the title).
  opt.service_k = 5;
  std::printf("\npre-training PKGM on the synthetic PKG ...\n");
  tasks::PretrainedPkgm pipeline = tasks::BuildAndPretrain(opt);
  std::printf("pre-trained in %.1fs\n", total_sw.ElapsedSeconds());

  text::TitleGenerator titles(&pipeline.pkg, bench::BenchTitleOptions());
  data::AlignmentDatasetOptions data_opt;
  data_opt.pairs_per_category = 3000;  // paper: < 10k pairs per category
  data_opt.train_fraction = 0.70;      // paper: 7 : 1.5 : 1.5
  data_opt.test_fraction = 0.15;
  data_opt.ranking_negatives = 99;     // paper: rank among 100 candidates
  data_opt.ranking_cases = 60;
  data_opt.seed = 13;
  // Three item types, like the paper's skirts / hair decorations / socks.
  std::vector<data::AlignmentDataset> datasets =
      BuildAlignmentDatasets(pipeline.pkg, titles, {0, 1, 2}, data_opt);

  {
    TablePrinter t({"", "# Train", "# Test-C", "# Dev-C", "# Test-R",
                    "# Dev-R"});
    t.AddRow({"paper category-1", "4731", "1014", "1013", "513", "497"});
    t.AddRow({"paper category-2", "2424", "520", "519", "268", "278"});
    t.AddRow({"paper category-3", "3968", "852", "850", "417", "440"});
    t.AddSeparator();
    for (size_t c = 0; c < datasets.size(); ++c) {
      const auto& ds = datasets[c];
      t.AddRow({StrFormat("ours category-%zu", c + 1),
                WithThousandsSeparators(ds.train.size()),
                WithThousandsSeparators(ds.test_c.size()),
                WithThousandsSeparators(ds.dev_c.size()),
                WithThousandsSeparators(ds.test_r.size()),
                WithThousandsSeparators(ds.dev_r.size())});
    }
    std::printf("\nTable V analog (dataset statistics):\n%s",
                t.ToString().c_str());
  }

  tasks::ItemAlignmentOptions task_opt;
  task_opt.max_len = 64;
  task_opt.bert_layers = 2;
  task_opt.bert_heads = 4;
  task_opt.bert_ff = 128;
  task_opt.epochs = 8;
  task_opt.mlm_pretrain_epochs = 2;
  task_opt.seed = 17;

  TablePrinter paper_hits({"Method (paper)", "dataset", "Hit@1", "Hit@3",
                           "Hit@10"});
  paper_hits.AddRow({"BERT", "category-1", "65.06", "76.06", "86.68"});
  paper_hits.AddRow({"BERT_PKGM-all", "category-1", "64.75", "77.50", "87.43"});
  paper_hits.AddRow({"BERT", "category-2", "65.86", "78.07", "87.59"});
  paper_hits.AddRow({"BERT_PKGM-all", "category-2", "66.13", "78.19", "87.96"});
  paper_hits.AddRow({"BERT", "category-3", "49.64", "66.18", "82.37"});
  paper_hits.AddRow({"BERT_PKGM-all", "category-3", "50.60", "67.14", "83.45"});

  TablePrinter paper_acc(
      {"Method (paper)", "category-1", "category-2", "category-3"});
  paper_acc.AddRow({"BERT", "88.94", "89.31", "86.94"});
  paper_acc.AddRow({"BERT_PKGM-T", "88.65", "89.89", "87.88"});
  paper_acc.AddRow({"BERT_PKGM-R", "89.09", "89.60", "87.88"});
  paper_acc.AddRow({"BERT_PKGM-all", "89.15", "90.08", "88.13"});

  TablePrinter ours_hits({"Method (ours)", "dataset", "Hit@1", "Hit@3",
                          "Hit@10"});
  TablePrinter ours_acc(
      {"Method (ours)", "category-1", "category-2", "category-3"});

  const tasks::PkgmVariant variants[] = {
      tasks::PkgmVariant::kBase, tasks::PkgmVariant::kPkgmT,
      tasks::PkgmVariant::kPkgmR, tasks::PkgmVariant::kPkgmAll};
  // accuracy_rows[variant][category]
  std::vector<std::vector<double>> accuracy_rows(4);

  for (size_t c = 0; c < datasets.size(); ++c) {
    tasks::ItemAlignmentTask task(&datasets[c], pipeline.services.get(),
                                  task_opt);
    for (size_t v = 0; v < 4; ++v) {
      const tasks::PkgmVariant variant = variants[v];
      Stopwatch sw;
      tasks::AlignmentMetrics m = task.Run(variant);
      accuracy_rows[v].push_back(100 * m.accuracy);
      // Table VI reports only BERT vs BERT_PKGM-all.
      if (variant == tasks::PkgmVariant::kBase ||
          variant == tasks::PkgmVariant::kPkgmAll) {
        ours_hits.AddRow({tasks::VariantName(variant, "BERT"),
                          StrFormat("category-%zu", c + 1),
                          StrFormat("%.2f", 100 * m.hits[1]),
                          StrFormat("%.2f", 100 * m.hits[3]),
                          StrFormat("%.2f", 100 * m.hits[10])});
      }
      std::printf("category-%zu %-14s: %.1fs (acc %.3f)\n", c + 1,
                  tasks::VariantName(variant, "BERT").c_str(),
                  sw.ElapsedSeconds(), m.accuracy);
    }
  }
  for (size_t v = 0; v < 4; ++v) {
    ours_acc.AddRow(tasks::VariantName(variants[v], "BERT"), accuracy_rows[v]);
  }

  std::printf("\nTable VI, paper (Hit@k over 100 candidates):\n%s",
              paper_hits.ToString().c_str());
  std::printf("\nTable VI, ours:\n%s", ours_hits.ToString().c_str());
  std::printf("\nTable VII, paper (accuracy):\n%s",
              paper_acc.ToString().c_str());
  std::printf("\nTable VII, ours:\n%s", ours_acc.ToString().c_str());
  std::printf("\ntotal wall time %.1fs\n", total_sw.ElapsedSeconds());
}

}  // namespace
}  // namespace pkgm

int main() {
  pkgm::Run();
  return 0;
}
