// Reproduces Table III (item-classification dataset statistics) and
// Table IV (item classification results): BERT vs BERT_PKGM-T / -R / -all
// on Hit@1/3/10 and accuracy. Our "BERT" is the from-scratch TinyBert,
// MLM-pre-trained on the training titles.

#include <cstdio>

#include "bench/bench_common.h"
#include "data/classification_dataset.h"
#include "tasks/item_classification.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace pkgm {
namespace {

void Run() {
  bench::PrintHeader("Tables III & IV: item classification");
  bench::PrintScaleNote();

  Stopwatch total_sw;
  tasks::PipelineOptions opt = bench::BenchPipelineOptions();
  std::printf("\npre-training PKGM on the synthetic PKG ...\n");
  tasks::PretrainedPkgm pipeline = tasks::BuildAndPretrain(opt);
  std::printf("pre-trained in %.1fs (final mean hinge %.4f)\n",
              total_sw.ElapsedSeconds(), pipeline.last_epoch.mean_hinge);

  text::TitleGenerator titles(&pipeline.pkg, bench::BenchTitleOptions());
  data::ClassificationDatasetOptions data_opt;
  data_opt.max_per_category = 100;  // paper: < 100 instances per category
  data_opt.seed = 7;
  data::ClassificationDataset ds =
      BuildClassificationDataset(pipeline.pkg, titles, data_opt);

  {
    TablePrinter t({"", "# category", "# Train", "# Test", "# Dev"});
    t.AddRow({"paper", "1,293", "169,039", "36,225", "36,223"});
    t.AddRow({"ours", WithThousandsSeparators(ds.num_classes),
              WithThousandsSeparators(ds.train.size()),
              WithThousandsSeparators(ds.test.size()),
              WithThousandsSeparators(ds.dev.size())});
    std::printf("\nTable III analog (dataset statistics):\n%s",
                t.ToString().c_str());
  }

  tasks::ItemClassificationOptions task_opt;
  task_opt.max_len = 48;
  task_opt.bert_layers = 2;
  task_opt.bert_heads = 4;
  task_opt.bert_ff = 128;
  task_opt.epochs = 3;  // paper: 3 fine-tuning epochs
  task_opt.mlm_pretrain_epochs = 2;
  task_opt.learning_rate = 1e-3f;
  task_opt.seed = 11;
  tasks::ItemClassificationTask task(&ds, pipeline.services.get(), task_opt);

  TablePrinter paper({"Method (paper)", "Hit@1", "Hit@3", "Hit@10", "AC"});
  paper.AddRow({"BERT", "71.03", "84.91", "92.47", "71.52"});
  paper.AddRow({"BERT_PKGM-T", "71.26", "85.76", "93.07", "72.14"});
  paper.AddRow({"BERT_PKGM-R", "71.55", "85.43", "92.86", "72.26"});
  paper.AddRow({"BERT_PKGM-all", "71.64", "85.90", "93.17", "72.19"});

  TablePrinter ours({"Method (ours)", "Hit@1", "Hit@3", "Hit@10", "AC"});
  const tasks::PkgmVariant variants[] = {
      tasks::PkgmVariant::kBase, tasks::PkgmVariant::kPkgmT,
      tasks::PkgmVariant::kPkgmR, tasks::PkgmVariant::kPkgmAll};
  for (tasks::PkgmVariant v : variants) {
    Stopwatch sw;
    tasks::ClassificationMetrics m = task.Run(v);
    ours.AddRow(tasks::VariantName(v, "BERT"),
                {100 * m.hits[1], 100 * m.hits[3], 100 * m.hits[10],
                 100 * m.accuracy});
    std::printf("ran %-14s in %.1fs (train loss %.3f)\n",
                tasks::VariantName(v, "BERT").c_str(), sw.ElapsedSeconds(),
                m.train_loss);
  }

  std::printf("\nTable IV, paper:\n%s", paper.ToString().c_str());
  std::printf("\nTable IV, ours:\n%s", ours.ToString().c_str());
  std::printf("\ntotal wall time %.1fs\n", total_sw.ElapsedSeconds());
}

}  // namespace
}  // namespace pkgm

int main() {
  pkgm::Run();
  return 0;
}
