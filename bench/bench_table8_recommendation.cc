// Reproduces Table IX (recommendation dataset statistics) and Table VIII
// (item recommendation): NCF vs NCF_PKGM-T / -R / -all on HR@k and NDCG@k,
// k in {1, 3, 5, 10, 30}, leave-one-out with 100 sampled negatives.

#include <cstdio>

#include "bench/bench_common.h"
#include "data/interaction_dataset.h"
#include "tasks/recommendation.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace pkgm {
namespace {

void Run() {
  bench::PrintHeader("Tables VIII & IX: item recommendation");
  bench::PrintScaleNote();

  Stopwatch total_sw;
  tasks::PipelineOptions opt = bench::BenchPipelineOptions();
  std::printf("\npre-training PKGM on the synthetic PKG ...\n");
  tasks::PretrainedPkgm pipeline = tasks::BuildAndPretrain(opt);
  std::printf("pre-trained in %.1fs\n", total_sw.ElapsedSeconds());

  data::InteractionDatasetOptions data_opt;
  data_opt.num_users = 3000;
  data_opt.min_interactions_per_user = 10;  // paper: >= 10 per user
  data_opt.max_interactions_per_user = 25;
  data_opt.preference_strength = 5.0;
  data_opt.popularity_weight = 8.0;
  data_opt.seed = 19;
  data::InteractionDataset ds = BuildInteractionDataset(pipeline.pkg, data_opt);

  {
    TablePrinter t({"", "# Items", "# Users", "# Interactions"});
    t.AddRow({"paper TAOBAO-Rec", "37,847", "29,015", "443,425"});
    t.AddRow({"ours (synthetic)", WithThousandsSeparators(ds.num_items),
              WithThousandsSeparators(ds.num_users),
              WithThousandsSeparators(ds.total_interactions)});
    std::printf("\nTable IX analog (dataset statistics):\n%s",
                t.ToString().c_str());
  }

  tasks::RecommendationOptions task_opt;
  task_opt.epochs = 20;          // paper: 100 (synthetic converges earlier)
  task_opt.batch_size = 256;     // paper: 256
  task_opt.learning_rate = 1e-3f;
  task_opt.negative_ratio = 4;   // paper: 4
  task_opt.eval_negatives = 100; // paper: 100
  task_opt.gmf_dim = 8;          // paper: 8
  task_opt.mlp_dim = 32;         // paper: 32
  task_opt.mlp_hidden = {32, 16, 8};  // paper: [32, 16, 8]
  task_opt.embedding_l2 = 0.001f;     // paper: lambda = 0.001
  task_opt.seed = 23;
  tasks::RecommendationTask task(&ds, pipeline.services.get(), task_opt);

  TablePrinter paper({"Method (paper)", "HR@1", "HR@3", "HR@5", "HR@10",
                      "HR@30", "N@1", "N@3", "N@5", "N@10", "N@30"});
  paper.AddRow({"NCF", "27.94", "44.26", "52.16", "62.88", "81.26", "0.2794",
                "0.3744", "0.4069", "0.4415", "0.4853"});
  paper.AddRow({"NCF_PKGM-T", "27.96", "44.83", "52.43", "63.51", "81.62",
                "0.2796", "0.3778", "0.4091", "0.4449", "0.4880"});
  paper.AddRow({"NCF_PKGM-R", "31.01", "47.99", "56.10", "66.98", "84.73",
                "0.3101", "0.4091", "0.4424", "0.4777", "0.5200"});
  paper.AddRow({"NCF_PKGM-all", "30.76", "47.92", "55.60", "66.84", "84.71",
                "0.3076", "0.4079", "0.4395", "0.4758", "0.5185"});

  TablePrinter ours({"Method (ours)", "HR@1", "HR@3", "HR@5", "HR@10",
                     "HR@30", "N@1", "N@3", "N@5", "N@10", "N@30"});
  const tasks::PkgmVariant variants[] = {
      tasks::PkgmVariant::kBase, tasks::PkgmVariant::kPkgmT,
      tasks::PkgmVariant::kPkgmR, tasks::PkgmVariant::kPkgmAll};
  for (tasks::PkgmVariant v : variants) {
    Stopwatch sw;
    tasks::RecommendationMetrics m = task.Run(v);
    std::vector<std::string> row = {tasks::VariantName(v, "NCF")};
    for (int k : {1, 3, 5, 10, 30}) {
      row.push_back(StrFormat("%.2f", 100 * m.hr[k]));
    }
    for (int k : {1, 3, 5, 10, 30}) {
      row.push_back(StrFormat("%.4f", m.ndcg[k]));
    }
    ours.AddRow(row);
    std::printf("ran %-13s in %.1fs (train loss %.4f)\n",
                tasks::VariantName(v, "NCF").c_str(), sw.ElapsedSeconds(),
                m.train_loss);
  }

  std::printf("\nTable VIII, paper:\n%s", paper.ToString().c_str());
  std::printf("\nTable VIII, ours:\n%s", ours.ToString().c_str());
  std::printf("\ntotal wall time %.1fs\n", total_sw.ElapsedSeconds());
}

}  // namespace
}  // namespace pkgm

int main() {
  pkgm::Run();
  return 0;
}
