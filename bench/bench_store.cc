// Storage-tier study for the embedding store (src/store/): condensed
// service-vector latency and resident memory for the three parameter
// backends —
//
//   fp32-heap  the in-process PkgmModel tables (the pre-store baseline)
//   fp32-mmap  a .pkgs store served zero-copy out of a file mapping
//   int8-mmap  the same store symmetric-per-row quantized (~4x smaller),
//              dequantized on the fly per accessed row
//
// plus the int8 fidelity check: mean cosine of condensed vectors vs fp32.
//
//   bench_store [--smoke] [--json out.json]
//
// --smoke shrinks the model so the bench finishes in seconds (the CI
// configuration); --json writes the headline numbers for artifact upload.

#include <cstdio>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/pkgm_model.h"
#include "core/service.h"
#include "store/embedding_store_writer.h"
#include "store/mmap_embedding_store.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace pkgm {
namespace {

struct BenchConfig {
  uint32_t num_entities = 120000;
  uint32_t num_relations = 64;
  uint32_t dim = 64;
  uint32_t num_items = 2000;
  uint32_t keys_per_item = 10;
  uint32_t requests = 20000;
};

BenchConfig SmokeConfig() {
  BenchConfig c;
  c.num_entities = 12000;
  c.num_relations = 32;
  c.dim = 32;
  c.num_items = 400;
  c.requests = 4000;
  return c;
}

/// VmRSS from /proc/self/status, in bytes (0 if unavailable).
uint64_t ResidentBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %llu kB",
                    reinterpret_cast<unsigned long long*>(&kb)) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

struct ItemMap {
  std::vector<kg::EntityId> items;
  std::vector<std::vector<kg::RelationId>> keys;
};

ItemMap MakeItems(const BenchConfig& c, uint64_t seed) {
  ItemMap map;
  Rng rng(seed);
  map.items.reserve(c.num_items);
  map.keys.reserve(c.num_items);
  for (uint32_t i = 0; i < c.num_items; ++i) {
    map.items.push_back(
        static_cast<kg::EntityId>(rng.Uniform(c.num_entities)));
    std::vector<kg::RelationId> keys(c.keys_per_item);
    for (auto& k : keys) {
      k = static_cast<kg::RelationId>(rng.Uniform(c.num_relations));
    }
    map.keys.push_back(std::move(keys));
  }
  return map;
}

struct BackendResult {
  std::string name;
  uint64_t table_bytes = 0;   // heap tables or store file size
  uint64_t rss_delta = 0;     // resident growth attributable to the backend
  double p50_us = 0.0;
  double p95_us = 0.0;
  double mean_us = 0.0;
};

/// Zipf-ish condensed-serving loop; returns latency stats over `requests`.
void DriveProvider(const core::ServiceVectorProvider& provider,
                   const BenchConfig& c, BackendResult* out) {
  ZipfSampler zipf(c.num_items, 1.1);
  Rng rng(7);
  Histogram h;
  for (uint32_t i = 0; i < c.requests; ++i) {
    const uint32_t item = static_cast<uint32_t>(zipf.Sample(&rng));
    Stopwatch sw;
    const Vec v = provider.Condensed(item, core::ServiceMode::kAll);
    h.Record(sw.ElapsedSeconds() * 1e6);
    PKGM_CHECK_EQ(v.size(), 2 * provider.dim());
  }
  out->p50_us = h.Percentile(0.5);
  out->p95_us = h.Percentile(0.95);
  out->mean_us = h.Mean();
}

/// Faults every page of the mapping in (row sweep), so the RSS measurement
/// reflects a fully touched store, comparable with the heap tables.
void SweepStore(const store::MmapEmbeddingStore& s) {
  const uint32_t d = s.dim();
  std::vector<float> scratch(static_cast<size_t>(d) * d);
  float sink = 0.0f;
  for (uint32_t e = 0; e < s.num_entities(); ++e) {
    sink += s.EntityRow(e, scratch.data())[0];
  }
  for (uint32_t r = 0; r < s.num_relations(); ++r) {
    sink += s.RelationRow(r, scratch.data())[0];
    if (s.has_relation_module()) sink += s.TransferRow(r, scratch.data())[0];
  }
  PKGM_CHECK(sink == sink);  // keep the sweep observable
}

double MeanCondensedCosine(const core::ServiceVectorProvider& a,
                           const core::ServiceVectorProvider& b,
                           uint32_t num_items) {
  double total = 0.0;
  for (uint32_t i = 0; i < num_items; ++i) {
    const Vec va = a.Condensed(i, core::ServiceMode::kAll);
    const Vec vb = b.Condensed(i, core::ServiceMode::kAll);
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (size_t j = 0; j < va.size(); ++j) {
      dot += static_cast<double>(va[j]) * vb[j];
      na += static_cast<double>(va[j]) * va[j];
      nb += static_cast<double>(vb[j]) * vb[j];
    }
    total += (na == 0.0 || nb == 0.0) ? 1.0 : dot / std::sqrt(na * nb);
  }
  return total / num_items;
}

int Run(bool smoke, const std::string& json_path) {
  const BenchConfig c = smoke ? SmokeConfig() : BenchConfig{};
  std::printf("\n==== Embedding store: latency / memory across backends ====\n\n");
  std::printf("%s entities x %u relations, d=%u, %u items x %u key "
              "relations, %s condensed requests per backend%s\n\n",
              WithThousandsSeparators(c.num_entities).c_str(), c.num_relations,
              c.dim, c.num_items, c.keys_per_item,
              WithThousandsSeparators(c.requests).c_str(),
              smoke ? " (smoke)" : "");

  const std::string fp32_path = "/tmp/bench_store_fp32.pkgs";
  const std::string int8_path = "/tmp/bench_store_int8.pkgs";
  const ItemMap map = MakeItems(c, /*seed=*/2021);

  BackendResult heap{"fp32-heap"};
  BackendResult fp32{"fp32-mmap"};
  BackendResult int8{"int8-mmap"};

  // Phase 1: heap model — measure, drive, export both stores, then free it
  // so the mmap backends are measured without the heap tables resident.
  {
    const uint64_t rss0 = ResidentBytes();
    core::PkgmModelOptions mopt;
    mopt.num_entities = c.num_entities;
    mopt.num_relations = c.num_relations;
    mopt.dim = c.dim;
    mopt.seed = 2021;
    core::PkgmModel model(mopt);
    heap.rss_delta = ResidentBytes() - rss0;
    const uint64_t d = c.dim;
    heap.table_bytes =
        (static_cast<uint64_t>(c.num_entities) * d +
         static_cast<uint64_t>(c.num_relations) * d +
         static_cast<uint64_t>(c.num_relations) * d * d) *
        sizeof(float);

    core::ServiceVectorProvider provider(&model, map.items, map.keys);
    DriveProvider(provider, c, &heap);

    store::StoreWriterOptions wopt;
    PKGM_CHECK(store::EmbeddingStoreWriter(wopt).Write(model, fp32_path).ok());
    wopt.dtype = store::StoreDtype::kInt8;
    PKGM_CHECK(store::EmbeddingStoreWriter(wopt).Write(model, int8_path).ok());
  }

  // Phase 2: fp32 mmap. The rss baseline is read before Open() because the
  // checksum pass at open already faults every page of the mapping in.
  const uint64_t fp32_rss0 = ResidentBytes();
  auto fp32_store = store::MmapEmbeddingStore::Open(fp32_path);
  PKGM_CHECK(fp32_store.ok()) << fp32_store.status().message();
  {
    SweepStore(*fp32_store);
    fp32.rss_delta = ResidentBytes() - fp32_rss0;
    fp32.table_bytes = fp32_store->file_size();
    core::ServiceVectorProvider provider(&*fp32_store, map.items, map.keys);
    DriveProvider(provider, c, &fp32);
  }

  // Phase 3: int8 mmap.
  const uint64_t int8_rss0 = ResidentBytes();
  auto int8_store = store::MmapEmbeddingStore::Open(int8_path);
  PKGM_CHECK(int8_store.ok()) << int8_store.status().message();
  {
    SweepStore(*int8_store);
    int8.rss_delta = ResidentBytes() - int8_rss0;
    int8.table_bytes = int8_store->file_size();
    core::ServiceVectorProvider provider(&*int8_store, map.items, map.keys);
    DriveProvider(provider, c, &int8);
  }

  // Fidelity: int8 condensed vectors against the (bit-exact-to-heap) fp32
  // store.
  core::ServiceVectorProvider fp32_provider(&*fp32_store, map.items, map.keys);
  core::ServiceVectorProvider int8_provider(&*int8_store, map.items, map.keys);
  const uint32_t cosine_items = std::min<uint32_t>(c.num_items, 500);
  const double cosine =
      MeanCondensedCosine(fp32_provider, int8_provider, cosine_items);

  TablePrinter t({"backend", "table bytes", "rss delta", "p50 us", "p95 us",
                  "mean us"});
  for (const BackendResult* r : {&heap, &fp32, &int8}) {
    t.AddRow({r->name, WithThousandsSeparators(r->table_bytes),
              WithThousandsSeparators(r->rss_delta),
              StrFormat("%.2f", r->p50_us), StrFormat("%.2f", r->p95_us),
              StrFormat("%.2f", r->mean_us)});
  }
  std::printf("%s\n", t.ToString().c_str());

  const double size_ratio = static_cast<double>(int8.table_bytes) /
                            static_cast<double>(heap.table_bytes);
  std::printf("int8-mmap store is %.1f%% of the fp32-heap tables "
              "(target <= ~30%%)\n",
              100.0 * size_ratio);
  std::printf("int8 mean condensed cosine vs fp32: %.5f over %u items "
              "(target >= 0.99)\n",
              cosine, cosine_items);
  const bool pass = size_ratio <= 0.31 && cosine >= 0.99;
  std::printf("acceptance: %s\n", pass ? "PASS" : "FAIL");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f,
                 "  \"config\": {\"entities\": %u, \"relations\": %u, "
                 "\"dim\": %u, \"items\": %u, \"requests\": %u},\n",
                 c.num_entities, c.num_relations, c.dim, c.num_items,
                 c.requests);
    std::fprintf(f, "  \"backends\": [\n");
    const BackendResult* rs[] = {&heap, &fp32, &int8};
    for (int i = 0; i < 3; ++i) {
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"table_bytes\": %llu, "
                   "\"rss_delta_bytes\": %llu, \"p50_us\": %.3f, "
                   "\"p95_us\": %.3f, \"mean_us\": %.3f}%s\n",
                   rs[i]->name.c_str(),
                   static_cast<unsigned long long>(rs[i]->table_bytes),
                   static_cast<unsigned long long>(rs[i]->rss_delta),
                   rs[i]->p50_us, rs[i]->p95_us, rs[i]->mean_us,
                   i + 1 < 3 ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"int8_size_ratio\": %.4f,\n", size_ratio);
    std::fprintf(f, "  \"int8_mean_cosine\": %.6f,\n", cosine);
    std::fprintf(f, "  \"pass\": %s\n}\n", pass ? "true" : "false");
    std::fclose(f);
    std::printf("json written to %s\n", json_path.c_str());
  }
  std::remove(fp32_path.c_str());
  std::remove(int8_path.c_str());
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace pkgm

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_store [--smoke] [--json out.json]\n");
      return 2;
    }
  }
  return pkgm::Run(smoke, json_path);
}
