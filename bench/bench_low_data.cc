// Low-data ablation: the paper's motivation (§I, §III) is that a
// pre-trained KG model lets downstream tasks "achieve better performance,
// especially with a small amount of data". This bench sweeps the item
// classification training-set size (instances per category) and reports
// BERT vs BERT_PKGM-all, measuring how the PKGM advantage grows as
// supervision shrinks.

#include <cstdio>

#include "bench/bench_common.h"
#include "data/classification_dataset.h"
#include "tasks/item_classification.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace pkgm {
namespace {

void Run() {
  bench::PrintHeader("Low-data ablation: PKGM advantage vs training-set size");
  bench::PrintScaleNote();

  Stopwatch total_sw;
  tasks::PipelineOptions opt = bench::BenchPipelineOptions();
  std::printf("\npre-training PKGM ...\n");
  tasks::PretrainedPkgm pipeline = tasks::BuildAndPretrain(opt);
  std::printf("pre-trained in %.1fs\n", total_sw.ElapsedSeconds());

  text::TitleGenerator titles(&pipeline.pkg, bench::BenchTitleOptions());

  tasks::ItemClassificationOptions task_opt;
  task_opt.max_len = 48;
  task_opt.bert_layers = 2;
  task_opt.bert_heads = 4;
  task_opt.bert_ff = 128;
  task_opt.epochs = 3;
  task_opt.mlm_pretrain_epochs = 2;
  task_opt.seed = 29;

  TablePrinter t({"instances/category", "# train", "BERT AC",
                  "BERT_PKGM-all AC", "PKGM gain"});
  for (uint32_t per_category : {10u, 25u, 50u, 100u}) {
    data::ClassificationDatasetOptions data_opt;
    data_opt.max_per_category = per_category;
    data_opt.seed = 31;  // same item pool at every size
    data::ClassificationDataset ds =
        BuildClassificationDataset(pipeline.pkg, titles, data_opt);
    tasks::ItemClassificationTask task(&ds, pipeline.services.get(), task_opt);

    Stopwatch sw;
    tasks::ClassificationMetrics base = task.Run(tasks::PkgmVariant::kBase);
    tasks::ClassificationMetrics all = task.Run(tasks::PkgmVariant::kPkgmAll);
    t.AddRow({StrFormat("%u", per_category),
              WithThousandsSeparators(ds.train.size()),
              StrFormat("%.2f", 100 * base.accuracy),
              StrFormat("%.2f", 100 * all.accuracy),
              StrFormat("%+.2f", 100 * (all.accuracy - base.accuracy))});
    std::printf("size %3u done in %.1fs\n", per_category, sw.ElapsedSeconds());
  }
  std::printf("\naccuracy vs supervision (expect the gain column to grow as\n"
              "data shrinks — the paper's low-data claim):\n%s",
              t.ToString().c_str());
  std::printf("\ntotal wall time %.1fs\n", total_sw.ElapsedSeconds());
}

}  // namespace
}  // namespace pkgm

int main() {
  pkgm::Run();
  return 0;
}
