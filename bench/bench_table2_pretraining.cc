// Reproduces Table II (PKG-sub pre-training statistics) and the §III-A2
// training-details paragraph: dataset shape after the MaxCompute-style ETL
// frequency filter, then PKGM pre-training with both the single-threaded
// trainer and the parameter-server simulation, reporting loss convergence
// and throughput.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/pkgm_model.h"
#include "core/sharded_trainer.h"
#include "core/trainer.h"
#include "kg/synthetic_pkg.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace pkgm {
namespace {

void Run() {
  bench::PrintHeader("Table II: statistics of PKG-sub for pre-training");
  bench::PrintScaleNote();

  tasks::PipelineOptions opt = bench::BenchPipelineOptions();
  Stopwatch gen_sw;
  kg::SyntheticPkg pkg = kg::SyntheticPkgGenerator(opt.pkg).Generate();
  std::printf("\nsynthetic PKG generated in %.2fs\n", gen_sw.ElapsedSeconds());

  {
    TablePrinter t({"", "# items", "# entity", "# relation", "# triples"});
    t.AddRow({"paper PKG-sub", "142,634,045", "142,641,094", "426",
              "1,366,109,966"});
    t.AddRow({"ours (synthetic)", WithThousandsSeparators(pkg.items.size()),
              WithThousandsSeparators(pkg.entities.size()),
              WithThousandsSeparators(pkg.relations.size()),
              WithThousandsSeparators(pkg.observed.size())});
    std::printf("%s", t.ToString().c_str());
  }

  std::printf(
      "\nETL frequency filter (paper: drop attributes with < 5000\n"
      "occurrences; ours: < %u): dropped %llu triples across %u relations\n",
      opt.pkg.etl_min_occurrence,
      static_cast<unsigned long long>(pkg.etl_dropped_triples),
      pkg.etl_dropped_relations);
  std::printf("held-out (unfilled) attribute triples for completion eval: %s\n",
              WithThousandsSeparators(pkg.held_out.size()).c_str());

  bench::PrintHeader("§III-A2: pre-training details");
  std::printf(
      "paper: TensorFlow + Graph-learn, Adam lr 1e-4, batch 1000, d=64,\n"
      "1 negative/edge, 50 parameter servers + 200 workers, 2 epochs, 15h,\n"
      "model size 88GB.\n\n");

  // --- single-threaded reference trainer --------------------------------
  core::PkgmModelOptions model_opt;
  model_opt.num_entities = pkg.entities.size();
  model_opt.num_relations = pkg.relations.size();
  model_opt.dim = opt.dim;
  model_opt.seed = opt.seed;
  {
    core::PkgmModel model(model_opt);
    const double params =
        static_cast<double>(model.num_entities()) * model.dim() +
        static_cast<double>(model.num_relations()) * model.dim() +
        static_cast<double>(model.num_relations()) * model.dim() * model.dim();
    std::printf("ours: d=%u, %.2fM parameters (%.1f MB float32)\n", opt.dim,
                params / 1e6, params * 4 / 1e6);

    core::Trainer trainer(&model, &pkg.observed, opt.trainer);
    TablePrinter t({"epoch", "mean hinge", "active pairs", "triples/s"});
    Stopwatch sw;
    for (uint32_t e = 1; e <= opt.pretrain_epochs; ++e) {
      core::EpochStats s = trainer.RunEpoch();
      if (e == 1 || e % 5 == 0 || e == opt.pretrain_epochs) {
        t.AddRow({StrFormat("%u", e), StrFormat("%.4f", s.mean_hinge),
                  WithThousandsSeparators(s.active_pairs),
                  WithThousandsSeparators(
                      static_cast<uint64_t>(s.triples_per_second))});
      }
    }
    std::printf("\nsingle-threaded trainer (%u epochs in %.1fs):\n%s",
                opt.pretrain_epochs, sw.ElapsedSeconds(),
                t.ToString().c_str());
  }

  // --- parameter-server simulation ---------------------------------------
  {
    core::PkgmModel model(model_opt);
    core::ShardedTrainerOptions sharded;
    sharded.num_workers = 4;   // paper: 200 workers
    sharded.num_shards = 8;    // paper: 50 parameter servers
    sharded.batch_size = 512;
    sharded.learning_rate = 0.05f;
    sharded.seed = opt.seed;
    core::ShardedTrainer trainer(&model, &pkg.observed, sharded);
    TablePrinter t({"epoch", "mean hinge", "active pairs", "triples/s"});
    Stopwatch sw;
    for (uint32_t e = 1; e <= opt.pretrain_epochs; ++e) {
      core::EpochStats s = trainer.RunEpoch();
      if (e == 1 || e % 5 == 0 || e == opt.pretrain_epochs) {
        t.AddRow({StrFormat("%u", e), StrFormat("%.4f", s.mean_hinge),
                  WithThousandsSeparators(s.active_pairs),
                  WithThousandsSeparators(
                      static_cast<uint64_t>(s.triples_per_second))});
      }
    }
    std::printf(
        "\nparameter-server simulation, %u workers x %u shards "
        "(%u epochs in %.1fs):\n%s",
        sharded.num_workers, sharded.num_shards, opt.pretrain_epochs,
        sw.ElapsedSeconds(), t.ToString().c_str());
  }
}

}  // namespace
}  // namespace pkgm

int main() {
  pkgm::Run();
  return 0;
}
