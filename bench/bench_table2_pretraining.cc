// Reproduces Table II (PKG-sub pre-training statistics) and the §III-A2
// training-details paragraph: dataset shape after the MaxCompute-style ETL
// frequency filter, then PKGM pre-training with both the single-threaded
// trainer and the parameter-server simulation, reporting loss convergence
// and throughput.
//
// `--json <path>` writes a machine-readable throughput report (same artifact
// convention as bench_ops): the seed-era baseline — map-of-vectors SparseGrad
// plus reference gradients on scalar kernels, measured in a child process
// pinned with PKGM_KERNEL=scalar — against the fused single-threaded Trainer
// and the pipelined ShardedTrainer at 8 workers, all at d=64 on the same
// synthetic PKG with the same SGD hyper-parameters.
//
// `--distributed [N]` adds the true parameter-server path: N in-process
// ParamServer shards behind epoll NetServers on loopback, driven by a
// DistTrainer over real TCP, so the JSON also records distributed
// throughput vs the in-memory sharded plateau and the final-hinge ratio
// between the two.
//
// `--smoke` shrinks the PKG and epoch counts for CI and self-asserts that
// training converges (mean hinge decreases), the throughput fields are
// populated, and (with --distributed) the distributed final hinge lands
// within 2% of the sharded trainer's; exits non-zero on failure.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench/bench_common.h"
#include "core/gradients.h"
#include "core/pkgm_model.h"
#include "core/sharded_trainer.h"
#include "core/trainer.h"
#include "dist/dist_trainer.h"
#include "dist/param_server.h"
#include "kg/synthetic_pkg.h"
#include "net/net_server.h"
#include "tensor/ops.h"
#include "tensor/simd/kernel_dispatch.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace pkgm {
namespace {

void Run() {
  bench::PrintHeader("Table II: statistics of PKG-sub for pre-training");
  bench::PrintScaleNote();

  tasks::PipelineOptions opt = bench::BenchPipelineOptions();
  Stopwatch gen_sw;
  kg::SyntheticPkg pkg = kg::SyntheticPkgGenerator(opt.pkg).Generate();
  std::printf("\nsynthetic PKG generated in %.2fs\n", gen_sw.ElapsedSeconds());

  {
    TablePrinter t({"", "# items", "# entity", "# relation", "# triples"});
    t.AddRow({"paper PKG-sub", "142,634,045", "142,641,094", "426",
              "1,366,109,966"});
    t.AddRow({"ours (synthetic)", WithThousandsSeparators(pkg.items.size()),
              WithThousandsSeparators(pkg.entities.size()),
              WithThousandsSeparators(pkg.relations.size()),
              WithThousandsSeparators(pkg.observed.size())});
    std::printf("%s", t.ToString().c_str());
  }

  std::printf(
      "\nETL frequency filter (paper: drop attributes with < 5000\n"
      "occurrences; ours: < %u): dropped %llu triples across %u relations\n",
      opt.pkg.etl_min_occurrence,
      static_cast<unsigned long long>(pkg.etl_dropped_triples),
      pkg.etl_dropped_relations);
  std::printf("held-out (unfilled) attribute triples for completion eval: %s\n",
              WithThousandsSeparators(pkg.held_out.size()).c_str());

  bench::PrintHeader("§III-A2: pre-training details");
  std::printf(
      "paper: TensorFlow + Graph-learn, Adam lr 1e-4, batch 1000, d=64,\n"
      "1 negative/edge, 50 parameter servers + 200 workers, 2 epochs, 15h,\n"
      "model size 88GB.\n\n");

  // --- single-threaded reference trainer --------------------------------
  core::PkgmModelOptions model_opt;
  model_opt.num_entities = pkg.entities.size();
  model_opt.num_relations = pkg.relations.size();
  model_opt.dim = opt.dim;
  model_opt.seed = opt.seed;
  {
    core::PkgmModel model(model_opt);
    const double params =
        static_cast<double>(model.num_entities()) * model.dim() +
        static_cast<double>(model.num_relations()) * model.dim() +
        static_cast<double>(model.num_relations()) * model.dim() * model.dim();
    std::printf("ours: d=%u, %.2fM parameters (%.1f MB float32)\n", opt.dim,
                params / 1e6, params * 4 / 1e6);

    core::Trainer trainer(&model, &pkg.observed, opt.trainer);
    TablePrinter t({"epoch", "mean hinge", "active pairs", "triples/s"});
    Stopwatch sw;
    for (uint32_t e = 1; e <= opt.pretrain_epochs; ++e) {
      core::EpochStats s = trainer.RunEpoch();
      if (e == 1 || e % 5 == 0 || e == opt.pretrain_epochs) {
        t.AddRow({StrFormat("%u", e), StrFormat("%.4f", s.mean_hinge),
                  WithThousandsSeparators(s.active_pairs),
                  WithThousandsSeparators(
                      static_cast<uint64_t>(s.triples_per_second))});
      }
    }
    std::printf("\nsingle-threaded trainer (%u epochs in %.1fs):\n%s",
                opt.pretrain_epochs, sw.ElapsedSeconds(),
                t.ToString().c_str());
  }

  // --- parameter-server simulation ---------------------------------------
  {
    core::PkgmModel model(model_opt);
    core::ShardedTrainerOptions sharded;
    sharded.num_workers = 4;   // paper: 200 workers
    sharded.num_shards = 8;    // paper: 50 parameter servers
    sharded.batch_size = 512;
    sharded.learning_rate = 0.05f;
    sharded.seed = opt.seed;
    core::ShardedTrainer trainer(&model, &pkg.observed, sharded);
    TablePrinter t({"epoch", "mean hinge", "active pairs", "triples/s"});
    Stopwatch sw;
    for (uint32_t e = 1; e <= opt.pretrain_epochs; ++e) {
      core::EpochStats s = trainer.RunEpoch();
      if (e == 1 || e % 5 == 0 || e == opt.pretrain_epochs) {
        t.AddRow({StrFormat("%u", e), StrFormat("%.4f", s.mean_hinge),
                  WithThousandsSeparators(s.active_pairs),
                  WithThousandsSeparators(
                      static_cast<uint64_t>(s.triples_per_second))});
      }
    }
    std::printf(
        "\nparameter-server simulation, %u workers x %u shards "
        "(%u epochs in %.1fs):\n%s",
        sharded.num_workers, sharded.num_shards, opt.pretrain_epochs,
        sw.ElapsedSeconds(), t.ToString().c_str());
  }
}

// ---------------------------------------------------------------------------
// --json / --smoke measurement path
// ---------------------------------------------------------------------------

// One fixed configuration shared by the seed baseline, the fused
// single-threaded trainer, and the pipelined sharded trainer, so the JSON
// speedups compare like with like (same PKG, same SGD hyper-parameters).
struct PretrainConfig {
  kg::SyntheticPkgOptions pkg;
  uint32_t dim = 64;  // paper §III-A2
  uint32_t epochs = 5;
  uint32_t seed_epochs = 2;  // seed loop is slow; fewer epochs suffice
  uint32_t workers = 8;
  uint32_t shards = 8;
  uint32_t batch = 512;
  float lr = 0.05f;
  float margin = 2.0f;
  uint64_t seed = 2021;
  bool smoke = false;
};

PretrainConfig MakeConfig(bool smoke) {
  PretrainConfig c;
  c.pkg = bench::BenchPipelineOptions().pkg;
  c.smoke = smoke;
  if (smoke) {
    c.pkg.num_categories = 4;
    c.pkg.items_per_category = 60;
    c.pkg.properties_per_category = 6;
    c.pkg.shared_property_pool = 8;
    c.pkg.values_per_property = 12;
    c.pkg.products_per_category = 10;
    c.pkg.noise_properties = 4;
    c.dim = 16;
    c.epochs = 5;
    c.seed_epochs = 1;
    c.workers = 2;
    // The smoke KG is ~1k triples; smaller batches give each epoch enough
    // optimizer steps that the hinge-decrease assertion is stable.
    c.batch = 128;
  }
  return c;
}

core::PkgmModelOptions ModelOptionsFor(const kg::SyntheticPkg& pkg,
                                       const PretrainConfig& c) {
  core::PkgmModelOptions mo;
  mo.num_entities = pkg.entities.size();
  mo.num_relations = pkg.relations.size();
  mo.dim = c.dim;
  mo.seed = c.seed;
  return mo;
}

// The seed-era training loop, reproduced verbatim: map-of-vectors SparseGrad
// rebuilt every batch, reference AccumulateHingeGradients, per-row SGD apply,
// touched-entity set for normalization. Run in a child process with
// PKGM_KERNEL=scalar this is the pre-optimization engine the JSON speedups
// are measured against.
double SeedTrainerTps(const PretrainConfig& c) {
  kg::SyntheticPkg pkg = kg::SyntheticPkgGenerator(c.pkg).Generate();
  core::PkgmModel model(ModelOptionsFor(pkg, c));
  core::NegativeSampler::Options nopt;
  nopt.num_entities = model.num_entities();
  nopt.num_relations = model.num_relations();
  core::NegativeSampler sampler(nopt, &pkg.observed);
  Rng rng(c.seed);

  Stopwatch sw;
  uint64_t total = 0;
  for (uint32_t e = 0; e < c.seed_epochs; ++e) {
    std::vector<kg::Triple> triples = pkg.observed.triples();
    rng.Shuffle(&triples);
    total += triples.size();

    core::SparseGrad grad;
    std::unordered_set<uint32_t> touched;
    size_t batch_start = 0;
    while (batch_start < triples.size()) {
      const size_t batch_end =
          std::min(batch_start + c.batch, triples.size());
      grad.Clear();
      touched.clear();
      for (size_t i = batch_start; i < batch_end; ++i) {
        const kg::Triple& pos = triples[i];
        core::NegativeSample neg = sampler.Sample(pos, &rng);
        const float hinge = core::AccumulateHingeGradients(
            model, pos, neg.triple, c.margin, &grad);
        if (hinge > 0.0f) {
          touched.insert(pos.head);
          touched.insert(pos.tail);
          touched.insert(neg.triple.head);
          touched.insert(neg.triple.tail);
        }
      }
      if (!grad.empty()) {
        const float alpha =
            -c.lr / static_cast<float>(batch_end - batch_start);
        const uint32_t d = model.dim();
        for (const auto& [id, g] : grad.entities()) {
          Axpy(d, alpha, g.data(), model.entity(id));
        }
        for (const auto& [id, g] : grad.relations()) {
          Axpy(d, alpha, g.data(), model.relation(id));
        }
        for (const auto& [id, g] : grad.transfers()) {
          Axpy(d * d, alpha, g.data(), model.transfer(id));
        }
        for (uint32_t ent : touched) model.NormalizeEntity(ent);
      }
      batch_start = batch_end;
    }
  }
  const double secs = sw.ElapsedSeconds();
  return secs > 0 ? static_cast<double>(total) / secs : 0.0;
}

// Measures the seed baseline by re-running this binary with
// PKGM_KERNEL=scalar: the kernel table is chosen once per process, so the
// scalar configuration needs its own process (same trick as bench_ops).
// Returns 0.0 if the child fails.
double SeedBaselineTps(const char* argv0, const std::string& tmp_base,
                       bool smoke) {
  const std::string tmp = tmp_base + ".tps";
  std::string cmd = std::string("PKGM_KERNEL=scalar '") + argv0 +
                    "' --seed-trainer-tps";
  if (smoke) cmd += " --smoke";
  cmd += " > '" + tmp + "'";
  double tps = 0.0;
  if (std::system(cmd.c_str()) == 0) {
    if (std::FILE* f = std::fopen(tmp.c_str(), "r")) {
      if (std::fscanf(f, "%lf", &tps) != 1) tps = 0.0;
      std::fclose(f);
    }
  }
  std::remove(tmp.c_str());
  return tps;
}

struct TrainResult {
  double tps = 0.0;
  std::vector<double> hinge;  // mean hinge per epoch
};

TrainResult RunFusedSingle(const kg::SyntheticPkg& pkg,
                           const PretrainConfig& c) {
  core::PkgmModel model(ModelOptionsFor(pkg, c));
  core::TrainerOptions topt;
  topt.batch_size = c.batch;
  topt.learning_rate = c.lr;
  topt.margin = c.margin;
  topt.optimizer = core::OptimizerKind::kSgd;
  topt.seed = c.seed;
  core::Trainer trainer(&model, &pkg.observed, topt);

  TrainResult r;
  double secs = 0.0;
  uint64_t total = 0;
  for (uint32_t e = 0; e < c.epochs; ++e) {
    core::EpochStats s = trainer.RunEpoch();
    r.hinge.push_back(s.mean_hinge);
    secs += s.seconds;
    total += s.total_pairs;
  }
  r.tps = secs > 0 ? static_cast<double>(total) / secs : 0.0;
  return r;
}

TrainResult RunSharded(const kg::SyntheticPkg& pkg, const PretrainConfig& c) {
  core::PkgmModel model(ModelOptionsFor(pkg, c));
  core::ShardedTrainerOptions sopt;
  sopt.num_workers = c.workers;
  sopt.num_shards = c.shards;
  sopt.batch_size = c.batch;
  sopt.learning_rate = c.lr;
  sopt.margin = c.margin;
  sopt.seed = c.seed;
  core::ShardedTrainer trainer(&model, &pkg.observed, sopt);

  TrainResult r;
  double secs = 0.0;
  uint64_t total = 0;
  for (uint32_t e = 0; e < c.epochs; ++e) {
    core::EpochStats s = trainer.RunEpoch();
    r.hinge.push_back(s.mean_hinge);
    secs += s.seconds;
    total += s.total_pairs;
  }
  r.tps = secs > 0 ? static_cast<double>(total) / secs : 0.0;
  return r;
}

struct DistResult {
  TrainResult train;
  uint64_t pulls = 0;
  uint64_t pushes = 0;
  bool ok = false;
};

// The true distributed path, run in-process for the bench: each shard is a
// ParamServer behind its own epoll NetServer on an ephemeral loopback port,
// and the DistTrainer drives them over real TCP — full wire encode / CRC /
// decode cost on every pull and push, unlike the in-memory ShardedTrainer
// it is compared against.
DistResult RunDistributed(const kg::SyntheticPkg& pkg,
                          const PretrainConfig& c, uint32_t num_shards) {
  DistResult r;
  std::vector<std::unique_ptr<dist::ParamServer>> shards;
  std::vector<std::unique_ptr<net::NetServer>> servers;
  std::vector<std::string> endpoints;
  for (uint32_t s = 0; s < num_shards; ++s) {
    dist::ParamServerOptions popt;
    popt.shard_index = s;
    popt.num_shards = num_shards;
    popt.model = ModelOptionsFor(pkg, c);
    popt.optimizer = core::OptimizerKind::kSgd;
    popt.learning_rate = c.lr;
    shards.push_back(std::make_unique<dist::ParamServer>(popt));
    net::NetServerOptions nopt;
    nopt.bind_address = "127.0.0.1";
    nopt.port = 0;
    servers.push_back(
        std::make_unique<net::NetServer>(shards.back().get(), nopt));
    Status started = servers.back()->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "distributed shard %u: %s\n", s,
                   started.ToString().c_str());
      for (size_t i = 0; i < servers.size() - 1; ++i) servers[i]->Stop();
      return r;
    }
    endpoints.push_back(
        StrFormat("127.0.0.1:%u", servers.back()->port()));
  }

  {
    dist::DistTrainerOptions dopt;
    dopt.shard_endpoints = endpoints;
    dopt.num_workers = c.workers;
    dopt.batch_size = c.batch;
    dopt.learning_rate = c.lr;
    dopt.margin = c.margin;
    dopt.seed = c.seed;
    dist::DistTrainer trainer(&pkg.observed, dopt);
    Status st = trainer.Connect();
    if (st.ok()) {
      double secs = 0.0;
      uint64_t total = 0;
      for (uint32_t e = 0; e < c.epochs && st.ok(); ++e) {
        StatusOr<core::EpochStats> s = trainer.RunEpoch();
        if (!s.ok()) {
          st = s.status();
          break;
        }
        r.train.hinge.push_back(s->mean_hinge);
        secs += s->seconds;
        total += s->total_pairs;
      }
      if (st.ok()) {
        r.train.tps = secs > 0 ? static_cast<double>(total) / secs : 0.0;
        r.pulls = trainer.pulls();
        r.pushes = trainer.pushes();
        r.ok = true;
      }
    }
    if (!st.ok()) {
      std::fprintf(stderr, "distributed training: %s\n",
                   st.ToString().c_str());
    }
  }

  // Parked barrier responds count as outstanding frames: abort before the
  // drain waits on them.
  for (auto& shard : shards) shard->AbortBarriers();
  for (auto& server : servers) server->Stop();
  return r;
}

void PrintHingeArray(std::FILE* f, const std::vector<double>& hinge) {
  std::fprintf(f, "[");
  for (size_t i = 0; i < hinge.size(); ++i) {
    std::fprintf(f, "%s%.6f", i ? ", " : "", hinge[i]);
  }
  std::fprintf(f, "]");
}

int RunJson(const char* argv0, const char* path, bool smoke,
            uint32_t dist_shards) {
  const PretrainConfig c = MakeConfig(smoke);
  kg::SyntheticPkg pkg = kg::SyntheticPkgGenerator(c.pkg).Generate();

  std::printf("bench_table2_pretraining: %s triples, d=%u, %u epochs%s\n",
              WithThousandsSeparators(pkg.observed.size()).c_str(), c.dim,
              c.epochs, smoke ? " (smoke)" : "");

  const std::string tmp_base = path != nullptr ? path : "bench_pretraining";
  const double seed_tps = SeedBaselineTps(argv0, tmp_base, smoke);
  const TrainResult single = RunFusedSingle(pkg, c);
  const TrainResult sharded = RunSharded(pkg, c);
  DistResult dist;
  if (dist_shards > 0) dist = RunDistributed(pkg, c, dist_shards);

  const double single_speedup = seed_tps > 0 ? single.tps / seed_tps : 0.0;
  const double sharded_speedup = seed_tps > 0 ? sharded.tps / seed_tps : 0.0;
  const double hinge_ratio =
      single.hinge.back() != 0.0 ? sharded.hinge.back() / single.hinge.back()
                                 : 0.0;

  std::printf("  seed baseline (scalar, SparseGrad): %12.0f triples/s\n",
              seed_tps);
  std::printf("  fused single-threaded trainer:      %12.0f triples/s "
              "(%.2fx)\n",
              single.tps, single_speedup);
  std::printf("  pipelined sharded, %u workers:       %12.0f triples/s "
              "(%.2fx)\n",
              c.workers, sharded.tps, sharded_speedup);
  std::printf("  final mean hinge: single %.4f, sharded %.4f (ratio %.3f)\n",
              single.hinge.back(), sharded.hinge.back(), hinge_ratio);
  double dist_speedup = 0.0, dist_hinge_ratio = 0.0;
  if (dist_shards > 0 && dist.ok) {
    dist_speedup = seed_tps > 0 ? dist.train.tps / seed_tps : 0.0;
    dist_hinge_ratio = sharded.hinge.back() != 0.0
                           ? dist.train.hinge.back() / sharded.hinge.back()
                           : 0.0;
    std::printf("  distributed PS, %u shards x %u wrk:  %12.0f triples/s "
                "(%.2fx; %llu pulls, %llu pushes)\n",
                dist_shards, c.workers, dist.train.tps, dist_speedup,
                static_cast<unsigned long long>(dist.pulls),
                static_cast<unsigned long long>(dist.pushes));
    std::printf("  final mean hinge: distributed %.4f vs sharded %.4f "
                "(ratio %.3f)\n",
                dist.train.hinge.back(), sharded.hinge.back(),
                dist_hinge_ratio);
  }

  if (path != nullptr) {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr,
                   "bench_table2_pretraining: cannot open %s for writing\n",
                   path);
      return 1;
    }
    std::fprintf(f, "{\n  \"kernel_isa\": \"%s\",\n",
                 simd::ActiveIsaName());
    std::fprintf(f,
                 "  \"config\": {\"dim\": %u, \"epochs\": %u, "
                 "\"batch_size\": %u, \"workers\": %u, \"num_shards\": %u, "
                 "\"learning_rate\": %g, \"margin\": %g, "
                 "\"optimizer\": \"sgd\", \"triples\": %llu, "
                 "\"smoke\": %s},\n",
                 c.dim, c.epochs, c.batch, c.workers, c.shards,
                 static_cast<double>(c.lr), static_cast<double>(c.margin),
                 static_cast<unsigned long long>(pkg.observed.size()),
                 smoke ? "true" : "false");
    std::fprintf(f,
                 "  \"seed_baseline_triples_per_sec\": %.1f,\n"
                 "  \"single_thread\": {\"triples_per_sec\": %.1f, "
                 "\"mean_hinge_per_epoch\": ",
                 seed_tps, single.tps);
    PrintHingeArray(f, single.hinge);
    std::fprintf(f,
                 "},\n  \"sharded\": {\"triples_per_sec\": %.1f, "
                 "\"workers\": %u, \"mean_hinge_per_epoch\": ",
                 sharded.tps, c.workers);
    PrintHingeArray(f, sharded.hinge);
    std::fprintf(f, "},\n");
    if (dist_shards > 0 && dist.ok) {
      std::fprintf(f,
                   "  \"distributed\": {\"triples_per_sec\": %.1f, "
                   "\"shards\": %u, \"workers\": %u, \"pulls\": %llu, "
                   "\"pushes\": %llu, \"mean_hinge_per_epoch\": ",
                   dist.train.tps, dist_shards, c.workers,
                   static_cast<unsigned long long>(dist.pulls),
                   static_cast<unsigned long long>(dist.pushes));
      PrintHingeArray(f, dist.train.hinge);
      std::fprintf(f,
                   "},\n  \"speedup_distributed_vs_seed_baseline\": %.2f,\n"
                   "  \"distributed_vs_sharded_final_hinge_ratio\": %.3f,\n",
                   dist_speedup, dist_hinge_ratio);
    }
    std::fprintf(f,
                 "  \"speedup_single_vs_seed_baseline\": %.2f,\n"
                 "  \"speedup_sharded_vs_seed_baseline\": %.2f,\n"
                 "  \"sharded_vs_single_final_hinge_ratio\": %.3f\n}\n",
                 single_speedup, sharded_speedup, hinge_ratio);
    std::fclose(f);
    std::printf("bench_table2_pretraining: wrote %s (kernels=%s)\n", path,
                simd::ActiveIsaName());
  }

  if (smoke) {
    int failures = 0;
    const auto expect = [&](bool ok, const char* what) {
      std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
      if (!ok) ++failures;
    };
    expect(single.tps > 0.0, "single-threaded throughput measured");
    expect(sharded.tps > 0.0, "sharded throughput measured");
    expect(single.hinge.back() < single.hinge.front(),
           "single-threaded mean hinge decreases over training");
    expect(sharded.hinge.back() < sharded.hinge.front(),
           "sharded mean hinge decreases over training");
    if (dist_shards > 0) {
      expect(dist.ok, "distributed training completed");
      if (dist.ok) {
        expect(dist.train.tps > 0.0, "distributed throughput measured");
        expect(dist.train.hinge.back() < dist.train.hinge.front(),
               "distributed mean hinge decreases over training");
        // Acceptance bound: the distributed trajectory lands within 2% of
        // the in-process ShardedTrainer at the same seed budget.
        expect(dist_hinge_ratio > 0.98 && dist_hinge_ratio < 1.02,
               "distributed final hinge within 2% of sharded");
        expect(dist.pulls > 0 && dist.pushes > 0,
               "wire traffic counters populated");
      }
    }
    if (failures > 0) {
      std::printf("bench_table2_pretraining: %d smoke check(s) FAILED\n",
                  failures);
      return 1;
    }
    std::printf("bench_table2_pretraining: smoke checks passed\n");
  }
  return 0;
}

}  // namespace
}  // namespace pkgm

int main(int argc, char** argv) {
  bool smoke = false;
  bool seed_tps = false;
  const char* json = nullptr;
  uint32_t dist_shards = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json = argv[++i];
    } else if (std::strcmp(argv[i], "--distributed") == 0) {
      // Optional shard count (default 2): in-process loopback parameter
      // servers measured against the sharded in-memory plateau.
      dist_shards = 2;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        dist_shards = static_cast<uint32_t>(std::atoi(argv[++i]));
        if (dist_shards == 0) {
          std::fprintf(stderr, "--distributed wants a shard count >= 1\n");
          return 2;
        }
      }
    } else if (std::strcmp(argv[i], "--seed-trainer-tps") == 0) {
      // Internal: print the seed-era trainer's triples/sec; used by --json
      // to measure the scalar baseline in a child process.
      seed_tps = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (seed_tps) {
    std::printf("%.3f\n", pkgm::SeedTrainerTps(pkgm::MakeConfig(smoke)));
    return 0;
  }
  if (smoke || json != nullptr || dist_shards > 0) {
    return pkgm::RunJson(argv[0], json, smoke, dist_shards);
  }
  pkgm::Run();
  return 0;
}
