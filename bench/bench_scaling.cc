// Scaling study of the parameter-server training simulation (§III-A2's
// 50-PS / 200-worker deployment): pre-training throughput vs worker count,
// shard count, and batch size on a fixed synthetic KG.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/pkgm_model.h"
#include "core/sharded_trainer.h"
#include "core/trainer.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace pkgm {
namespace {

core::PkgmModelOptions ModelOptionsFor(const kg::SyntheticPkg& pkg,
                                       uint32_t dim) {
  core::PkgmModelOptions opt;
  opt.num_entities = pkg.entities.size();
  opt.num_relations = pkg.relations.size();
  opt.dim = dim;
  opt.seed = 5;
  return opt;
}

void Run() {
  bench::PrintHeader("Scaling: PS-simulation training throughput");

  tasks::PipelineOptions opt = bench::BenchPipelineOptions();
  kg::SyntheticPkg pkg = kg::SyntheticPkgGenerator(opt.pkg).Generate();
  std::printf("KG: %s triples, %s entities, %u relations, d=%u\n",
              WithThousandsSeparators(pkg.observed.size()).c_str(),
              WithThousandsSeparators(pkg.entities.size()).c_str(),
              pkg.relations.size(), opt.dim);

  const uint32_t epochs = 2;

  // Single-threaded reference.
  {
    core::PkgmModel model(ModelOptionsFor(pkg, opt.dim));
    core::Trainer trainer(&model, &pkg.observed, opt.trainer);
    core::EpochStats s = trainer.Train(epochs);
    std::printf("\nsingle-threaded reference: %s triples/s\n",
                WithThousandsSeparators(
                    static_cast<uint64_t>(s.triples_per_second))
                    .c_str());
  }

  // Workers sweep (shards fixed).
  {
    TablePrinter t({"workers", "shards", "triples/s", "final mean hinge"});
    for (uint32_t workers : {1u, 2u, 4u, 8u}) {
      core::PkgmModel model(ModelOptionsFor(pkg, opt.dim));
      core::ShardedTrainerOptions sharded;
      sharded.num_workers = workers;
      sharded.num_shards = 8;
      sharded.learning_rate = 0.05f;
      core::ShardedTrainer trainer(&model, &pkg.observed, sharded);
      core::EpochStats s = trainer.Train(epochs);
      t.AddRow({StrFormat("%u", workers), "8",
                WithThousandsSeparators(
                    static_cast<uint64_t>(s.triples_per_second)),
                StrFormat("%.4f", s.mean_hinge)});
    }
    std::printf("\nworker sweep (single-core host: expect flat or worse —\n"
                "the sweep measures coordination overhead, not speedup):\n%s",
                t.ToString().c_str());
  }

  // Shard-contention sweep (workers fixed).
  {
    TablePrinter t({"workers", "shards", "triples/s", "final mean hinge"});
    for (uint32_t shards : {1u, 2u, 8u, 32u}) {
      core::PkgmModel model(ModelOptionsFor(pkg, opt.dim));
      core::ShardedTrainerOptions sharded;
      sharded.num_workers = 4;
      sharded.num_shards = shards;
      sharded.learning_rate = 0.05f;
      core::ShardedTrainer trainer(&model, &pkg.observed, sharded);
      core::EpochStats s = trainer.Train(epochs);
      t.AddRow({"4", StrFormat("%u", shards),
                WithThousandsSeparators(
                    static_cast<uint64_t>(s.triples_per_second)),
                StrFormat("%.4f", s.mean_hinge)});
    }
    std::printf("\nshard sweep (lock contention falls as shards grow):\n%s",
                t.ToString().c_str());
  }

  // Batch-size sweep on the single-threaded trainer.
  {
    TablePrinter t({"batch", "triples/s", "final mean hinge"});
    for (uint32_t batch : {64u, 256u, 1024u, 4096u}) {
      core::PkgmModel model(ModelOptionsFor(pkg, opt.dim));
      core::TrainerOptions topt = opt.trainer;
      topt.batch_size = batch;
      core::Trainer trainer(&model, &pkg.observed, topt);
      core::EpochStats s = trainer.Train(epochs);
      t.AddRow({StrFormat("%u", batch),
                WithThousandsSeparators(
                    static_cast<uint64_t>(s.triples_per_second)),
                StrFormat("%.4f", s.mean_hinge)});
    }
    std::printf("\nbatch-size sweep (paper uses batch 1000):\n%s",
                t.ToString().c_str());
  }

  // Dimension sweep: throughput vs d (the d^2 transfer matrices dominate).
  {
    TablePrinter t({"dim", "triples/s", "params (M)"});
    for (uint32_t dim : {16u, 32u, 64u}) {
      core::PkgmModel model(ModelOptionsFor(pkg, dim));
      core::TrainerOptions topt = opt.trainer;
      core::Trainer trainer(&model, &pkg.observed, topt);
      core::EpochStats s = trainer.Train(1);
      const double params =
          static_cast<double>(model.num_entities()) * dim +
          static_cast<double>(model.num_relations()) * dim * (1 + dim);
      t.AddRow({StrFormat("%u", dim),
                WithThousandsSeparators(
                    static_cast<uint64_t>(s.triples_per_second)),
                StrFormat("%.2f", params / 1e6)});
    }
    std::printf("\ndimension sweep (paper d=64):\n%s", t.ToString().c_str());
  }
}

}  // namespace
}  // namespace pkgm

int main() {
  pkgm::Run();
  return 0;
}
