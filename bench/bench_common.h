#ifndef PKGM_BENCH_BENCH_COMMON_H_
#define PKGM_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "tasks/pipeline.h"
#include "text/title_generator.h"
#include "util/string_util.h"

namespace pkgm::bench {

/// Standard bench-scale pipeline configuration shared by the table benches
/// so every experiment runs against the same pre-trained PKGM, mirroring
/// the paper's single pre-training feeding all three tasks.
inline tasks::PipelineOptions BenchPipelineOptions() {
  tasks::PipelineOptions opt;
  opt.pkg.seed = 2021;  // ICDE 2021
  opt.pkg.num_categories = 20;
  opt.pkg.items_per_category = 250;
  opt.pkg.properties_per_category = 12;
  opt.pkg.shared_property_pool = 16;
  opt.pkg.values_per_property = 40;
  opt.pkg.products_per_category = 40;
  opt.pkg.identity_properties = 3;
  opt.pkg.observed_fill_rate = 0.75;
  opt.pkg.noise_properties = 8;
  opt.pkg.noise_property_occurrences = 3;
  opt.pkg.etl_min_occurrence = 10;

  opt.dim = 32;
  opt.trainer.learning_rate = 0.05f;
  opt.trainer.margin = 2.0f;
  opt.trainer.batch_size = 512;
  opt.pretrain_epochs = 30;
  opt.service_k = 10;  // paper: top-10 key relations
  opt.seed = 2021;
  return opt;
}

/// Title generator with the library defaults (noisy seller titles).
inline text::TitleGeneratorOptions BenchTitleOptions() {
  return text::TitleGeneratorOptions{};
}

/// Prints a section header so bench output is navigable.
inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n\n", title.c_str());
}

/// Prints the standing caveat once per bench.
inline void PrintScaleNote() {
  std::printf(
      "note: paper numbers come from Alibaba's proprietary billion-scale\n"
      "stack (1.37B-triple KG, Chinese BERT-base, Taobao click logs); this\n"
      "harness reruns the same experiment design on a synthetic PKG and\n"
      "from-scratch substrates, so compare *shapes* (who wins, by roughly\n"
      "what factor), not absolute values.\n");
}

}  // namespace pkgm::bench

#endif  // PKGM_BENCH_BENCH_COMMON_H_
