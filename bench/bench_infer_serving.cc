// Inference-serving benchmark for the downstream subsystem (src/infer/):
// recommend / classify / align forwards executed server-side behind the
// KnowledgeServer, driven by the open-loop generator at a fixed request
// mix. Measures per-task p50/p999 and aggregate throughput, in-process and
// over the loopback socket, and runs a per-task weight hot swap under
// load — all of which must stay shed-free and protocol-clean.
//
//   bench_infer_serving [--smoke] [--json PATH]
//
//   --smoke shrinks the request volume for CI; --json writes the measured
//   numbers as a machine-readable artifact.

#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "infer/engine.h"
#include "infer/pipeline.h"
#include "infer/registry.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "serve/knowledge_server.h"
#include "serve/load_gen.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace pkgm {
namespace {

// Fixed request mix: the lookup-heavy profile of a front end that fetches
// vectors for most traffic and runs model forwards for the rest.
constexpr double kMixLookup = 0.4;
constexpr double kMixRecommend = 0.2;
constexpr double kMixClassify = 0.2;
constexpr double kMixAlign = 0.2;

/// Serving-scale pipeline (same as pkgm_netd): vectors and models only
/// need to exist, not be accurate.
tasks::PipelineOptions InferBenchPipelineOptions() {
  tasks::PipelineOptions opt;
  opt.pkg.seed = 2021;
  opt.pkg.num_categories = 8;
  opt.pkg.items_per_category = 125;
  opt.dim = 32;
  opt.pretrain_epochs = 3;
  opt.service_k = 10;
  opt.seed = 2021;
  return opt;
}

/// Drains NetClient futures on a collector thread so no generator thread
/// parks on a future (same adapter pkgm_serve --connect uses).
class FutureDrain {
 public:
  explicit FutureDrain(net::NetClient* client)
      : client_(client), worker_([this] { Loop(); }) {}

  ~FutureDrain() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }

  void Submit(std::vector<serve::ServiceRequest> requests,
              std::function<void(size_t, serve::ServiceResponse)> done) {
    Item item;
    item.futures = client_->SubmitBatch(std::move(requests));
    item.done = std::move(done);
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

 private:
  struct Item {
    std::vector<std::future<serve::ServiceResponse>> futures;
    std::function<void(size_t, serve::ServiceResponse)> done;
  };

  void Loop() {
    for (;;) {
      Item item;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
        if (queue_.empty()) return;
        item = std::move(queue_.front());
        queue_.pop_front();
      }
      for (size_t i = 0; i < item.futures.size(); ++i) {
        item.done(i, item.futures[i].get());
      }
    }
  }

  net::NetClient* client_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Item> queue_;
  bool closed_ = false;
  std::thread worker_;
};

serve::LoadGenOptions MixOptions(uint32_t num_items, uint32_t num_users,
                                 uint64_t requests, double rate,
                                 uint64_t seed) {
  serve::LoadGenOptions lopt;
  lopt.rate_qps = rate;
  lopt.total_requests = requests;
  lopt.threads = 2;
  lopt.num_items = num_items;
  lopt.mix[0] = kMixLookup;
  lopt.mix[1] = kMixRecommend;
  lopt.mix[2] = kMixClassify;
  lopt.mix[3] = kMixAlign;
  lopt.num_users = num_users;
  lopt.top_k = 3;
  lopt.seed = seed;
  return lopt;
}

struct JsonRow {
  std::string section;
  std::string task;
  uint64_t completed = 0;
  double p50_us = 0.0;
  double p999_us = 0.0;
};

void PrintMixReport(const char* title, const serve::LoadGenReport& report,
                    const char* section, std::vector<JsonRow>* json_rows) {
  TablePrinter table(
      {"task", "completed", "ok", "p50 us", "p99 us", "p999 us"});
  for (uint8_t k = 0; k <= serve::kMaxTaskKind; ++k) {
    if (report.task_completed[k] == 0) continue;
    const Histogram& h = report.task_latency_us[k];
    const char* task =
        serve::TaskKindName(static_cast<serve::TaskKind>(k));
    table.AddRow({task, std::to_string(report.task_completed[k]),
                  std::to_string(report.task_ok[k]),
                  StrFormat("%.1f", h.Percentile(0.5)),
                  StrFormat("%.1f", h.Percentile(0.99)),
                  StrFormat("%.1f", h.Percentile(0.999))});
    json_rows->push_back({section, task, report.task_completed[k],
                          h.Percentile(0.5), h.Percentile(0.999)});
  }
  std::printf("%s: offered %.0f qps, achieved %.0f qps, %s ok\n%s\n", title,
              report.offered_qps, report.achieved_qps,
              WithThousandsSeparators(report.ok).c_str(),
              table.ToString().c_str());
  // The acceptance bar for the subsystem: every request answered kOk —
  // nothing shed at execute, nothing invalid, nothing lost.
  PKGM_CHECK_EQ(report.ok, report.completed);
  for (uint8_t k = 0; k <= serve::kMaxTaskKind; ++k) {
    PKGM_CHECK_GT(report.task_completed[k], 0u)
        << "mix produced no " << serve::TaskKindName(static_cast<serve::TaskKind>(k))
        << " traffic";
  }
}

void Run(uint64_t requests, double rate, const std::string& json_path) {
  bench::PrintHeader("Inference serving: per-task tails at a fixed mix");

  std::printf("building pipeline + downstream models ...\n");
  Stopwatch setup;
  tasks::PretrainedPkgm p = tasks::BuildAndPretrain(InferBenchPipelineOptions());
  infer::InferPipelineOptions iopt;
  iopt.seed = 2121;
  infer::InferBundle bundle = infer::TrainInferModels(p, iopt);
  const uint32_t num_items = p.services->num_items();
  const uint32_t num_users = bundle.num_users;
  infer::InferModelRegistry models;
  models.PublishRecommender(std::move(bundle.recommender), bundle.variant);
  models.PublishClassifier(std::move(bundle.classifier), bundle.variant);
  models.PublishAligner(std::move(bundle.aligner), bundle.variant);
  infer::InferenceEngine engine(&models, p.services.get(),
                                std::move(bundle.titles));
  std::printf("ready in %.1fs: %u items, %u users, %u classes\n",
              setup.ElapsedSeconds(), num_items, num_users,
              bundle.num_classes);
  std::printf("mix: lookup %.0f%% / recommend %.0f%% / classify %.0f%% / "
              "align %.0f%%, %s requests/leg at %.0f qps\n\n",
              100 * kMixLookup, 100 * kMixRecommend, 100 * kMixClassify,
              100 * kMixAlign, WithThousandsSeparators(requests).c_str(),
              rate);

  std::vector<JsonRow> json_rows;

  serve::KnowledgeServerOptions sopt;
  sopt.num_workers = 2;
  serve::KnowledgeServer server(p.services.get(), sopt);
  server.AttachInferExecutor(&engine);
  server.Start();

  // ---- Leg 1: in-process submission.
  {
    serve::AsyncSubmitFn submit =
        [&server](std::vector<serve::ServiceRequest> batch,
                  std::function<void(size_t, serve::ServiceResponse)> done) {
          server.SubmitBatchAsync(std::move(batch), std::move(done));
        };
    const serve::LoadGenReport report = serve::RunLoadGen(
        MixOptions(num_items, num_users, requests, rate, /*seed=*/31), submit);
    PrintMixReport("in-process", report, "in_process", &json_rows);
  }

  // ---- Leg 2: the same mix through the loopback socket, with one weight
  // hot swap per task mid-run (reloading identical weights is enough: the
  // drill is the pointer swap under live inference traffic).
  {
    net::NetServer net(&server);
    Status started = net.Start();
    PKGM_CHECK(started.ok());
    net::NetClientOptions copt;
    copt.num_connections = 2;
    auto client = net::NetClient::Connect("127.0.0.1", net.port(), copt);
    PKGM_CHECK(client.ok());
    FutureDrain drain(client.value().get());
    serve::AsyncSubmitFn submit =
        [&drain](std::vector<serve::ServiceRequest> batch,
                 std::function<void(size_t, serve::ServiceResponse)> done) {
          drain.Submit(std::move(batch), std::move(done));
        };

    std::thread swapper([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      infer::InferPipelineOptions swap_opt;
      swap_opt.seed = 2121;
      infer::InferBundle fresh = infer::TrainInferModels(p, swap_opt);
      models.PublishRecommender(std::move(fresh.recommender), fresh.variant);
      models.PublishClassifier(std::move(fresh.classifier), fresh.variant);
      models.PublishAligner(std::move(fresh.aligner), fresh.variant);
    });
    const serve::LoadGenReport report = serve::RunLoadGen(
        MixOptions(num_items, num_users, requests, rate, /*seed=*/37), submit);
    swapper.join();
    PrintMixReport("loopback socket (+hot swap)", report, "loopback",
                   &json_rows);

    const uint64_t protocol_errors = net.net_counters().protocol_errors;
    client.value().reset();
    net.Stop();
    PKGM_CHECK_EQ(protocol_errors, 0u);
    PKGM_CHECK_GE(models.recommender()->generation, 2u);
  }

  const uint64_t exec_rejected = server.stats().exec_rejected();
  server.Stop();
  PKGM_CHECK_EQ(exec_rejected, 0u);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    PKGM_CHECK(f != nullptr);
    std::fprintf(f,
                 "{\"requests_per_leg\":%llu,\"rate_qps\":%.0f,"
                 "\"mix\":{\"lookup\":%.2f,\"recommend\":%.2f,"
                 "\"classify\":%.2f,\"align\":%.2f},\"rows\":[",
                 static_cast<unsigned long long>(requests), rate, kMixLookup,
                 kMixRecommend, kMixClassify, kMixAlign);
    for (size_t i = 0; i < json_rows.size(); ++i) {
      const JsonRow& row = json_rows[i];
      std::fprintf(f,
                   "%s{\"section\":\"%s\",\"task\":\"%s\","
                   "\"completed\":%llu,\"p50_us\":%.2f,\"p999_us\":%.2f}",
                   i == 0 ? "" : ",", row.section.c_str(), row.task.c_str(),
                   static_cast<unsigned long long>(row.completed), row.p50_us,
                   row.p999_us);
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("json artifact written to %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace pkgm

int main(int argc, char** argv) {
  uint64_t requests = 20000;
  double rate = 4000.0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      requests = 3000;
      rate = 1500.0;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_infer_serving [--smoke] [--json PATH]\n");
      return 2;
    }
  }
  pkgm::Run(requests, rate, json_path);
  return 0;
}
