// Online-serving throughput study for the serving subsystem (src/serve/):
// how much does request batching amortize queue/wake-up overhead, and how
// much does the sharded condensed-vector cache buy on Zipf-skewed traffic,
// relative to computing every request on the caller's thread?

#include <cstdio>
#include <future>
#include <vector>

#include "bench/bench_common.h"
#include "serve/knowledge_server.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace pkgm {
namespace {

constexpr uint32_t kRequests = 30000;
constexpr double kZipfSkew = 1.1;

/// Runs `kRequests` condensed kAll requests through `server` in batches of
/// `batch_size`; returns requests/second (closed loop, one client).
double DriveServer(serve::KnowledgeServer* server, uint32_t num_items,
                   uint32_t batch_size, uint64_t seed) {
  ZipfSampler zipf(num_items, kZipfSkew);
  Rng rng(seed);
  Stopwatch sw;
  uint32_t sent = 0;
  uint64_t sink = 0;
  while (sent < kRequests) {
    const uint32_t n = std::min(batch_size, kRequests - sent);
    std::vector<serve::ServiceRequest> batch(n);
    for (auto& request : batch) {
      request.item = static_cast<uint32_t>(zipf.Sample(&rng));
      request.mode = core::ServiceMode::kAll;
      request.form = serve::ServiceForm::kCondensed;
    }
    auto futures = server->SubmitBatch(std::move(batch));
    for (auto& future : futures) sink += future.get().vectors.size();
    sent += n;
  }
  const double seconds = sw.ElapsedSeconds();
  PKGM_CHECK_EQ(sink, kRequests);  // every request answered with one vector
  return kRequests / seconds;
}

void Run() {
  bench::PrintHeader("Serving throughput: batching and the service-vector cache");

  tasks::PipelineOptions opt = bench::BenchPipelineOptions();
  opt.pretrain_epochs = 5;  // serving throughput does not depend on quality
  std::printf("building pipeline (short pre-train; throughput only) ...\n");
  tasks::PretrainedPkgm p = tasks::BuildAndPretrain(opt);
  const uint32_t num_items = p.services->num_items();
  std::printf("%u items, condensed dim %u, zipf %.2f, %s requests/config\n\n",
              num_items, p.services->CondensedDim(core::ServiceMode::kAll),
              kZipfSkew, WithThousandsSeparators(kRequests).c_str());

  // Baseline: single-item, uncached, computed on the caller's thread — the
  // pre-PR serving story (ServiceVectorProvider called in-process).
  double direct_rps = 0.0;
  {
    ZipfSampler zipf(num_items, kZipfSkew);
    Rng rng(7);
    Stopwatch sw;
    uint64_t sink = 0;
    for (uint32_t i = 0; i < kRequests; ++i) {
      const uint32_t item = static_cast<uint32_t>(zipf.Sample(&rng));
      sink += p.services->Condensed(item, core::ServiceMode::kAll).size();
    }
    direct_rps = kRequests / sw.ElapsedSeconds();
    (void)sink;
  }

  struct Config {
    const char* name;
    bool cache;
    uint32_t batch;
  };
  const Config configs[] = {
      {"server, uncached, batch=1", false, 1},
      {"server, uncached, batch=32", false, 32},
      {"server, cached, batch=1", true, 1},
      {"server, cached, batch=32", true, 32},
  };

  TablePrinter table(
      {"config", "requests/s", "vs direct", "cache hit rate"});
  table.AddRow({"direct provider call (single item, uncached)",
                StrFormat("%.0f", direct_rps), "1.00x", "-"});
  double cached_batched_rps = 0.0;
  for (const Config& config : configs) {
    serve::KnowledgeServerOptions sopt;
    sopt.num_workers = 2;
    sopt.enable_cache = config.cache;
    serve::KnowledgeServer server(p.services.get(), sopt);
    server.Start();
    if (config.cache) {
      // Warm pass so the steady-state (not cold-start) regime is measured.
      DriveServer(&server, num_items, config.batch, /*seed=*/11);
    }
    const double rps = DriveServer(&server, num_items, config.batch,
                                   /*seed=*/13);
    std::string hit_rate = "-";
    if (config.cache) {
      hit_rate = StrFormat("%.1f%%", 100.0 * server.cache()->Stats().HitRate());
      if (config.batch == 32) cached_batched_rps = rps;
    }
    server.Stop();
    table.AddRow({config.name, StrFormat("%.0f", rps),
                  StrFormat("%.2fx", rps / direct_rps), hit_rate});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf(
      "batching amortizes the queue handoff; the cache converts the Zipf\n"
      "head into O(dim) copies instead of O(k·dim^2) transfer-matrix math.\n"
      "cached+batched vs direct uncached: %.2fx\n",
      cached_batched_rps / direct_rps);
}

}  // namespace
}  // namespace pkgm

int main() {
  pkgm::Run();
  return 0;
}
