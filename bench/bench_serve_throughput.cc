// Online-serving throughput study for the serving subsystem (src/serve/):
// how much does request batching amortize queue/wake-up overhead, how much
// does the sharded condensed-vector cache buy on Zipf-skewed traffic, and
// what does the TCP front end (src/net/) cost over loopback relative to
// in-process submission?
//
//   bench_serve_throughput [--smoke] [--json PATH]
//
//   --smoke shrinks the request volume for CI; --json writes the measured
//   numbers as a machine-readable artifact.

#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "serve/knowledge_server.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace pkgm {
namespace {

constexpr double kZipfSkew = 1.1;

struct DriveResult {
  double rps = 0.0;
  Histogram latency_us;  // client-observed per-request latency
};

/// Runs `requests` condensed kAll requests through `submit` in batches of
/// `batch_size` (closed loop, one client); measures throughput and the
/// client-side latency of every request.
template <typename SubmitFn>
DriveResult Drive(SubmitFn&& submit, uint32_t num_items, uint32_t batch_size,
                  uint64_t seed, uint32_t requests) {
  ZipfSampler zipf(num_items, kZipfSkew);
  Rng rng(seed);
  DriveResult result;
  Stopwatch sw;
  uint32_t sent = 0;
  uint64_t sink = 0;
  while (sent < requests) {
    const uint32_t n = std::min(batch_size, requests - sent);
    std::vector<serve::ServiceRequest> batch(n);
    for (auto& request : batch) {
      request.item = static_cast<uint32_t>(zipf.Sample(&rng));
      request.mode = core::ServiceMode::kAll;
      request.form = serve::ServiceForm::kCondensed;
    }
    const auto submit_time = serve::ServeClock::now();
    auto futures = submit(std::move(batch));
    for (auto& future : futures) {
      sink += future.get().vectors.size();
      result.latency_us.Record(std::chrono::duration<double, std::micro>(
                                   serve::ServeClock::now() - submit_time)
                                   .count());
    }
    sent += n;
  }
  result.rps = requests / sw.ElapsedSeconds();
  PKGM_CHECK_EQ(sink, requests);  // every request answered with one vector
  return result;
}

struct JsonRow {
  std::string section;
  std::string config;
  double rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

void Run(uint32_t requests, const std::string& json_path) {
  bench::PrintHeader("Serving throughput: batching, cache, and the TCP front end");

  tasks::PipelineOptions opt = bench::BenchPipelineOptions();
  opt.pretrain_epochs = 5;  // serving throughput does not depend on quality
  std::printf("building pipeline (short pre-train; throughput only) ...\n");
  tasks::PretrainedPkgm p = tasks::BuildAndPretrain(opt);
  const uint32_t num_items = p.services->num_items();
  std::printf("%u items, condensed dim %u, zipf %.2f, %s requests/config\n\n",
              num_items, p.services->CondensedDim(core::ServiceMode::kAll),
              kZipfSkew, WithThousandsSeparators(requests).c_str());

  std::vector<JsonRow> json_rows;

  // Baseline: single-item, uncached, computed on the caller's thread — the
  // pre-serving-PR story (ServiceVectorProvider called in-process).
  double direct_rps = 0.0;
  {
    ZipfSampler zipf(num_items, kZipfSkew);
    Rng rng(7);
    Stopwatch sw;
    uint64_t sink = 0;
    for (uint32_t i = 0; i < requests; ++i) {
      const uint32_t item = static_cast<uint32_t>(zipf.Sample(&rng));
      sink += p.services->Condensed(item, core::ServiceMode::kAll).size();
    }
    direct_rps = requests / sw.ElapsedSeconds();
    (void)sink;
  }
  json_rows.push_back({"direct", "provider call", direct_rps, 0.0, 0.0});

  struct Config {
    const char* name;
    bool cache;
    uint32_t batch;
  };
  const Config configs[] = {
      {"server, uncached, batch=1", false, 1},
      {"server, uncached, batch=32", false, 32},
      {"server, cached, batch=1", true, 1},
      {"server, cached, batch=32", true, 32},
  };

  TablePrinter table(
      {"config", "requests/s", "vs direct", "cache hit rate"});
  table.AddRow({"direct provider call (single item, uncached)",
                StrFormat("%.0f", direct_rps), "1.00x", "-"});
  double cached_batched_rps = 0.0;
  for (const Config& config : configs) {
    serve::KnowledgeServerOptions sopt;
    sopt.num_workers = 2;
    sopt.enable_cache = config.cache;
    serve::KnowledgeServer server(p.services.get(), sopt);
    server.Start();
    auto submit = [&server](std::vector<serve::ServiceRequest> batch) {
      return server.SubmitBatch(std::move(batch));
    };
    if (config.cache) {
      // Warm pass so the steady-state (not cold-start) regime is measured.
      Drive(submit, num_items, config.batch, /*seed=*/11, requests);
    }
    const DriveResult r =
        Drive(submit, num_items, config.batch, /*seed=*/13, requests);
    std::string hit_rate = "-";
    if (config.cache) {
      hit_rate = StrFormat("%.1f%%", 100.0 * server.cache()->Stats().HitRate());
      if (config.batch == 32) cached_batched_rps = r.rps;
    }
    server.Stop();
    table.AddRow({config.name, StrFormat("%.0f", r.rps),
                  StrFormat("%.2fx", r.rps / direct_rps), hit_rate});
    json_rows.push_back({"in_process", config.name, r.rps,
                         r.latency_us.Percentile(0.5),
                         r.latency_us.Percentile(0.99)});
  }
  std::printf("%s\n", table.ToString().c_str());

  // ---- Loopback socket section: the same closed loop through NetServer +
  // NetClient, so the delta against in-process submission is exactly the
  // wire protocol + epoll round trip.
  {
    serve::KnowledgeServerOptions sopt;
    sopt.num_workers = 2;
    sopt.enable_cache = true;
    serve::KnowledgeServer server(p.services.get(), sopt);
    server.Start();
    net::NetServer net(&server);
    Status started = net.Start();
    PKGM_CHECK(started.ok());
    net::NetClientOptions copt;
    copt.num_connections = 1;
    auto client = net::NetClient::Connect("127.0.0.1", net.port(), copt);
    PKGM_CHECK(client.ok());

    TablePrinter socket_table({"config", "requests/s", "p50 us", "p99 us",
                               "vs in-process"});
    for (uint32_t batch : {1u, 32u}) {
      auto in_process = [&server](std::vector<serve::ServiceRequest> b) {
        return server.SubmitBatch(std::move(b));
      };
      auto over_socket = [&client](std::vector<serve::ServiceRequest> b) {
        return client.value()->SubmitBatch(std::move(b));
      };
      Drive(in_process, num_items, batch, /*seed=*/11, requests);  // warm
      const DriveResult local =
          Drive(in_process, num_items, batch, /*seed=*/13, requests);
      const DriveResult remote =
          Drive(over_socket, num_items, batch, /*seed=*/13, requests);

      socket_table.AddRow({StrFormat("in-process, cached, batch=%u", batch),
                           StrFormat("%.0f", local.rps),
                           StrFormat("%.1f", local.latency_us.Percentile(0.5)),
                           StrFormat("%.1f", local.latency_us.Percentile(0.99)),
                           "1.00x"});
      socket_table.AddRow({StrFormat("loopback socket, cached, batch=%u",
                                     batch),
                           StrFormat("%.0f", remote.rps),
                           StrFormat("%.1f", remote.latency_us.Percentile(0.5)),
                           StrFormat("%.1f", remote.latency_us.Percentile(0.99)),
                           StrFormat("%.2fx", remote.rps / local.rps)});
      json_rows.push_back({"in_process_ref",
                           StrFormat("cached, batch=%u", batch), local.rps,
                           local.latency_us.Percentile(0.5),
                           local.latency_us.Percentile(0.99)});
      json_rows.push_back({"loopback", StrFormat("cached, batch=%u", batch),
                           remote.rps, remote.latency_us.Percentile(0.5),
                           remote.latency_us.Percentile(0.99)});
    }
    const uint64_t protocol_errors = net.net_counters().protocol_errors;
    client.value().reset();
    net.Stop();
    server.Stop();
    PKGM_CHECK_EQ(protocol_errors, 0u);  // a clean run is part of the bench
    std::printf("loopback socket vs in-process (same server, same loop):\n%s\n",
                socket_table.ToString().c_str());
  }

  std::printf(
      "batching amortizes the queue handoff; the cache converts the Zipf\n"
      "head into O(dim) copies instead of O(k·dim^2) transfer-matrix math.\n"
      "cached+batched vs direct uncached: %.2fx\n",
      cached_batched_rps / direct_rps);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    PKGM_CHECK(f != nullptr);
    std::fprintf(f, "{\"requests_per_config\":%u,\"rows\":[", requests);
    for (size_t i = 0; i < json_rows.size(); ++i) {
      const JsonRow& row = json_rows[i];
      std::fprintf(f,
                   "%s{\"section\":\"%s\",\"config\":\"%s\",\"rps\":%.1f,"
                   "\"p50_us\":%.2f,\"p99_us\":%.2f}",
                   i == 0 ? "" : ",", row.section.c_str(), row.config.c_str(),
                   row.rps, row.p50_us, row.p99_us);
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("json artifact written to %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace pkgm

int main(int argc, char** argv) {
  uint32_t requests = 30000;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      requests = 6000;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_serve_throughput [--smoke] "
                           "[--json PATH]\n");
      return 2;
    }
  }
  pkgm::Run(requests, json_path);
  return 0;
}
