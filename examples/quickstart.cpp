// Quickstart: build a toy product KG by hand, pre-train PKGM on it, and use
// the two vector-space query services — including completing a fact that
// was never written into the graph.
//
//   $ ./quickstart
//
// Walks through the full §II pipeline on a graph small enough to print.

#include <cstdio>
#include <vector>

#include "core/pkgm_model.h"
#include "core/service.h"
#include "core/trainer.h"
#include "kg/triple_store.h"
#include "kg/vocab.h"
#include "tensor/ops.h"

using pkgm::kg::EntityId;
using pkgm::kg::RelationId;

int main() {
  // ---- 1. A toy product KG ------------------------------------------------
  // Three phones; phone_c's brand is *missing* from the KG (the seller
  // didn't fill it), but its other attributes match phone_a's.
  pkgm::kg::Vocab entities, relations;
  const EntityId phone_a = entities.GetOrAdd("phone_a");
  const EntityId phone_b = entities.GetOrAdd("phone_b");
  const EntityId phone_c = entities.GetOrAdd("phone_c");
  const EntityId apple = entities.GetOrAdd("Apple");
  const EntityId banana = entities.GetOrAdd("Banana");
  const EntityId gb256 = entities.GetOrAdd("256GB");
  const EntityId gb64 = entities.GetOrAdd("64GB");
  const EntityId green = entities.GetOrAdd("Green");
  const RelationId brand = relations.GetOrAdd("brandIs");
  const RelationId memory = relations.GetOrAdd("memoryIs");
  const RelationId color = relations.GetOrAdd("colorIs");

  pkgm::kg::TripleStore kg;
  kg.Add(phone_a, brand, apple);
  kg.Add(phone_a, memory, gb256);
  kg.Add(phone_a, color, green);
  kg.Add(phone_b, brand, banana);
  kg.Add(phone_b, memory, gb64);
  kg.Add(phone_b, color, green);
  kg.Add(phone_c, memory, gb256);  // same specs as phone_a ...
  kg.Add(phone_c, color, green);   // ... but brandIs is missing.
  // A few more phones so "phones have brands" is a learnable pattern.
  std::vector<EntityId> more_phones;
  for (int i = 0; i < 8; ++i) {
    EntityId e = entities.GetOrAdd("phone_x" + std::to_string(i));
    more_phones.push_back(e);
    kg.Add(e, brand, i % 2 == 0 ? apple : banana);
    kg.Add(e, memory, i % 3 == 0 ? gb256 : gb64);
    kg.Add(e, color, green);
  }
  std::printf("toy KG: %zu triples, %u entities, %u relations\n", kg.size(),
              entities.size(), relations.size());

  // ---- 2. Pre-train PKGM ---------------------------------------------------
  pkgm::core::PkgmModelOptions model_opt;
  model_opt.num_entities = entities.size();
  model_opt.num_relations = relations.size();
  model_opt.dim = 16;
  pkgm::core::PkgmModel model(model_opt);

  pkgm::core::TrainerOptions train_opt;
  train_opt.learning_rate = 0.05f;
  train_opt.margin = 2.0f;
  train_opt.batch_size = 8;
  train_opt.negative.relation_corruption_prob = 0.35;
  pkgm::core::Trainer trainer(&model, &kg, train_opt);
  pkgm::core::EpochStats stats = trainer.Train(400);
  std::printf("pre-trained 400 epochs: mean hinge %.4f\n", stats.mean_hinge);

  // ---- 3. Triple query service: S_T(h, r) = h + r --------------------------
  // "What is phone_a's brand?" — answered in vector space by finding the
  // entity nearest to S_T, without touching the triple store.
  auto nearest_entity = [&](const std::vector<float>& query,
                            const std::vector<EntityId>& candidates) {
    EntityId best = candidates[0];
    float best_dist = 1e30f;
    for (EntityId e : candidates) {
      const float d =
          [&] {
            float acc = 0;
            for (uint32_t j = 0; j < model.dim(); ++j) {
              acc += std::abs(query[j] - model.entity(e)[j]);
            }
            return acc;
          }();
      if (d < best_dist) {
        best_dist = d;
        best = e;
      }
    }
    return best;
  };

  const std::vector<EntityId> brands = {apple, banana};
  std::vector<float> s(model.dim());
  model.TripleService(phone_a, brand, s.data());
  std::printf("\ntriple query  (phone_a, brandIs, ?) -> %s\n",
              entities.Name(nearest_entity(s, brands)).c_str());

  // ---- 4. Completion: the missing fact ------------------------------------
  // (phone_c, brandIs, ?) has NO answer in the KG, but S_T still produces a
  // predicted tail — phone_c's embedding sits near phone_a's because they
  // share memory and color, so the completed brand is Apple.
  model.TripleService(phone_c, brand, s.data());
  std::printf("completion    (phone_c, brandIs, ?) -> %s   "
              "(not in the KG!)\n",
              entities.Name(nearest_entity(s, brands)).c_str());

  // ---- 5. Relation query service: S_R(h, r) = M_r h - r --------------------
  // Smaller ||S_R|| means "h has (or should have) relation r"; entities
  // that are only attribute *values* (Apple, Green, ...) never head a
  // brandIs triple, so their scores come out clearly larger than items'.
  std::printf("\nrelation query ||S_R(h, brandIs)||:\n");
  for (EntityId h : {phone_a, phone_b, phone_c, apple, green, gb64}) {
    std::printf("  %-8s %7.3f%s\n", entities.Name(h).c_str(),
                model.RelationScore(h, brand),
                h == phone_c ? "   <- should have brandIs (missing in KG)"
                             : "");
  }

  // ---- 6. Service vectors for a downstream model ---------------------------
  pkgm::core::ServiceVectorProvider services(
      &model, {phone_a, phone_b, phone_c},
      {{brand, memory, color}, {brand, memory, color}, {brand, memory, color}});
  pkgm::Vec condensed = services.Condensed(2, pkgm::core::ServiceMode::kAll);
  std::printf(
      "\ncondensed service vector for phone_c (Eq. 20): %zu floats, ready to\n"
      "concatenate into any embedding-based downstream model.\n",
      condensed.size());
  return 0;
}
