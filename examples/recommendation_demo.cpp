// Item recommendation demo (paper §III-D) at small scale: NCF trained on a
// synthetic implicit-feedback log, with and without PKGM's condensed
// service vector in the MLP tower (Eq. 20-21).
//
//   $ ./recommendation_demo

#include <cstdio>

#include "data/interaction_dataset.h"
#include "tasks/pipeline.h"
#include "tasks/recommendation.h"
#include "util/stopwatch.h"

int main() {
  using namespace pkgm;

  tasks::PipelineOptions opt;
  opt.pkg.seed = 321;
  opt.pkg.num_categories = 8;
  opt.pkg.items_per_category = 120;
  opt.pkg.properties_per_category = 8;
  opt.pkg.values_per_property = 20;
  opt.pkg.products_per_category = 20;
  opt.pkg.etl_min_occurrence = 5;
  opt.dim = 32;
  opt.trainer.learning_rate = 0.05f;
  opt.pretrain_epochs = 30;
  opt.service_k = 6;

  std::printf("1) pre-training PKGM on a synthetic product KG ...\n");
  Stopwatch sw;
  tasks::PretrainedPkgm pipeline = tasks::BuildAndPretrain(opt);
  std::printf("   done in %.1fs\n", sw.ElapsedSeconds());

  std::printf("2) sampling a user-item interaction log ...\n");
  data::InteractionDatasetOptions data_opt;
  data_opt.num_users = 400;
  data_opt.preference_strength = 5.0;
  data_opt.popularity_weight = 6.0;
  data::InteractionDataset ds =
      BuildInteractionDataset(pipeline.pkg, data_opt);
  std::printf("   %u users x %u items, %llu interactions (>= 10 per user)\n",
              ds.num_users, ds.num_items,
              static_cast<unsigned long long>(ds.total_interactions));

  std::printf("3) training NCF, leave-one-out evaluation vs 100 negatives\n");
  tasks::RecommendationOptions task_opt;
  task_opt.epochs = 20;
  tasks::RecommendationTask task(&ds, pipeline.services.get(), task_opt);

  for (tasks::PkgmVariant v :
       {tasks::PkgmVariant::kBase, tasks::PkgmVariant::kPkgmR,
        tasks::PkgmVariant::kPkgmAll}) {
    sw.Reset();
    tasks::RecommendationMetrics m = task.Run(v);
    std::printf("   %-13s  HR@10 %.3f  NDCG@10 %.4f  HR@30 %.3f   (%.1fs)\n",
                tasks::VariantName(v, "NCF").c_str(), m.hr[10], m.ndcg[10],
                m.hr[30], sw.ElapsedSeconds());
  }
  std::printf("\nthe PKGM feature injects item knowledge the interaction\n"
              "matrix alone cannot express (paper: PKGM-R helps most).\n");
  return 0;
}
