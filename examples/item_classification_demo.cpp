// End-to-end item classification demo (paper §III-B) at small scale:
// generates a synthetic product KG, pre-trains PKGM, builds a title
// classification dataset, and fine-tunes TinyBert with and without PKGM
// service vectors.
//
//   $ ./item_classification_demo

#include <cstdio>

#include "data/classification_dataset.h"
#include "tasks/item_classification.h"
#include "tasks/pipeline.h"
#include "text/title_generator.h"
#include "util/stopwatch.h"

int main() {
  using namespace pkgm;

  tasks::PipelineOptions opt;
  opt.pkg.seed = 123;
  opt.pkg.num_categories = 8;
  opt.pkg.items_per_category = 120;
  opt.pkg.properties_per_category = 8;
  opt.pkg.values_per_property = 20;
  opt.pkg.products_per_category = 20;
  opt.pkg.etl_min_occurrence = 5;
  opt.dim = 32;
  opt.trainer.learning_rate = 0.05f;
  opt.pretrain_epochs = 30;
  opt.service_k = 6;

  std::printf("1) generating synthetic product KG and pre-training PKGM ...\n");
  Stopwatch sw;
  tasks::PretrainedPkgm pipeline = tasks::BuildAndPretrain(opt);
  std::printf("   %zu items, %zu observed triples, pre-trained in %.1fs\n",
              pipeline.pkg.items.size(), pipeline.pkg.observed.size(),
              sw.ElapsedSeconds());

  std::printf("2) building the title classification dataset ...\n");
  text::TitleGenerator titles(&pipeline.pkg, text::TitleGeneratorOptions{});
  data::ClassificationDatasetOptions data_opt;
  data_opt.max_per_category = 80;
  data::ClassificationDataset ds =
      BuildClassificationDataset(pipeline.pkg, titles, data_opt);
  std::printf("   %zu train / %zu test / %zu dev over %u categories\n",
              ds.train.size(), ds.test.size(), ds.dev.size(), ds.num_classes);
  std::printf("   example title: \"%s\" -> category %u\n",
              ds.train[0].title.c_str(), ds.train[0].label);

  std::printf("3) fine-tuning TinyBert (base, then +PKGM-all) ...\n");
  tasks::ItemClassificationOptions task_opt;
  task_opt.max_len = 32;
  task_opt.bert_layers = 2;
  task_opt.bert_heads = 4;
  task_opt.epochs = 3;
  task_opt.mlm_pretrain_epochs = 2;
  tasks::ItemClassificationTask task(&ds, pipeline.services.get(), task_opt);

  for (tasks::PkgmVariant v :
       {tasks::PkgmVariant::kBase, tasks::PkgmVariant::kPkgmAll}) {
    sw.Reset();
    tasks::ClassificationMetrics m = task.Run(v);
    std::printf("   %-14s  Hit@1 %.3f  Hit@3 %.3f  AC %.3f   (%.1fs)\n",
                tasks::VariantName(v, "BERT").c_str(), m.hits[1], m.hits[3],
                m.accuracy, sw.ElapsedSeconds());
  }
  std::printf("\nknowledge from the KG reaches the classifier only as fixed\n"
              "service vectors - no triples were handed to the model.\n");
  return 0;
}
