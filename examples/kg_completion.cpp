// KG completion walkthrough (paper §II-D1): pre-train PKGM on a synthetic
// product KG with deliberately unfilled attributes, then rank the held-out
// tails with the filtered protocol and break results down per relation.
//
//   $ ./kg_completion

#include <cstdio>
#include <map>

#include "core/link_prediction.h"
#include "tasks/pipeline.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace pkgm;

  tasks::PipelineOptions opt;
  opt.pkg.seed = 777;
  opt.pkg.num_categories = 10;
  opt.pkg.items_per_category = 150;
  opt.pkg.properties_per_category = 8;
  opt.pkg.values_per_property = 25;
  opt.pkg.products_per_category = 25;
  opt.pkg.observed_fill_rate = 0.7;  // 30% of true facts are unfilled
  opt.pkg.etl_min_occurrence = 5;
  opt.dim = 32;
  opt.trainer.learning_rate = 0.05f;
  opt.pretrain_epochs = 40;
  opt.service_k = 6;

  std::printf("pre-training PKGM; %d%% of ground-truth attributes were left\n"
              "unfilled and are the completion targets ...\n",
              static_cast<int>((1 - opt.pkg.observed_fill_rate) * 100));
  tasks::PretrainedPkgm p = tasks::BuildAndPretrain(opt);
  const kg::SyntheticPkg& pkg = p.pkg;
  std::printf("observed %zu triples; held-out %zu\n", pkg.observed.size(),
              pkg.held_out.size());

  core::LinkPredictionEvaluator::Options eval_opt;
  eval_opt.filtered = true;
  core::LinkPredictionEvaluator eval(p.model.get(), &pkg.observed, eval_opt);

  // Overall completion quality against each property's value universe.
  std::vector<kg::Triple> test(
      pkg.held_out.begin(),
      pkg.held_out.begin() + std::min<size_t>(pkg.held_out.size(), 1500));
  auto overall = eval.EvaluateTails(test, &pkg.property_values);
  std::printf(
      "\noverall: MRR %.4f | Hits@1 %.4f | Hits@3 %.4f | Hits@10 %.4f | "
      "mean rank %.2f (candidates: %u values per property)\n",
      overall.mrr, overall.hits[1], overall.hits[3], overall.hits[10],
      overall.mean_rank, opt.pkg.values_per_property);

  // Per-relation breakdown: identity properties (shared within a product)
  // complete far better than per-item sampled ones, because sibling items
  // reveal the missing value.
  std::map<kg::RelationId, std::vector<kg::Triple>> by_relation;
  for (const kg::Triple& t : test) by_relation[t.relation].push_back(t);

  TablePrinter table({"relation", "# queries", "MRR", "Hits@1", "Hits@10"});
  int shown = 0;
  for (const auto& [r, triples] : by_relation) {
    if (triples.size() < 20 || ++shown > 12) continue;
    auto res = eval.EvaluateTails(triples, &pkg.property_values);
    table.AddRow({pkg.relations.Name(r),
                  WithThousandsSeparators(triples.size()),
                  StrFormat("%.3f", res.mrr), StrFormat("%.3f", res.hits[1]),
                  StrFormat("%.3f", res.hits[10])});
  }
  std::printf("\nper-relation breakdown (first 12 relations with >= 20 "
              "queries):\n%s", table.ToString().c_str());

  std::printf(
      "\na symbolic triple store answers 0%% of these queries - every test\n"
      "fact is missing from the KG. S_T(h,r) = h + r answers all of them.\n");
  return 0;
}
