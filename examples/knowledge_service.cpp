// The "knowledge service" the paper deploys (§II-D): downstream consumers
// ask about items and get answers either as triples (symbolic engine) or as
// vectors (PKGM services). This demo runs a scripted comparison of the two
// paths for a handful of items, then optionally drops into an interactive
// loop:
//
//   $ ./knowledge_service              # scripted demo
//   $ ./knowledge_service --interactive
//
// Interactive commands:
//   item <index>     show both service paths for an item
//   save <path>      checkpoint the pre-trained model
//   quit

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "core/link_prediction.h"
#include "kg/query_engine.h"
#include "tasks/pipeline.h"
#include "tensor/ops.h"
#include "util/string_util.h"

namespace {

using namespace pkgm;

/// Resolves S_T(h, r) to the nearest entity within the property's value
/// universe — the vector path's answer to the triple query.
kg::EntityId ResolveTail(const tasks::PretrainedPkgm& p, kg::EntityId h,
                         kg::RelationId r) {
  const auto it = p.pkg.property_values.find(r);
  if (it == p.pkg.property_values.end()) return kg::kInvalidId;
  std::vector<float> q(p.model->dim());
  p.model->TripleService(h, r, q.data());
  kg::EntityId best = kg::kInvalidId;
  float best_dist = 1e30f;
  for (kg::EntityId e : it->second) {
    float d = 0;
    const float* emb = p.model->entity(e);
    for (uint32_t j = 0; j < p.model->dim(); ++j) {
      d += std::abs(q[j] - emb[j]);
    }
    if (d < best_dist) {
      best_dist = d;
      best = e;
    }
  }
  return best;
}

void ShowItem(const tasks::PretrainedPkgm& p, kg::QueryEngine* engine,
              uint32_t item_index) {
  const kg::SyntheticPkg& pkg = p.pkg;
  if (item_index >= pkg.items.size()) {
    std::printf("no such item (have %zu)\n", pkg.items.size());
    return;
  }
  const kg::ItemInfo& item = pkg.items[item_index];
  std::printf("\n--- item %u (%s), category %s ---\n", item_index,
              pkg.entities.Name(item.entity).c_str(),
              pkg.category_names[item.category].c_str());

  std::printf("%-22s | %-22s | %-22s | %s\n", "key relation",
              "symbolic (h r ?t)", "vector S_T nearest", "||S_R||");
  for (kg::RelationId r : p.services->key_relations(item_index)) {
    // Symbolic path: only what the seller filled.
    const auto& tails = engine->TripleQuery(item.entity, r);
    std::string symbolic =
        tails.empty() ? "(no triple!)" : pkg.entities.Name(tails[0]);
    // Vector path: always answers; completes unfilled slots.
    kg::EntityId predicted = ResolveTail(p, item.entity, r);
    std::string vector_answer = predicted == kg::kInvalidId
                                    ? "-"
                                    : pkg.entities.Name(predicted);
    const float rel_score = p.model->RelationScore(item.entity, r);
    std::printf("%-22s | %-22s | %-22s | %.3f\n",
                pkg.relations.Name(r).c_str(), symbolic.c_str(),
                vector_answer.c_str(), rel_score);
  }
  std::printf("(||S_R|| ~ 0 means \"has or should have the relation\")\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool interactive = argc > 1 && std::strcmp(argv[1], "--interactive") == 0;

  tasks::PipelineOptions opt;
  opt.pkg.seed = 99;
  opt.pkg.num_categories = 6;
  opt.pkg.items_per_category = 100;
  opt.pkg.properties_per_category = 8;
  opt.pkg.values_per_property = 15;
  opt.pkg.products_per_category = 15;
  opt.pkg.observed_fill_rate = 0.7;
  opt.pkg.etl_min_occurrence = 5;
  opt.dim = 32;
  opt.trainer.learning_rate = 0.05f;
  opt.pretrain_epochs = 40;
  opt.service_k = 5;

  std::printf("pre-training PKGM knowledge service ...\n");
  tasks::PretrainedPkgm p = tasks::BuildAndPretrain(opt);
  kg::QueryEngine engine(&p.pkg.observed);
  std::printf("ready: %zu items, %zu observed triples (30%% of true facts "
              "unfilled)\n", p.pkg.items.size(), p.pkg.observed.size());

  if (!interactive) {
    for (uint32_t i : {0u, 7u, 42u}) ShowItem(p, &engine, i);
    std::printf("\nrun with --interactive to explore further items.\n");
    return 0;
  }

  std::string line;
  std::printf("\n> ");
  while (std::getline(std::cin, line)) {
    std::istringstream iss(line);
    std::string cmd;
    iss >> cmd;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "item") {
      uint32_t idx = 0;
      iss >> idx;
      ShowItem(p, &engine, idx);
    } else if (cmd == "save") {
      std::string path;
      iss >> path;
      Status s = p.model->SaveToFile(path);
      std::printf("%s\n", s.ToString().c_str());
    } else if (!cmd.empty()) {
      std::printf("commands: item <index> | save <path> | quit\n");
    }
    std::printf("> ");
  }
  return 0;
}
