# Empty compiler generated dependencies file for pkgm_tensor.
# This may be replaced when dependencies are built.
