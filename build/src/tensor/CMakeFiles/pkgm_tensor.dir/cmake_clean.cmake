file(REMOVE_RECURSE
  "CMakeFiles/pkgm_tensor.dir/init.cc.o"
  "CMakeFiles/pkgm_tensor.dir/init.cc.o.d"
  "CMakeFiles/pkgm_tensor.dir/ops.cc.o"
  "CMakeFiles/pkgm_tensor.dir/ops.cc.o.d"
  "libpkgm_tensor.a"
  "libpkgm_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkgm_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
