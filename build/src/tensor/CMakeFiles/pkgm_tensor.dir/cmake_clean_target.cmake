file(REMOVE_RECURSE
  "libpkgm_tensor.a"
)
