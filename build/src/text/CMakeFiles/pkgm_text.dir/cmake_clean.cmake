file(REMOVE_RECURSE
  "CMakeFiles/pkgm_text.dir/mlm.cc.o"
  "CMakeFiles/pkgm_text.dir/mlm.cc.o.d"
  "CMakeFiles/pkgm_text.dir/tiny_bert.cc.o"
  "CMakeFiles/pkgm_text.dir/tiny_bert.cc.o.d"
  "CMakeFiles/pkgm_text.dir/title_generator.cc.o"
  "CMakeFiles/pkgm_text.dir/title_generator.cc.o.d"
  "CMakeFiles/pkgm_text.dir/tokenizer.cc.o"
  "CMakeFiles/pkgm_text.dir/tokenizer.cc.o.d"
  "libpkgm_text.a"
  "libpkgm_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkgm_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
