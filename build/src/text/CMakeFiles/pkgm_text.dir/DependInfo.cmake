
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/mlm.cc" "src/text/CMakeFiles/pkgm_text.dir/mlm.cc.o" "gcc" "src/text/CMakeFiles/pkgm_text.dir/mlm.cc.o.d"
  "/root/repo/src/text/tiny_bert.cc" "src/text/CMakeFiles/pkgm_text.dir/tiny_bert.cc.o" "gcc" "src/text/CMakeFiles/pkgm_text.dir/tiny_bert.cc.o.d"
  "/root/repo/src/text/title_generator.cc" "src/text/CMakeFiles/pkgm_text.dir/title_generator.cc.o" "gcc" "src/text/CMakeFiles/pkgm_text.dir/title_generator.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/text/CMakeFiles/pkgm_text.dir/tokenizer.cc.o" "gcc" "src/text/CMakeFiles/pkgm_text.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/pkgm_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/pkgm_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pkgm_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pkgm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
