# Empty dependencies file for pkgm_text.
# This may be replaced when dependencies are built.
