file(REMOVE_RECURSE
  "libpkgm_text.a"
)
