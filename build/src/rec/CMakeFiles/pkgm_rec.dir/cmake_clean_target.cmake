file(REMOVE_RECURSE
  "libpkgm_rec.a"
)
