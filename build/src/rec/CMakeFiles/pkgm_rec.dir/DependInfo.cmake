
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rec/ncf.cc" "src/rec/CMakeFiles/pkgm_rec.dir/ncf.cc.o" "gcc" "src/rec/CMakeFiles/pkgm_rec.dir/ncf.cc.o.d"
  "/root/repo/src/rec/ranking_metrics.cc" "src/rec/CMakeFiles/pkgm_rec.dir/ranking_metrics.cc.o" "gcc" "src/rec/CMakeFiles/pkgm_rec.dir/ranking_metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/pkgm_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pkgm_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pkgm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
