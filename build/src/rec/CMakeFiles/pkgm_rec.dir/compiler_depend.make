# Empty compiler generated dependencies file for pkgm_rec.
# This may be replaced when dependencies are built.
