file(REMOVE_RECURSE
  "CMakeFiles/pkgm_rec.dir/ncf.cc.o"
  "CMakeFiles/pkgm_rec.dir/ncf.cc.o.d"
  "CMakeFiles/pkgm_rec.dir/ranking_metrics.cc.o"
  "CMakeFiles/pkgm_rec.dir/ranking_metrics.cc.o.d"
  "libpkgm_rec.a"
  "libpkgm_rec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkgm_rec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
