
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/gradients.cc" "src/core/CMakeFiles/pkgm_core.dir/gradients.cc.o" "gcc" "src/core/CMakeFiles/pkgm_core.dir/gradients.cc.o.d"
  "/root/repo/src/core/link_prediction.cc" "src/core/CMakeFiles/pkgm_core.dir/link_prediction.cc.o" "gcc" "src/core/CMakeFiles/pkgm_core.dir/link_prediction.cc.o.d"
  "/root/repo/src/core/negative_sampler.cc" "src/core/CMakeFiles/pkgm_core.dir/negative_sampler.cc.o" "gcc" "src/core/CMakeFiles/pkgm_core.dir/negative_sampler.cc.o.d"
  "/root/repo/src/core/pkgm_model.cc" "src/core/CMakeFiles/pkgm_core.dir/pkgm_model.cc.o" "gcc" "src/core/CMakeFiles/pkgm_core.dir/pkgm_model.cc.o.d"
  "/root/repo/src/core/service.cc" "src/core/CMakeFiles/pkgm_core.dir/service.cc.o" "gcc" "src/core/CMakeFiles/pkgm_core.dir/service.cc.o.d"
  "/root/repo/src/core/sharded_trainer.cc" "src/core/CMakeFiles/pkgm_core.dir/sharded_trainer.cc.o" "gcc" "src/core/CMakeFiles/pkgm_core.dir/sharded_trainer.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/pkgm_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/pkgm_core.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kg/CMakeFiles/pkgm_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pkgm_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pkgm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
