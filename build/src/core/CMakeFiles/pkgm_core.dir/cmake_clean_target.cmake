file(REMOVE_RECURSE
  "libpkgm_core.a"
)
