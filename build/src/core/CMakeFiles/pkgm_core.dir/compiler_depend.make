# Empty compiler generated dependencies file for pkgm_core.
# This may be replaced when dependencies are built.
