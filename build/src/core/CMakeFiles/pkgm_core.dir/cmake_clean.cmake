file(REMOVE_RECURSE
  "CMakeFiles/pkgm_core.dir/gradients.cc.o"
  "CMakeFiles/pkgm_core.dir/gradients.cc.o.d"
  "CMakeFiles/pkgm_core.dir/link_prediction.cc.o"
  "CMakeFiles/pkgm_core.dir/link_prediction.cc.o.d"
  "CMakeFiles/pkgm_core.dir/negative_sampler.cc.o"
  "CMakeFiles/pkgm_core.dir/negative_sampler.cc.o.d"
  "CMakeFiles/pkgm_core.dir/pkgm_model.cc.o"
  "CMakeFiles/pkgm_core.dir/pkgm_model.cc.o.d"
  "CMakeFiles/pkgm_core.dir/service.cc.o"
  "CMakeFiles/pkgm_core.dir/service.cc.o.d"
  "CMakeFiles/pkgm_core.dir/sharded_trainer.cc.o"
  "CMakeFiles/pkgm_core.dir/sharded_trainer.cc.o.d"
  "CMakeFiles/pkgm_core.dir/trainer.cc.o"
  "CMakeFiles/pkgm_core.dir/trainer.cc.o.d"
  "libpkgm_core.a"
  "libpkgm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkgm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
