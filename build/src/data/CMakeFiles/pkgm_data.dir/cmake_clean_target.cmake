file(REMOVE_RECURSE
  "libpkgm_data.a"
)
