file(REMOVE_RECURSE
  "CMakeFiles/pkgm_data.dir/alignment_dataset.cc.o"
  "CMakeFiles/pkgm_data.dir/alignment_dataset.cc.o.d"
  "CMakeFiles/pkgm_data.dir/classification_dataset.cc.o"
  "CMakeFiles/pkgm_data.dir/classification_dataset.cc.o.d"
  "CMakeFiles/pkgm_data.dir/interaction_dataset.cc.o"
  "CMakeFiles/pkgm_data.dir/interaction_dataset.cc.o.d"
  "libpkgm_data.a"
  "libpkgm_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkgm_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
