# Empty dependencies file for pkgm_data.
# This may be replaced when dependencies are built.
