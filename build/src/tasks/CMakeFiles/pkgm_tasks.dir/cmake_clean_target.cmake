file(REMOVE_RECURSE
  "libpkgm_tasks.a"
)
