# Empty dependencies file for pkgm_tasks.
# This may be replaced when dependencies are built.
