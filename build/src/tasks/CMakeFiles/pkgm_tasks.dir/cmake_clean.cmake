file(REMOVE_RECURSE
  "CMakeFiles/pkgm_tasks.dir/item_alignment.cc.o"
  "CMakeFiles/pkgm_tasks.dir/item_alignment.cc.o.d"
  "CMakeFiles/pkgm_tasks.dir/item_classification.cc.o"
  "CMakeFiles/pkgm_tasks.dir/item_classification.cc.o.d"
  "CMakeFiles/pkgm_tasks.dir/pipeline.cc.o"
  "CMakeFiles/pkgm_tasks.dir/pipeline.cc.o.d"
  "CMakeFiles/pkgm_tasks.dir/recommendation.cc.o"
  "CMakeFiles/pkgm_tasks.dir/recommendation.cc.o.d"
  "libpkgm_tasks.a"
  "libpkgm_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkgm_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
