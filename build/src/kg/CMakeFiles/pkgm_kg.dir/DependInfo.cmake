
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kg/etl.cc" "src/kg/CMakeFiles/pkgm_kg.dir/etl.cc.o" "gcc" "src/kg/CMakeFiles/pkgm_kg.dir/etl.cc.o.d"
  "/root/repo/src/kg/io.cc" "src/kg/CMakeFiles/pkgm_kg.dir/io.cc.o" "gcc" "src/kg/CMakeFiles/pkgm_kg.dir/io.cc.o.d"
  "/root/repo/src/kg/key_relations.cc" "src/kg/CMakeFiles/pkgm_kg.dir/key_relations.cc.o" "gcc" "src/kg/CMakeFiles/pkgm_kg.dir/key_relations.cc.o.d"
  "/root/repo/src/kg/query_engine.cc" "src/kg/CMakeFiles/pkgm_kg.dir/query_engine.cc.o" "gcc" "src/kg/CMakeFiles/pkgm_kg.dir/query_engine.cc.o.d"
  "/root/repo/src/kg/rule_miner.cc" "src/kg/CMakeFiles/pkgm_kg.dir/rule_miner.cc.o" "gcc" "src/kg/CMakeFiles/pkgm_kg.dir/rule_miner.cc.o.d"
  "/root/repo/src/kg/split.cc" "src/kg/CMakeFiles/pkgm_kg.dir/split.cc.o" "gcc" "src/kg/CMakeFiles/pkgm_kg.dir/split.cc.o.d"
  "/root/repo/src/kg/synthetic_pkg.cc" "src/kg/CMakeFiles/pkgm_kg.dir/synthetic_pkg.cc.o" "gcc" "src/kg/CMakeFiles/pkgm_kg.dir/synthetic_pkg.cc.o.d"
  "/root/repo/src/kg/triple_store.cc" "src/kg/CMakeFiles/pkgm_kg.dir/triple_store.cc.o" "gcc" "src/kg/CMakeFiles/pkgm_kg.dir/triple_store.cc.o.d"
  "/root/repo/src/kg/vocab.cc" "src/kg/CMakeFiles/pkgm_kg.dir/vocab.cc.o" "gcc" "src/kg/CMakeFiles/pkgm_kg.dir/vocab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pkgm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
