# Empty dependencies file for pkgm_kg.
# This may be replaced when dependencies are built.
