file(REMOVE_RECURSE
  "CMakeFiles/pkgm_kg.dir/etl.cc.o"
  "CMakeFiles/pkgm_kg.dir/etl.cc.o.d"
  "CMakeFiles/pkgm_kg.dir/io.cc.o"
  "CMakeFiles/pkgm_kg.dir/io.cc.o.d"
  "CMakeFiles/pkgm_kg.dir/key_relations.cc.o"
  "CMakeFiles/pkgm_kg.dir/key_relations.cc.o.d"
  "CMakeFiles/pkgm_kg.dir/query_engine.cc.o"
  "CMakeFiles/pkgm_kg.dir/query_engine.cc.o.d"
  "CMakeFiles/pkgm_kg.dir/rule_miner.cc.o"
  "CMakeFiles/pkgm_kg.dir/rule_miner.cc.o.d"
  "CMakeFiles/pkgm_kg.dir/split.cc.o"
  "CMakeFiles/pkgm_kg.dir/split.cc.o.d"
  "CMakeFiles/pkgm_kg.dir/synthetic_pkg.cc.o"
  "CMakeFiles/pkgm_kg.dir/synthetic_pkg.cc.o.d"
  "CMakeFiles/pkgm_kg.dir/triple_store.cc.o"
  "CMakeFiles/pkgm_kg.dir/triple_store.cc.o.d"
  "CMakeFiles/pkgm_kg.dir/vocab.cc.o"
  "CMakeFiles/pkgm_kg.dir/vocab.cc.o.d"
  "libpkgm_kg.a"
  "libpkgm_kg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkgm_kg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
