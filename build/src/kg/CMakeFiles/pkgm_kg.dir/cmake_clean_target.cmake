file(REMOVE_RECURSE
  "libpkgm_kg.a"
)
