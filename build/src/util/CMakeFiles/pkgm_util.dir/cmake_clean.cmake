file(REMOVE_RECURSE
  "CMakeFiles/pkgm_util.dir/histogram.cc.o"
  "CMakeFiles/pkgm_util.dir/histogram.cc.o.d"
  "CMakeFiles/pkgm_util.dir/logging.cc.o"
  "CMakeFiles/pkgm_util.dir/logging.cc.o.d"
  "CMakeFiles/pkgm_util.dir/rng.cc.o"
  "CMakeFiles/pkgm_util.dir/rng.cc.o.d"
  "CMakeFiles/pkgm_util.dir/status.cc.o"
  "CMakeFiles/pkgm_util.dir/status.cc.o.d"
  "CMakeFiles/pkgm_util.dir/string_util.cc.o"
  "CMakeFiles/pkgm_util.dir/string_util.cc.o.d"
  "CMakeFiles/pkgm_util.dir/table_printer.cc.o"
  "CMakeFiles/pkgm_util.dir/table_printer.cc.o.d"
  "CMakeFiles/pkgm_util.dir/thread_pool.cc.o"
  "CMakeFiles/pkgm_util.dir/thread_pool.cc.o.d"
  "libpkgm_util.a"
  "libpkgm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkgm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
