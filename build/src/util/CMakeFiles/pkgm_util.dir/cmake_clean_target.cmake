file(REMOVE_RECURSE
  "libpkgm_util.a"
)
