# Empty dependencies file for pkgm_util.
# This may be replaced when dependencies are built.
