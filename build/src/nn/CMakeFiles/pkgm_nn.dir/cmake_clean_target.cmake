file(REMOVE_RECURSE
  "libpkgm_nn.a"
)
