
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cc" "src/nn/CMakeFiles/pkgm_nn.dir/activations.cc.o" "gcc" "src/nn/CMakeFiles/pkgm_nn.dir/activations.cc.o.d"
  "/root/repo/src/nn/attention.cc" "src/nn/CMakeFiles/pkgm_nn.dir/attention.cc.o" "gcc" "src/nn/CMakeFiles/pkgm_nn.dir/attention.cc.o.d"
  "/root/repo/src/nn/dropout.cc" "src/nn/CMakeFiles/pkgm_nn.dir/dropout.cc.o" "gcc" "src/nn/CMakeFiles/pkgm_nn.dir/dropout.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "src/nn/CMakeFiles/pkgm_nn.dir/embedding.cc.o" "gcc" "src/nn/CMakeFiles/pkgm_nn.dir/embedding.cc.o.d"
  "/root/repo/src/nn/grad_check.cc" "src/nn/CMakeFiles/pkgm_nn.dir/grad_check.cc.o" "gcc" "src/nn/CMakeFiles/pkgm_nn.dir/grad_check.cc.o.d"
  "/root/repo/src/nn/layer_norm.cc" "src/nn/CMakeFiles/pkgm_nn.dir/layer_norm.cc.o" "gcc" "src/nn/CMakeFiles/pkgm_nn.dir/layer_norm.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/pkgm_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/pkgm_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/losses.cc" "src/nn/CMakeFiles/pkgm_nn.dir/losses.cc.o" "gcc" "src/nn/CMakeFiles/pkgm_nn.dir/losses.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/pkgm_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/pkgm_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/parameter.cc" "src/nn/CMakeFiles/pkgm_nn.dir/parameter.cc.o" "gcc" "src/nn/CMakeFiles/pkgm_nn.dir/parameter.cc.o.d"
  "/root/repo/src/nn/transformer.cc" "src/nn/CMakeFiles/pkgm_nn.dir/transformer.cc.o" "gcc" "src/nn/CMakeFiles/pkgm_nn.dir/transformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/pkgm_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pkgm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
