# Empty compiler generated dependencies file for pkgm_nn.
# This may be replaced when dependencies are built.
