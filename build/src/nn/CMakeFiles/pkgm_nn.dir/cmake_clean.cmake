file(REMOVE_RECURSE
  "CMakeFiles/pkgm_nn.dir/activations.cc.o"
  "CMakeFiles/pkgm_nn.dir/activations.cc.o.d"
  "CMakeFiles/pkgm_nn.dir/attention.cc.o"
  "CMakeFiles/pkgm_nn.dir/attention.cc.o.d"
  "CMakeFiles/pkgm_nn.dir/dropout.cc.o"
  "CMakeFiles/pkgm_nn.dir/dropout.cc.o.d"
  "CMakeFiles/pkgm_nn.dir/embedding.cc.o"
  "CMakeFiles/pkgm_nn.dir/embedding.cc.o.d"
  "CMakeFiles/pkgm_nn.dir/grad_check.cc.o"
  "CMakeFiles/pkgm_nn.dir/grad_check.cc.o.d"
  "CMakeFiles/pkgm_nn.dir/layer_norm.cc.o"
  "CMakeFiles/pkgm_nn.dir/layer_norm.cc.o.d"
  "CMakeFiles/pkgm_nn.dir/linear.cc.o"
  "CMakeFiles/pkgm_nn.dir/linear.cc.o.d"
  "CMakeFiles/pkgm_nn.dir/losses.cc.o"
  "CMakeFiles/pkgm_nn.dir/losses.cc.o.d"
  "CMakeFiles/pkgm_nn.dir/optimizer.cc.o"
  "CMakeFiles/pkgm_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/pkgm_nn.dir/parameter.cc.o"
  "CMakeFiles/pkgm_nn.dir/parameter.cc.o.d"
  "CMakeFiles/pkgm_nn.dir/transformer.cc.o"
  "CMakeFiles/pkgm_nn.dir/transformer.cc.o.d"
  "libpkgm_nn.a"
  "libpkgm_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkgm_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
