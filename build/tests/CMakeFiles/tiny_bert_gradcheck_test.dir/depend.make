# Empty dependencies file for tiny_bert_gradcheck_test.
# This may be replaced when dependencies are built.
