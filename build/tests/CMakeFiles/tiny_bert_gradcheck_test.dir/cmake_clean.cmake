file(REMOVE_RECURSE
  "CMakeFiles/tiny_bert_gradcheck_test.dir/tiny_bert_gradcheck_test.cc.o"
  "CMakeFiles/tiny_bert_gradcheck_test.dir/tiny_bert_gradcheck_test.cc.o.d"
  "tiny_bert_gradcheck_test"
  "tiny_bert_gradcheck_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiny_bert_gradcheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
