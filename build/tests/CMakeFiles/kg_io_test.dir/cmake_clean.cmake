file(REMOVE_RECURSE
  "CMakeFiles/kg_io_test.dir/kg_io_test.cc.o"
  "CMakeFiles/kg_io_test.dir/kg_io_test.cc.o.d"
  "kg_io_test"
  "kg_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
