# Empty compiler generated dependencies file for generator_invariants_test.
# This may be replaced when dependencies are built.
