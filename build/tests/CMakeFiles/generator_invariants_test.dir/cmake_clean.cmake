file(REMOVE_RECURSE
  "CMakeFiles/generator_invariants_test.dir/generator_invariants_test.cc.o"
  "CMakeFiles/generator_invariants_test.dir/generator_invariants_test.cc.o.d"
  "generator_invariants_test"
  "generator_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generator_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
