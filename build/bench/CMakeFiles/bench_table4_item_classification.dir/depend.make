# Empty dependencies file for bench_table4_item_classification.
# This may be replaced when dependencies are built.
