file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_item_classification.dir/bench_table4_item_classification.cc.o"
  "CMakeFiles/bench_table4_item_classification.dir/bench_table4_item_classification.cc.o.d"
  "bench_table4_item_classification"
  "bench_table4_item_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_item_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
