
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_low_data.cc" "bench/CMakeFiles/bench_low_data.dir/bench_low_data.cc.o" "gcc" "bench/CMakeFiles/bench_low_data.dir/bench_low_data.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tasks/CMakeFiles/pkgm_tasks.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pkgm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pkgm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/rec/CMakeFiles/pkgm_rec.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/pkgm_text.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pkgm_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/pkgm_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pkgm_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pkgm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
