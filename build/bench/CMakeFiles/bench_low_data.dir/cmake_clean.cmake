file(REMOVE_RECURSE
  "CMakeFiles/bench_low_data.dir/bench_low_data.cc.o"
  "CMakeFiles/bench_low_data.dir/bench_low_data.cc.o.d"
  "bench_low_data"
  "bench_low_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_low_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
