# Empty dependencies file for bench_low_data.
# This may be replaced when dependencies are built.
