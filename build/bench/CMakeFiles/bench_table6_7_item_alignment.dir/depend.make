# Empty dependencies file for bench_table6_7_item_alignment.
# This may be replaced when dependencies are built.
