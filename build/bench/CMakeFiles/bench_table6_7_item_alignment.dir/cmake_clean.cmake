file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_7_item_alignment.dir/bench_table6_7_item_alignment.cc.o"
  "CMakeFiles/bench_table6_7_item_alignment.dir/bench_table6_7_item_alignment.cc.o.d"
  "bench_table6_7_item_alignment"
  "bench_table6_7_item_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_7_item_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
