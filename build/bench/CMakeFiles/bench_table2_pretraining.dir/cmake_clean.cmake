file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_pretraining.dir/bench_table2_pretraining.cc.o"
  "CMakeFiles/bench_table2_pretraining.dir/bench_table2_pretraining.cc.o.d"
  "bench_table2_pretraining"
  "bench_table2_pretraining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_pretraining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
