file(REMOVE_RECURSE
  "CMakeFiles/bench_service_latency.dir/bench_service_latency.cc.o"
  "CMakeFiles/bench_service_latency.dir/bench_service_latency.cc.o.d"
  "bench_service_latency"
  "bench_service_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_service_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
