# Empty compiler generated dependencies file for bench_service_latency.
# This may be replaced when dependencies are built.
