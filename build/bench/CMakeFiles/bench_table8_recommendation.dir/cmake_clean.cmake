file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_recommendation.dir/bench_table8_recommendation.cc.o"
  "CMakeFiles/bench_table8_recommendation.dir/bench_table8_recommendation.cc.o.d"
  "bench_table8_recommendation"
  "bench_table8_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
