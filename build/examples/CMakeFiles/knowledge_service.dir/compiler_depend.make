# Empty compiler generated dependencies file for knowledge_service.
# This may be replaced when dependencies are built.
