file(REMOVE_RECURSE
  "CMakeFiles/knowledge_service.dir/knowledge_service.cpp.o"
  "CMakeFiles/knowledge_service.dir/knowledge_service.cpp.o.d"
  "knowledge_service"
  "knowledge_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knowledge_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
