file(REMOVE_RECURSE
  "CMakeFiles/recommendation_demo.dir/recommendation_demo.cpp.o"
  "CMakeFiles/recommendation_demo.dir/recommendation_demo.cpp.o.d"
  "recommendation_demo"
  "recommendation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recommendation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
