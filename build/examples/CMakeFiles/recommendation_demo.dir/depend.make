# Empty dependencies file for recommendation_demo.
# This may be replaced when dependencies are built.
