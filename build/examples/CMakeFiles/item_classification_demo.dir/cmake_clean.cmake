file(REMOVE_RECURSE
  "CMakeFiles/item_classification_demo.dir/item_classification_demo.cpp.o"
  "CMakeFiles/item_classification_demo.dir/item_classification_demo.cpp.o.d"
  "item_classification_demo"
  "item_classification_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/item_classification_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
