# Empty compiler generated dependencies file for item_classification_demo.
# This may be replaced when dependencies are built.
