# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_generate "/root/repo/build/tools/pkgm_tool" "generate" "/root/repo/build/smoke_kg.tsv" "3")
set_tests_properties(tool_generate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_pretrain "/root/repo/build/tools/pkgm_tool" "pretrain" "/root/repo/build/smoke_kg.tsv" "/root/repo/build/smoke_model.bin" "5" "16")
set_tests_properties(tool_pretrain PROPERTIES  DEPENDS "tool_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_eval "/root/repo/build/tools/pkgm_tool" "eval" "/root/repo/build/smoke_kg.tsv" "/root/repo/build/smoke_model.bin" "0.01")
set_tests_properties(tool_eval PROPERTIES  DEPENDS "tool_pretrain" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
