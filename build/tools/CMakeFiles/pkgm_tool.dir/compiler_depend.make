# Empty compiler generated dependencies file for pkgm_tool.
# This may be replaced when dependencies are built.
