file(REMOVE_RECURSE
  "CMakeFiles/pkgm_tool.dir/pkgm_tool.cc.o"
  "CMakeFiles/pkgm_tool.dir/pkgm_tool.cc.o.d"
  "pkgm_tool"
  "pkgm_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkgm_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
